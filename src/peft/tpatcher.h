#ifndef INFUSERKI_PEFT_TPATCHER_H_
#define INFUSERKI_PEFT_TPATCHER_H_

#include <string>

#include "core/ki_method.h"
#include "tensor/nn.h"

namespace infuserki::peft {

/// T-Patcher baseline (Huang et al., 2023): trainable "patch" neurons
/// appended to the last FFN layer, one small patch bank per editing run.
struct TPatcherOptions {
  /// Patches per unknown fact; total patches are capped by `max_patches`.
  size_t patches_per_edit = 2;
  size_t max_patches = 256;
  /// T-Patcher trains patches on the edits only (its locality comes from a
  /// trigger-style activation, not replay), which is what makes it fragile
  /// on broad integration workloads — reproduced here.
  bool include_known_mix = false;
  float lr = 1e-2f;
  size_t batch_size = 8;
  size_t epochs = 25;
  uint64_t seed = 23;
};

class TPatcherMethod : public core::KiMethod, public model::FfnHook {
 public:
  TPatcherMethod(model::TransformerLM* lm, const TPatcherOptions& options);

  std::string name() const override { return "T-Patcher"; }
  void Train(const core::KiTrainData& data) override;
  model::ForwardOptions Forward() override;
  size_t NumTrainableParameters() const override;

  // model::FfnHook:
  tensor::Tensor FfnDelta(int layer,
                          const tensor::Tensor& ffn_input) override;

  size_t num_patches() const {
    return keys_.defined() ? keys_.dim(0) : 0;
  }

 private:
  void InitPatches(size_t count);

  model::TransformerLM* lm_;
  TPatcherOptions options_;
  int last_layer_;
  // Patch neurons on the last FFN layer: delta = relu(x K^T + b) V.
  tensor::Tensor keys_;    // [P, D]
  tensor::Tensor bias_;    // [P]
  tensor::Tensor values_;  // [P, D]
  float final_loss_ = 0.0f;
};

}  // namespace infuserki::peft

#endif  // INFUSERKI_PEFT_TPATCHER_H_
