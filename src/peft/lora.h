#ifndef INFUSERKI_PEFT_LORA_H_
#define INFUSERKI_PEFT_LORA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ki_method.h"
#include "tensor/nn.h"

namespace infuserki::peft {

/// LoRA / QLoRA baselines (Hu et al., 2021; Dettmers et al., 2023).
struct LoraOptions {
  size_t rank = 4;
  float alpha = 8.0f;  // delta scale = alpha / rank
  /// Attach deltas to every projection (attention + FFN). The q/v-only
  /// placement of the original paper under-stores facts at simulator scale
  /// because FFN layers are where knowledge lives (Dai et al., 2022).
  bool target_all_linear = true;
  /// QLoRA: quantize the frozen base weights to blockwise int4 first.
  bool quantize_base = false;
  size_t quant_block = 32;
  float lr = 3e-3f;
  size_t batch_size = 8;
  size_t epochs = 25;
  uint64_t seed = 11;
};

/// Trainable low-rank deltas on every layer's attention query and value
/// projections (the standard LoRA placement), base weights frozen. With
/// `quantize_base` the frozen weights are first replaced by their int4
/// quantize-dequantize image, reproducing QLoRA's 4-bit base.
///
/// Attaching mutates the wrapped TransformerLM's Linear layers; the deltas
/// are detached in the destructor so the base model can be reused.
class LoraMethod : public core::KiMethod {
 public:
  LoraMethod(model::TransformerLM* lm, const LoraOptions& options);
  ~LoraMethod() override;

  std::string name() const override {
    return options_.quantize_base ? "QLoRA" : "LoRA";
  }
  void Train(const core::KiTrainData& data) override;
  model::ForwardOptions Forward() override { return {}; }
  size_t NumTrainableParameters() const override;

  float final_loss() const { return final_loss_; }

 private:
  model::TransformerLM* lm_;
  LoraOptions options_;
  std::vector<std::shared_ptr<tensor::LoraDelta>> deltas_;
  float final_loss_ = 0.0f;
};

}  // namespace infuserki::peft

#endif  // INFUSERKI_PEFT_LORA_H_
