#ifndef INFUSERKI_PEFT_CALINET_H_
#define INFUSERKI_PEFT_CALINET_H_

#include <memory>
#include <string>

#include "core/ki_method.h"
#include "tensor/nn.h"

namespace infuserki::peft {

/// CALINET baseline (Dong et al., 2022): a calibration adapter — a bank of
/// extra FFN memory slots — in one specific FFN layer, trained to correct
/// false facts while the base model stays frozen.
struct CalinetOptions {
  /// 0-based layer carrying the adapter; -1 = two-thirds up the stack
  /// (CALINET calibrates in upper-middle FFN layers).
  int layer = -1;
  size_t num_slots = 96;  // memory-slot count
  /// CALINET calibrates the edited facts only (no replay of known
  /// samples) — the source of its locality weakness in the paper's tables.
  bool include_known_mix = false;
  float lr = 1e-2f;
  size_t batch_size = 8;
  size_t epochs = 25;
  uint64_t seed = 19;
};

class CalinetMethod : public core::KiMethod, public model::FfnHook {
 public:
  CalinetMethod(model::TransformerLM* lm, const CalinetOptions& options);

  std::string name() const override { return "CALINET"; }
  void Train(const core::KiTrainData& data) override;
  model::ForwardOptions Forward() override;
  size_t NumTrainableParameters() const override;

  // model::FfnHook:
  tensor::Tensor FfnDelta(int layer,
                          const tensor::Tensor& ffn_input) override;

  int adapted_layer() const { return layer_; }

 private:
  model::TransformerLM* lm_;
  CalinetOptions options_;
  int layer_;
  // FFN-style memory slots: delta = gelu(x K^T) V.
  tensor::Tensor keys_;    // [num_slots, D]
  tensor::Tensor values_;  // [num_slots, D]
  float final_loss_ = 0.0f;
};

}  // namespace infuserki::peft

#endif  // INFUSERKI_PEFT_CALINET_H_
