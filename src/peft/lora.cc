#include "peft/lora.h"

#include "model/trainer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace infuserki::peft {

LoraMethod::LoraMethod(model::TransformerLM* lm, const LoraOptions& options)
    : lm_(lm), options_(options) {
  CHECK(lm != nullptr);
  util::Rng rng(options.seed);
  float scale = options.alpha / static_cast<float>(options.rank);
  size_t dim = lm->config().dim;
  for (size_t l = 0; l < lm->config().num_layers; ++l) {
    model::TransformerLayer& layer = lm->layer(l);
    if (options.quantize_base) {
      layer.wq().QuantizeWeights(options.quant_block);
      layer.wk().QuantizeWeights(options.quant_block);
      layer.wv().QuantizeWeights(options.quant_block);
      layer.wo().QuantizeWeights(options.quant_block);
      layer.ffn_gate().QuantizeWeights(options.quant_block);
      layer.ffn_up().QuantizeWeights(options.quant_block);
      layer.ffn_down().QuantizeWeights(options.quant_block);
    }
    auto attach = [&](tensor::Linear& linear) {
      auto delta = tensor::MakeLoraDelta(linear.in_features(),
                                         linear.out_features(), options.rank,
                                         scale, &rng);
      linear.AttachLora(delta);
      deltas_.push_back(std::move(delta));
    };
    attach(layer.wq());
    attach(layer.wv());
    if (options.target_all_linear) {
      attach(layer.wk());
      attach(layer.wo());
      attach(layer.ffn_gate());
      attach(layer.ffn_up());
      attach(layer.ffn_down());
    }
  }
}

LoraMethod::~LoraMethod() {
  for (size_t l = 0; l < lm_->config().num_layers; ++l) {
    model::TransformerLayer& layer = lm_->layer(l);
    layer.wq().DetachLora();
    layer.wv().DetachLora();
    layer.wk().DetachLora();
    layer.wo().DetachLora();
    layer.ffn_gate().DetachLora();
    layer.ffn_up().DetachLora();
    layer.ffn_down().DetachLora();
  }
}

void LoraMethod::Train(const core::KiTrainData& data) {
  obs::ScopedSpan obs_train_span("method/" + name() + "/train");
  std::vector<model::LmExample> examples = core::BuildInstructionExamples(
      data, /*include_known=*/true, /*include_yesno=*/true);
  CHECK(!examples.empty());
  std::vector<tensor::Tensor> params;
  for (const auto& delta : deltas_) {
    params.push_back(delta->a);
    params.push_back(delta->b);
  }
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  model::LmTrainer trainer(lm_, std::move(params), trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  final_loss_ =
      trainer.TrainSteps(examples, options_.epochs * steps_per_epoch);
  LOG_INFO << name() << " training done, loss " << final_loss_;
}

size_t LoraMethod::NumTrainableParameters() const {
  size_t n = 0;
  for (const auto& delta : deltas_) {
    n += delta->a.size() + delta->b.size();
  }
  return n;
}

}  // namespace infuserki::peft
