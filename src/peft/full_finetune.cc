#include "peft/full_finetune.h"

#include "model/trainer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace infuserki::peft {

FullFinetuneMethod::FullFinetuneMethod(model::TransformerLM* lm,
                                       const FullFinetuneOptions& options)
    : lm_(lm), options_(options) {
  CHECK(lm != nullptr);
}

void FullFinetuneMethod::Train(const core::KiTrainData& data) {
  obs::ScopedSpan obs_train_span("method/" + name() + "/train");
  std::vector<model::LmExample> examples = core::BuildInstructionExamples(
      data, options_.include_known_mix, /*include_yesno=*/true);
  CHECK(!examples.empty());
  lm_->SetTrainable(true);
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  model::LmTrainer trainer(lm_, lm_->Parameters(), trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  final_loss_ =
      trainer.TrainSteps(examples, options_.epochs * steps_per_epoch);
  LOG_INFO << name() << " training done, loss " << final_loss_;
}

size_t FullFinetuneMethod::NumTrainableParameters() const {
  return lm_->NumParameters();
}

}  // namespace infuserki::peft
