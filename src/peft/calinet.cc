#include "peft/calinet.h"

#include "model/trainer.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace infuserki::peft {

CalinetMethod::CalinetMethod(model::TransformerLM* lm,
                             const CalinetOptions& options)
    : lm_(lm), options_(options) {
  CHECK(lm != nullptr);
  layer_ = options.layer >= 0
               ? options.layer
               : static_cast<int>(lm->config().num_layers * 2 / 3);
  CHECK_LT(static_cast<size_t>(layer_), lm->config().num_layers);
  util::Rng rng(options.seed);
  size_t dim = lm->config().dim;
  keys_ = tensor::Tensor::Randn({options.num_slots, dim}, &rng, 0.05f,
                                /*requires_grad=*/true);
  // Zero value slots: the adapter starts as a no-op.
  values_ = tensor::Tensor::Zeros({options.num_slots, dim},
                                  /*requires_grad=*/true);
}

tensor::Tensor CalinetMethod::FfnDelta(int layer,
                                       const tensor::Tensor& ffn_input) {
  if (layer != layer_) return tensor::Tensor();
  tensor::Tensor activation =
      tensor::Gelu(tensor::MatmulNT(ffn_input, keys_));
  return tensor::Matmul(activation, values_);
}

model::ForwardOptions CalinetMethod::Forward() {
  model::ForwardOptions forward;
  forward.ffn_hook = this;
  return forward;
}

void CalinetMethod::Train(const core::KiTrainData& data) {
  obs::ScopedSpan obs_train_span("method/" + name() + "/train");
  std::vector<model::LmExample> examples = core::BuildInstructionExamples(
      data, options_.include_known_mix, /*include_yesno=*/true);
  CHECK(!examples.empty());
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  model::LmTrainer trainer(lm_, {keys_, values_}, trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  final_loss_ = trainer.TrainSteps(
      examples, options_.epochs * steps_per_epoch, Forward());
  LOG_INFO << name() << " training done, loss " << final_loss_;
}

size_t CalinetMethod::NumTrainableParameters() const {
  return keys_.size() + values_.size();
}

}  // namespace infuserki::peft
