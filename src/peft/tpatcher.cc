#include "peft/tpatcher.h"

#include <algorithm>

#include "model/trainer.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace infuserki::peft {

TPatcherMethod::TPatcherMethod(model::TransformerLM* lm,
                               const TPatcherOptions& options)
    : lm_(lm),
      options_(options),
      last_layer_(static_cast<int>(lm->config().num_layers) - 1) {
  CHECK(lm != nullptr);
}

void TPatcherMethod::InitPatches(size_t count) {
  util::Rng rng(options_.seed);
  size_t dim = lm_->config().dim;
  keys_ = tensor::Tensor::Randn({count, dim}, &rng, 0.05f,
                                /*requires_grad=*/true);
  // Negative bias: patches start (mostly) inactive, T-Patcher's trigger
  // design.
  bias_ = tensor::Tensor::Full({count}, -0.1f, /*requires_grad=*/true);
  values_ = tensor::Tensor::Zeros({count, dim}, /*requires_grad=*/true);
}

tensor::Tensor TPatcherMethod::FfnDelta(int layer,
                                        const tensor::Tensor& ffn_input) {
  if (layer != last_layer_ || !keys_.defined()) return tensor::Tensor();
  tensor::Tensor activation = tensor::Relu(
      tensor::Add(tensor::MatmulNT(ffn_input, keys_), bias_));
  return tensor::Matmul(activation, values_);
}

model::ForwardOptions TPatcherMethod::Forward() {
  model::ForwardOptions forward;
  forward.ffn_hook = this;
  return forward;
}

void TPatcherMethod::Train(const core::KiTrainData& data) {
  obs::ScopedSpan obs_train_span("method/" + name() + "/train");
  size_t edits = std::max<size_t>(1, data.unknown_qa.size() / 2);
  size_t patches = std::min(options_.max_patches,
                            std::max<size_t>(8, edits *
                                                   options_.patches_per_edit));
  InitPatches(patches);
  std::vector<model::LmExample> examples = core::BuildInstructionExamples(
      data, options_.include_known_mix, /*include_yesno=*/true);
  CHECK(!examples.empty());
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  model::LmTrainer trainer(lm_, {keys_, bias_, values_}, trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  final_loss_ = trainer.TrainSteps(
      examples, options_.epochs * steps_per_epoch, Forward());
  LOG_INFO << name() << " training done with " << patches
           << " patches, loss " << final_loss_;
}

size_t TPatcherMethod::NumTrainableParameters() const {
  if (!keys_.defined()) return 0;
  return keys_.size() + bias_.size() + values_.size();
}

}  // namespace infuserki::peft
