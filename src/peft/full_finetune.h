#ifndef INFUSERKI_PEFT_FULL_FINETUNE_H_
#define INFUSERKI_PEFT_FULL_FINETUNE_H_

#include <string>

#include "core/ki_method.h"

namespace infuserki::peft {

/// Direct full fine-tuning of all base-model parameters on the unknown QA
/// data. Not a paper-table baseline, but the "Fine-Tuned LLM" reference of
/// Fig. 1 that exhibits the catastrophic forgetting the framework targets.
struct FullFinetuneOptions {
  bool include_known_mix = false;  // Fig. 1 fine-tunes on new data only
  float lr = 1e-3f;
  size_t batch_size = 8;
  size_t epochs = 10;
  uint64_t seed = 29;
};

class FullFinetuneMethod : public core::KiMethod {
 public:
  FullFinetuneMethod(model::TransformerLM* lm,
                     const FullFinetuneOptions& options);

  std::string name() const override { return "Fine-Tuned"; }
  void Train(const core::KiTrainData& data) override;
  model::ForwardOptions Forward() override { return {}; }
  size_t NumTrainableParameters() const override;

 private:
  model::TransformerLM* lm_;
  FullFinetuneOptions options_;
  float final_loss_ = 0.0f;
};

}  // namespace infuserki::peft

#endif  // INFUSERKI_PEFT_FULL_FINETUNE_H_
