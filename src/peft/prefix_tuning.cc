#include "peft/prefix_tuning.h"

#include "model/trainer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace infuserki::peft {

PrefixTuningMethod::PrefixTuningMethod(model::TransformerLM* lm,
                                       const PrefixTuningOptions& options)
    : lm_(lm), options_(options) {
  CHECK(lm != nullptr);
  util::Rng rng(options.seed);
  size_t dim = lm->config().dim;
  prefix_.prefix_len = options.prefix_len;
  for (size_t l = 0; l < lm->config().num_layers; ++l) {
    prefix_.keys.push_back(tensor::Tensor::Randn(
        {options.prefix_len, dim}, &rng, options.init_stddev,
        /*requires_grad=*/true));
    prefix_.values.push_back(tensor::Tensor::Randn(
        {options.prefix_len, dim}, &rng, options.init_stddev,
        /*requires_grad=*/true));
  }
}

model::ForwardOptions PrefixTuningMethod::Forward() {
  model::ForwardOptions forward;
  forward.prefix = &prefix_;
  return forward;
}

void PrefixTuningMethod::Train(const core::KiTrainData& data) {
  obs::ScopedSpan obs_train_span("method/" + name() + "/train");
  std::vector<model::LmExample> examples = core::BuildInstructionExamples(
      data, /*include_known=*/true, /*include_yesno=*/true);
  CHECK(!examples.empty());
  std::vector<tensor::Tensor> params;
  for (const tensor::Tensor& t : prefix_.keys) params.push_back(t);
  for (const tensor::Tensor& t : prefix_.values) params.push_back(t);
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  model::LmTrainer trainer(lm_, std::move(params), trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  final_loss_ =
      trainer.TrainSteps(examples, options_.epochs * steps_per_epoch,
                         Forward());
  LOG_INFO << name() << " training done, loss " << final_loss_;
}

size_t PrefixTuningMethod::NumTrainableParameters() const {
  size_t n = 0;
  for (const tensor::Tensor& t : prefix_.keys) n += t.size();
  for (const tensor::Tensor& t : prefix_.values) n += t.size();
  return n;
}

}  // namespace infuserki::peft
