#ifndef INFUSERKI_PEFT_PREFIX_TUNING_H_
#define INFUSERKI_PEFT_PREFIX_TUNING_H_

#include <string>
#include <vector>

#include "core/ki_method.h"

namespace infuserki::peft {

/// Prefix Tuning baseline (Li & Liang, 2021).
struct PrefixTuningOptions {
  size_t prefix_len = 8;
  float init_stddev = 0.1f;
  float lr = 3e-3f;
  size_t batch_size = 8;
  size_t epochs = 25;
  uint64_t seed = 13;
};

/// Learns per-layer prefix key/value rows that every attention query can
/// attend to; all base parameters stay frozen.
class PrefixTuningMethod : public core::KiMethod {
 public:
  PrefixTuningMethod(model::TransformerLM* lm,
                     const PrefixTuningOptions& options);

  std::string name() const override { return "Prefix Tuning"; }
  void Train(const core::KiTrainData& data) override;
  model::ForwardOptions Forward() override;
  size_t NumTrainableParameters() const override;

 private:
  model::TransformerLM* lm_;
  PrefixTuningOptions options_;
  model::PrefixKv prefix_;
  float final_loss_ = 0.0f;
};

}  // namespace infuserki::peft

#endif  // INFUSERKI_PEFT_PREFIX_TUNING_H_
