#include "obs/window.h"

#include <algorithm>

#include "obs/trace.h"

namespace infuserki::obs {

SlidingWindow::SlidingWindow(double window_seconds, size_t max_frames)
    : window_seconds_(window_seconds > 0.0 ? window_seconds : 1.0),
      max_frames_(std::max<size_t>(2, max_frames)) {}

void SlidingWindow::Tick(int64_t now_us) {
  Frame frame;
  frame.t_us = now_us >= 0 ? now_us : NowMicros();
  frame.snapshot = Registry::Get().TakeSnapshot();

  util::MutexLock lock(mu_);
  frames_.push_back(std::move(frame));
  int64_t horizon =
      frames_.back().t_us - static_cast<int64_t>(window_seconds_ * 1e6);
  // Drop frames that have aged out, but keep one frame at-or-before the
  // horizon as the baseline so the delta always spans >= the window.
  while (frames_.size() > 2 && frames_[1].t_us <= horizon) {
    frames_.pop_front();
  }
  while (frames_.size() > max_frames_) frames_.pop_front();
}

bool SlidingWindow::BoundsLocked(const Frame** baseline,
                                 const Frame** newest) const {
  if (frames_.size() < 2) return false;
  *baseline = &frames_.front();
  *newest = &frames_.back();
  return true;
}

double SlidingWindow::CoveredSeconds() const {
  util::MutexLock lock(mu_);
  const Frame* baseline;
  const Frame* newest;
  if (!BoundsLocked(&baseline, &newest)) return 0.0;
  return static_cast<double>(newest->t_us - baseline->t_us) * 1e-6;
}

namespace {

uint64_t CounterOrZero(const Registry::Snapshot& snapshot,
                       const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace

uint64_t SlidingWindow::CounterDelta(const std::string& name) const {
  util::MutexLock lock(mu_);
  const Frame* baseline;
  const Frame* newest;
  if (!BoundsLocked(&baseline, &newest)) return 0;
  uint64_t now = CounterOrZero(newest->snapshot, name);
  uint64_t then = CounterOrZero(baseline->snapshot, name);
  return now >= then ? now - then : 0;
}

double SlidingWindow::CounterRate(const std::string& name) const {
  util::MutexLock lock(mu_);
  const Frame* baseline;
  const Frame* newest;
  if (!BoundsLocked(&baseline, &newest)) return 0.0;
  double seconds = static_cast<double>(newest->t_us - baseline->t_us) * 1e-6;
  if (seconds <= 0.0) return 0.0;
  uint64_t now = CounterOrZero(newest->snapshot, name);
  uint64_t then = CounterOrZero(baseline->snapshot, name);
  return now >= then ? static_cast<double>(now - then) / seconds : 0.0;
}

double SlidingWindow::GaugeValue(const std::string& name) const {
  util::MutexLock lock(mu_);
  if (frames_.empty()) return 0.0;
  const auto& gauges = frames_.back().snapshot.gauges;
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

HistogramStats SlidingWindow::HistogramDelta(const std::string& name) const {
  util::MutexLock lock(mu_);
  const Frame* baseline;
  const Frame* newest;
  if (!BoundsLocked(&baseline, &newest)) return HistogramStats{};
  auto now_it = newest->snapshot.histograms.find(name);
  if (now_it == newest->snapshot.histograms.end()) return HistogramStats{};
  auto then_it = baseline->snapshot.histograms.find(name);
  if (then_it == baseline->snapshot.histograms.end()) {
    // The histogram first appeared inside the window: the whole cumulative
    // view is the delta.
    return now_it->second;
  }
  return SubtractHistogramStats(now_it->second, then_it->second);
}

std::map<std::string, double> SlidingWindow::AllCounterRates() const {
  std::map<std::string, double> rates;
  util::MutexLock lock(mu_);
  const Frame* baseline;
  const Frame* newest;
  if (!BoundsLocked(&baseline, &newest)) return rates;
  double seconds = static_cast<double>(newest->t_us - baseline->t_us) * 1e-6;
  if (seconds <= 0.0) return rates;
  for (const auto& [name, value] : newest->snapshot.counters) {
    uint64_t then = CounterOrZero(baseline->snapshot, name);
    rates[name] =
        value >= then ? static_cast<double>(value - then) / seconds : 0.0;
  }
  return rates;
}

size_t SlidingWindow::frame_count() const {
  util::MutexLock lock(mu_);
  return frames_.size();
}

}  // namespace infuserki::obs
