#ifndef INFUSERKI_OBS_JSON_H_
#define INFUSERKI_OBS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace infuserki::obs {

/// Escapes `text` for inclusion in a JSON string literal (without the
/// surrounding quotes).
inline std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number. NaN/infinity (not representable in
/// JSON) become null.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

/// Minimal append-only JSON object builder. Keys are escaped; values added
/// via AddRaw must already be valid JSON (e.g. a nested Finish() result).
class JsonWriter {
 public:
  JsonWriter& AddString(const std::string& key, const std::string& value) {
    return AddRaw(key, "\"" + JsonEscape(value) + "\"");
  }
  JsonWriter& AddNumber(const std::string& key, double value) {
    return AddRaw(key, JsonNumber(value));
  }
  JsonWriter& AddInt(const std::string& key, int64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonWriter& AddUint(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonWriter& AddBool(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonWriter& AddRaw(const std::string& key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + JsonEscape(key) + "\":" + json;
    return *this;
  }

  std::string Finish() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_JSON_H_
