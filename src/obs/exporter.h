#ifndef INFUSERKI_OBS_EXPORTER_H_
#define INFUSERKI_OBS_EXPORTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/window.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::obs {

/// Configuration for the background metrics exporter. A zero period
/// disables it entirely (no thread is spawned).
struct ExporterOptions {
  /// Export period; 0 disables the exporter.
  std::chrono::milliseconds period{0};
  /// NDJSON time-series file: one JSON object per tick, appended as a
  /// single atomic write (records never tear or interleave). Empty skips.
  std::string ndjson_path;
  /// Prometheus text-exposition file, atomically rewritten every tick.
  /// Empty skips.
  std::string prometheus_path;
  /// Horizon for the windowed rates/quantiles in each NDJSON record.
  double window_seconds = 30.0;
  /// Invoked at the start of every tick, before the snapshot — the hook
  /// for periodic gauge sampling (e.g. serve queue depth).
  std::function<void()> on_tick;
};

/// Background thread that periodically snapshots the metrics registry and
/// publishes it as (a) an append-only NDJSON time series with cumulative
/// and sliding-window views, and (b) a Prometheus text-exposition file.
/// Stop() (and the destructor) performs one final synchronous tick so even
/// short-lived processes leave at least one record behind.
///
/// Self-monitoring: `obs/exporter_ticks` counts completed ticks and
/// `obs/exporter_write_failures` counts failed file publications.
class MetricsExporter {
 public:
  /// Starts the export thread when options.period > 0.
  explicit MetricsExporter(ExporterOptions options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Final tick + thread join. Idempotent and safe to call concurrently
  /// with metric mutation.
  void Stop() EXCLUDES(mu_, tick_mu_);

  /// Runs one export synchronously (also used by the final flush and
  /// tests). Serialized against the background thread's ticks.
  void TickNow() EXCLUDES(tick_mu_);

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  bool running() const EXCLUDES(mu_);

 private:
  void Loop() EXCLUDES(mu_, tick_mu_);
  void ExportOnce(int64_t now_us) EXCLUDES(tick_mu_);
  std::string NdjsonRecord(const Registry::Snapshot& snapshot,
                           int64_t now_us) const REQUIRES(tick_mu_);
  static std::string PrometheusText(const Registry::Snapshot& snapshot);

  const ExporterOptions options_;
  std::atomic<uint64_t> ticks_{0};
  // tick_mu_ serializes ExportOnce between the thread and TickNow; it is
  // above every lock it ticks into (window_'s own mutex, the registry,
  // on_tick callees) and is never held together with mu_ (DESIGN.md §13).
  mutable util::Mutex tick_mu_;
  SlidingWindow window_ GUARDED_BY(tick_mu_);
  mutable util::Mutex mu_;
  util::CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;  // set in ctor, joined by Stop; never concurrent
};

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_EXPORTER_H_
