#ifndef INFUSERKI_OBS_MANIFEST_H_
#define INFUSERKI_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::obs {

/// Process-wide append-only log of durability events (checkpoint resumes,
/// cache loads, quarantines). Producers anywhere in the stack record one
/// human-readable line per event; RunManifest snapshots the list under
/// "lineage", so a run's manifest shows exactly which prior state it was
/// built from.
class Lineage {
 public:
  static Lineage& Get();

  void Record(std::string event);
  std::vector<std::string> Snapshot() const;
  void Clear();

 private:
  mutable util::Mutex mu_;
  std::vector<std::string> events_ GUARDED_BY(mu_);
};

/// JSON run manifest written by bench binaries via --metrics_out: the run
/// configuration, a full metric-registry snapshot, and per-name span
/// rollups. Downstream tooling turns these into BENCH_*.json trajectories.
class RunManifest {
 public:
  explicit RunManifest(std::string bench_name);

  /// Adds one configuration entry (shown under "config").
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, int64_t value);
  void AddConfig(const std::string& key, double value);

  /// Serializes the manifest, snapshotting the metric registry and the
  /// tracer rollups at call time.
  std::string ToJson() const;

  /// ToJson() to `path`. Returns false on I/O failure.
  bool Write(const std::string& path) const;

 private:
  std::string bench_name_;
  // key -> pre-encoded JSON value, in insertion order.
  std::vector<std::pair<std::string, std::string>> config_;
};

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_MANIFEST_H_
