#ifndef INFUSERKI_OBS_ATOMIC_IO_H_
#define INFUSERKI_OBS_ATOMIC_IO_H_

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

namespace infuserki::obs {

/// Minimal tmp -> fsync -> rename file publish. obs sits below util, so it
/// cannot use util::AtomicFileWriter; this keeps manifests and traces free
/// of torn writes with the same protocol (no retry/failpoints down here).
inline bool WriteFileAtomically(const std::string& path,
                                const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  size_t offset = 0;
  while (offset < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + offset,
                        contents.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

/// Appends `line` (a trailing newline is added) to `path` as a single
/// O_APPEND write, so concurrent appenders and crash-interrupted writers
/// never interleave or tear a record — the NDJSON time-series contract.
/// A short write counts as failure rather than retrying with a second
/// (no-longer-atomic) write.
inline bool AppendLineAtomically(const std::string& path, std::string line) {
  line.push_back('\n');
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  ssize_t n;
  do {
    n = ::write(fd, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  bool ok = n == static_cast<ssize_t>(line.size());
  if (::close(fd) != 0) ok = false;
  return ok;
}

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_ATOMIC_IO_H_
