#ifndef INFUSERKI_OBS_ATOMIC_IO_H_
#define INFUSERKI_OBS_ATOMIC_IO_H_

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

namespace infuserki::obs {

/// Minimal tmp -> fsync -> rename file publish. obs sits below util, so it
/// cannot use util::AtomicFileWriter; this keeps manifests and traces free
/// of torn writes with the same protocol (no retry/failpoints down here).
inline bool WriteFileAtomically(const std::string& path,
                                const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  size_t offset = 0;
  while (offset < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + offset,
                        contents.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_ATOMIC_IO_H_
