#include "obs/exporter.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/atomic_io.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace infuserki::obs {
namespace {

struct ExporterMetrics {
  Counter* ticks;
  Counter* write_failures;
};

ExporterMetrics& Metrics() {
  static ExporterMetrics metrics{
      Registry::Get().GetCounter("obs/exporter_ticks"),
      Registry::Get().GetCounter("obs/exporter_write_failures")};
  return metrics;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry uses '/' and
/// '.' freely, so everything else maps to '_' under an `infuserki_` prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "infuserki_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string FormatBound(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", bound);
  return buf;
}

std::string HistogramJson(const HistogramStats& stats) {
  JsonWriter h;
  h.AddUint("count", stats.count)
      .AddNumber("sum", stats.sum)
      .AddNumber("mean", stats.mean)
      .AddNumber("min", stats.min)
      .AddNumber("max", stats.max)
      .AddNumber("p50", stats.p50)
      .AddNumber("p90", stats.p90)
      .AddNumber("p99", stats.p99)
      .AddNumber("p999", stats.p999);
  return h.Finish();
}

}  // namespace

MetricsExporter::MetricsExporter(ExporterOptions options)
    : options_(std::move(options)), window_(options_.window_seconds) {
  // Touch the self-monitoring counters up front so every NDJSON record and
  // Prometheus dump carries them from the first tick.
  Metrics();
  if (options_.period.count() > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  bool was_stopped;
  {
    util::MutexLock lock(mu_);
    was_stopped = stop_;
    stop_ = true;
  }
  if (was_stopped) return;
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final flush: short-lived processes still leave >= 1 record behind.
  TickNow();
}

void MetricsExporter::TickNow() { ExportOnce(NowMicros()); }

bool MetricsExporter::running() const {
  util::MutexLock lock(mu_);
  return !stop_ && thread_.joinable();
}

void MetricsExporter::Loop() {
  for (;;) {
    {
      util::MutexLock lock(mu_);
      // Sleep one period, waking early only on Stop. Spurious wakeups
      // re-wait against the same deadline, so the tick cadence is stable.
      auto deadline = std::chrono::steady_clock::now() + options_.period;
      while (!stop_) {
        if (cv_.WaitUntil(mu_, deadline)) break;
      }
      if (stop_) return;
    }
    ExportOnce(NowMicros());
  }
}

void MetricsExporter::ExportOnce(int64_t now_us) {
  util::MutexLock tick_lock(tick_mu_);
  if (options_.on_tick) options_.on_tick();
  window_.Tick(now_us);
  Registry::Snapshot snapshot = Registry::Get().TakeSnapshot();
  if (!options_.ndjson_path.empty()) {
    if (!AppendLineAtomically(options_.ndjson_path,
                              NdjsonRecord(snapshot, now_us))) {
      Metrics().write_failures->Increment();
    }
  }
  if (!options_.prometheus_path.empty()) {
    if (!WriteFileAtomically(options_.prometheus_path,
                             PrometheusText(snapshot))) {
      Metrics().write_failures->Increment();
    }
  }
  Metrics().ticks->Increment();
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

std::string MetricsExporter::NdjsonRecord(const Registry::Snapshot& snapshot,
                                          int64_t now_us) const {
  JsonWriter counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.AddUint(name, value);
  }
  JsonWriter gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.AddNumber(name, value);
  }
  JsonWriter histograms;
  for (const auto& [name, stats] : snapshot.histograms) {
    histograms.AddRaw(name, HistogramJson(stats));
  }

  JsonWriter rates;
  for (const auto& [name, rate] : window_.AllCounterRates()) {
    rates.AddNumber(name, rate);
  }
  JsonWriter windowed_histograms;
  for (const auto& [name, stats] : snapshot.histograms) {
    HistogramStats delta = window_.HistogramDelta(name);
    if (delta.count > 0) {
      windowed_histograms.AddRaw(name, HistogramJson(delta));
    }
  }
  JsonWriter window;
  window.AddNumber("covered_seconds", window_.CoveredSeconds())
      .AddRaw("counter_rates", rates.Finish())
      .AddRaw("histograms", windowed_histograms.Finish());

  JsonWriter record;
  record.AddInt("t_us", now_us)
      .AddUint("tick", ticks() + 1)
      .AddRaw("counters", counters.Finish())
      .AddRaw("gauges", gauges.Finish())
      .AddRaw("histograms", histograms.Finish())
      .AddRaw("window", window.Finish());
  return record.Finish();
}

std::string MetricsExporter::PrometheusText(
    const Registry::Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n"
        << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << " " << JsonNumber(value) << "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < stats.buckets.size(); ++b) {
      cumulative += stats.buckets[b];
      double bound = Histogram::BucketBound(b);
      out << prom << "_bucket{le=\""
          << (std::isfinite(bound) ? FormatBound(bound) : "+Inf") << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_sum " << JsonNumber(stats.sum) << "\n"
        << prom << "_count " << stats.count << "\n";
  }
  return out.str();
}

}  // namespace infuserki::obs
