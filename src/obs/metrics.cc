#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace infuserki::obs {
namespace {

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void FillQuantiles(HistogramStats* stats) {
  stats->p50 = HistogramQuantile(*stats, 0.50);
  stats->p90 = HistogramQuantile(*stats, 0.90);
  stats->p99 = HistogramQuantile(*stats, 0.99);
  stats->p999 = HistogramQuantile(*stats, 0.999);
}

}  // namespace

double HistogramQuantile(const HistogramStats& stats, double q) {
  if (stats.count == 0 || stats.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target: the k-th smallest sample with k = ceil(q * count),
  // floored at 1 so every quantile of a single sample is that sample.
  double target = std::max(1.0, q * static_cast<double>(stats.count));
  double cumulative = 0.0;
  for (size_t b = 0; b < stats.buckets.size(); ++b) {
    double in_bucket = static_cast<double>(stats.buckets[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      double lower = b == 0 ? 0.0 : Histogram::BucketBound(b - 1);
      double upper = Histogram::BucketBound(b);
      if (!std::isfinite(upper)) upper = std::max(stats.max, lower);
      double fraction = (target - cumulative) / in_bucket;
      double value = lower + fraction * (upper - lower);
      // The clamp makes constant distributions exact (min == max == value)
      // and keeps interpolation inside the observed range.
      return std::clamp(value, stats.min, stats.max);
    }
    cumulative += in_bucket;
  }
  return stats.max;
}

HistogramStats SubtractHistogramStats(const HistogramStats& after,
                                      const HistogramStats& before) {
  HistogramStats delta;
  delta.count = after.count >= before.count ? after.count - before.count : 0;
  delta.sum = after.sum - before.sum;
  delta.min = after.min;
  delta.max = after.max;
  delta.mean =
      delta.count == 0 ? 0.0 : delta.sum / static_cast<double>(delta.count);
  delta.buckets.resize(after.buckets.size(), 0);
  for (size_t b = 0; b < after.buckets.size(); ++b) {
    uint64_t prior = b < before.buckets.size() ? before.buckets[b] : 0;
    delta.buckets[b] = after.buckets[b] >= prior ? after.buckets[b] - prior : 0;
  }
  if (delta.count == 0) return HistogramStats{};
  FillQuantiles(&delta);
  return delta;
}

void Histogram::Record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // min_/max_ start at +/-inf, so the CAS loops alone are correct for the
  // first sample too — no seeding store that could clobber a concurrent
  // update (the old `if (previous == 0)` branch lost min/max under races).
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketIndexFor(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  stats.count = count_.load(std::memory_order_relaxed);
  stats.buckets.resize(kNumBuckets, 0);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    stats.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  if (stats.count == 0) return stats;
  stats.sum = sum_.load(std::memory_order_relaxed);
  double min = min_.load(std::memory_order_relaxed);
  double max = max_.load(std::memory_order_relaxed);
  // A racing snapshot can observe count > 0 before the first sample's
  // CAS published min/max; report 0 rather than +/-inf in that window.
  stats.min = std::isfinite(min) ? min : 0.0;
  stats.max = std::isfinite(max) ? max : 0.0;
  stats.mean = stats.sum / static_cast<double>(stats.count);
  FillQuantiles(&stats);
  return stats;
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

double Histogram::BucketBound(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return kFirstBound * std::pow(2.0, static_cast<double>(bucket));
}

size_t Histogram::BucketIndexFor(double value) {
  if (value <= kFirstBound) return 0;
  // Smallest i with value <= kFirstBound * 2^i.
  int exponent = static_cast<int>(std::ceil(std::log2(value / kFirstBound)));
  if (exponent < 0) return 0;
  size_t bucket = static_cast<size_t>(exponent);
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {

// Aborts on kind collisions: the same name registered as two metric kinds
// is a naming bug, and silently returning null would hide it.
template <typename Map>
void CheckNameFree(const Map& map, const std::string& name,
                   const char* kind) {
  if (map.find(name) != map.end()) {
    std::fprintf(stderr,
                 "obs: metric '%s' already registered as a %s; pick a "
                 "distinct name per kind\n",
                 name.c_str(), kind);
    std::abort();
  }
}

}  // namespace

Counter* Registry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckNameFree(gauges_, name, "gauge");
    CheckNameFree(histograms_, name, "histogram");
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckNameFree(counters_, name, "counter");
    CheckNameFree(histograms_, name, "histogram");
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckNameFree(counters_, name, "counter");
    CheckNameFree(gauges_, name, "gauge");
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return it->second.get();
}

Registry::Snapshot Registry::TakeSnapshot() const {
  util::MutexLock lock(mu_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Stats();
  }
  return snapshot;
}

std::string Registry::TextDump() const {
  Snapshot snapshot = TakeSnapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    os << name << " = count " << stats.count << ", sum " << stats.sum
       << ", mean " << stats.mean << ", min " << stats.min << ", max "
       << stats.max << ", p50 " << stats.p50 << ", p90 " << stats.p90
       << ", p99 " << stats.p99 << ", p999 " << stats.p999 << "\n";
  }
  return os.str();
}

std::string Registry::JsonDump() const {
  Snapshot snapshot = TakeSnapshot();
  JsonWriter counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.AddUint(name, value);
  }
  JsonWriter gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.AddNumber(name, value);
  }
  JsonWriter histograms;
  for (const auto& [name, stats] : snapshot.histograms) {
    JsonWriter h;
    h.AddUint("count", stats.count)
        .AddNumber("sum", stats.sum)
        .AddNumber("mean", stats.mean)
        .AddNumber("min", stats.min)
        .AddNumber("max", stats.max)
        .AddNumber("p50", stats.p50)
        .AddNumber("p90", stats.p90)
        .AddNumber("p99", stats.p99)
        .AddNumber("p999", stats.p999);
    histograms.AddRaw(name, h.Finish());
  }
  JsonWriter out;
  out.AddRaw("counters", counters.Finish())
      .AddRaw("gauges", gauges.Finish())
      .AddRaw("histograms", histograms.Finish());
  return out.Finish();
}

void Registry::ResetAll() {
  util::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace infuserki::obs
