#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace infuserki::obs {
namespace {

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

size_t BucketIndex(double value) {
  if (value <= Histogram::kFirstBound) return 0;
  // Smallest i with value <= kFirstBound * 2^i.
  int exponent = static_cast<int>(
      std::ceil(std::log2(value / Histogram::kFirstBound)));
  if (exponent < 0) return 0;
  size_t bucket = static_cast<size_t>(exponent);
  return bucket < Histogram::kNumBuckets ? bucket
                                         : Histogram::kNumBuckets - 1;
}

}  // namespace

void Histogram::Record(double value) {
  uint64_t previous = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (previous == 0) {
    // First sample seeds min/max; racing recorders converge via the CAS
    // loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  stats.count = count_.load(std::memory_order_relaxed);
  stats.sum = sum_.load(std::memory_order_relaxed);
  stats.min = min_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);
  stats.mean =
      stats.count == 0 ? 0.0 : stats.sum / static_cast<double>(stats.count);
  return stats;
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

double Histogram::BucketBound(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return kFirstBound * std::pow(2.0, static_cast<double>(bucket));
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {

// Aborts on kind collisions: the same name registered as two metric kinds
// is a naming bug, and silently returning null would hide it.
template <typename Map>
void CheckNameFree(const Map& map, const std::string& name,
                   const char* kind) {
  if (map.find(name) != map.end()) {
    std::fprintf(stderr,
                 "obs: metric '%s' already registered as a %s; pick a "
                 "distinct name per kind\n",
                 name.c_str(), kind);
    std::abort();
  }
}

}  // namespace

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckNameFree(gauges_, name, "gauge");
    CheckNameFree(histograms_, name, "histogram");
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckNameFree(counters_, name, "counter");
    CheckNameFree(histograms_, name, "histogram");
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckNameFree(counters_, name, "counter");
    CheckNameFree(gauges_, name, "gauge");
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return it->second.get();
}

Registry::Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Stats();
  }
  return snapshot;
}

std::string Registry::TextDump() const {
  Snapshot snapshot = TakeSnapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    os << name << " = count " << stats.count << ", sum " << stats.sum
       << ", mean " << stats.mean << ", min " << stats.min << ", max "
       << stats.max << "\n";
  }
  return os.str();
}

std::string Registry::JsonDump() const {
  Snapshot snapshot = TakeSnapshot();
  JsonWriter counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.AddUint(name, value);
  }
  JsonWriter gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.AddNumber(name, value);
  }
  JsonWriter histograms;
  for (const auto& [name, stats] : snapshot.histograms) {
    JsonWriter h;
    h.AddUint("count", stats.count)
        .AddNumber("sum", stats.sum)
        .AddNumber("mean", stats.mean)
        .AddNumber("min", stats.min)
        .AddNumber("max", stats.max);
    histograms.AddRaw(name, h.Finish());
  }
  JsonWriter out;
  out.AddRaw("counters", counters.Finish())
      .AddRaw("gauges", gauges.Finish())
      .AddRaw("histograms", histograms.Finish());
  return out.Finish();
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace infuserki::obs
