#ifndef INFUSERKI_OBS_SLO_REPORT_H_
#define INFUSERKI_OBS_SLO_REPORT_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace infuserki::obs {

/// One latency distribution of the serving SLO summary, in milliseconds.
struct SloLatency {
  uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// Serving SLO summary built from the obs registry's `serve/*` metrics:
/// outcome counts and rates plus quantile views of end-to-end latency,
/// time-to-first-token, inter-token latency, and queue wait.
struct SloReport {
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t deadline_misses = 0;
  uint64_t cancelled = 0;
  uint64_t failures = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
  // Shed sub-reasons (sum to `shed`; DESIGN.md §14 overload control).
  uint64_t shed_queue_full = 0;
  uint64_t shed_tenant_cap = 0;
  uint64_t shed_rate_limited = 0;
  uint64_t shed_brownout = 0;
  uint64_t shed_infeasible = 0;
  // Self-healing: stalls declared by the watchdog, and batches it failed
  // over so the scheduler could keep serving.
  uint64_t watchdog_stalls = 0;
  uint64_t watchdog_recoveries = 0;
  // Mean brownout level over the window (area under the degradation
  // curve / watchdog ticks): 0 = never browned out.
  double brownout_mean_level = 0.0;
  double shed_rate = 0.0;           // shed / requests
  double deadline_miss_rate = 0.0;  // deadline_misses / requests
  SloLatency e2e;         // admission → completion, OK outcomes only
  SloLatency ttft;        // admission → first generated token
  SloLatency inter_token; // gaps between consecutive decode steps
  SloLatency queue_wait;  // admission → dequeue
};

/// Builds the SLO summary covering `after - before`. Pass a
/// default-constructed `before` for a since-process-start report.
SloReport BuildSloReport(const Registry::Snapshot& before,
                         const Registry::Snapshot& after);

/// JSON object serialization (the `slo` block of BENCH_serve.json).
std::string SloReportJson(const SloReport& report);

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_SLO_REPORT_H_
