#include "obs/slo_report.h"

#include "obs/json.h"

namespace infuserki::obs {
namespace {

uint64_t CounterDelta(const Registry::Snapshot& before,
                      const Registry::Snapshot& after,
                      const std::string& name) {
  auto after_it = after.counters.find(name);
  if (after_it == after.counters.end()) return 0;
  auto before_it = before.counters.find(name);
  uint64_t base =
      before_it == before.counters.end() ? 0 : before_it->second;
  return after_it->second >= base ? after_it->second - base : 0;
}

SloLatency LatencyDelta(const Registry::Snapshot& before,
                        const Registry::Snapshot& after,
                        const std::string& name) {
  SloLatency latency;
  auto after_it = after.histograms.find(name);
  if (after_it == after.histograms.end()) return latency;
  auto before_it = before.histograms.find(name);
  HistogramStats delta =
      before_it == before.histograms.end()
          ? after_it->second
          : SubtractHistogramStats(after_it->second, before_it->second);
  latency.count = delta.count;
  latency.mean_ms = delta.mean * 1e3;
  latency.p50_ms = delta.p50 * 1e3;
  latency.p90_ms = delta.p90 * 1e3;
  latency.p99_ms = delta.p99 * 1e3;
  latency.p999_ms = delta.p999 * 1e3;
  latency.max_ms = delta.max * 1e3;
  return latency;
}

/// Mean of a histogram's window delta in its native unit (no ms scaling) —
/// used for the brownout-level occupancy summary.
double HistogramMeanDelta(const Registry::Snapshot& before,
                          const Registry::Snapshot& after,
                          const std::string& name) {
  auto after_it = after.histograms.find(name);
  if (after_it == after.histograms.end()) return 0.0;
  auto before_it = before.histograms.find(name);
  HistogramStats delta =
      before_it == before.histograms.end()
          ? after_it->second
          : SubtractHistogramStats(after_it->second, before_it->second);
  return delta.count > 0 ? delta.mean : 0.0;
}

std::string LatencyJson(const SloLatency& latency) {
  JsonWriter out;
  out.AddUint("count", latency.count)
      .AddNumber("mean_ms", latency.mean_ms)
      .AddNumber("p50_ms", latency.p50_ms)
      .AddNumber("p90_ms", latency.p90_ms)
      .AddNumber("p99_ms", latency.p99_ms)
      .AddNumber("p999_ms", latency.p999_ms)
      .AddNumber("max_ms", latency.max_ms);
  return out.Finish();
}

}  // namespace

SloReport BuildSloReport(const Registry::Snapshot& before,
                         const Registry::Snapshot& after) {
  SloReport report;
  report.requests = CounterDelta(before, after, "serve/requests");
  report.completed = CounterDelta(before, after, "serve/completed");
  report.shed = CounterDelta(before, after, "serve/shed");
  report.deadline_misses =
      CounterDelta(before, after, "serve/deadline_misses");
  report.cancelled = CounterDelta(before, after, "serve/cancelled");
  report.failures = CounterDelta(before, after, "serve/failures");
  report.degraded = CounterDelta(before, after, "serve/degraded");
  report.retries = CounterDelta(before, after, "serve/retries");
  report.shed_queue_full =
      CounterDelta(before, after, "serve/shed_queue_full");
  report.shed_tenant_cap =
      CounterDelta(before, after, "serve/shed_tenant_cap");
  report.shed_rate_limited =
      CounterDelta(before, after, "serve/shed_rate_limited");
  report.shed_brownout = CounterDelta(before, after, "serve/shed_brownout");
  report.shed_infeasible =
      CounterDelta(before, after, "serve/shed_infeasible");
  report.watchdog_stalls =
      CounterDelta(before, after, "serve/watchdog_stalls");
  report.watchdog_recoveries =
      CounterDelta(before, after, "serve/watchdog_recoveries");
  report.brownout_mean_level =
      HistogramMeanDelta(before, after, "serve/brownout_level_samples");
  if (report.requests > 0) {
    double requests = static_cast<double>(report.requests);
    report.shed_rate = static_cast<double>(report.shed) / requests;
    report.deadline_miss_rate =
        static_cast<double>(report.deadline_misses) / requests;
  }
  report.e2e = LatencyDelta(before, after, "serve/e2e_ok_seconds");
  report.ttft = LatencyDelta(before, after, "serve/ttft_seconds");
  report.inter_token =
      LatencyDelta(before, after, "serve/inter_token_seconds");
  report.queue_wait =
      LatencyDelta(before, after, "serve/queue_wait_seconds");
  return report;
}

std::string SloReportJson(const SloReport& report) {
  JsonWriter out;
  out.AddUint("requests", report.requests)
      .AddUint("completed", report.completed)
      .AddUint("shed", report.shed)
      .AddUint("deadline_misses", report.deadline_misses)
      .AddUint("cancelled", report.cancelled)
      .AddUint("failures", report.failures)
      .AddUint("degraded", report.degraded)
      .AddUint("retries", report.retries)
      .AddUint("shed_queue_full", report.shed_queue_full)
      .AddUint("shed_tenant_cap", report.shed_tenant_cap)
      .AddUint("shed_rate_limited", report.shed_rate_limited)
      .AddUint("shed_brownout", report.shed_brownout)
      .AddUint("shed_infeasible", report.shed_infeasible)
      .AddUint("watchdog_stalls", report.watchdog_stalls)
      .AddUint("watchdog_recoveries", report.watchdog_recoveries)
      .AddNumber("brownout_mean_level", report.brownout_mean_level)
      .AddNumber("shed_rate", report.shed_rate)
      .AddNumber("deadline_miss_rate", report.deadline_miss_rate)
      .AddRaw("e2e", LatencyJson(report.e2e))
      .AddRaw("ttft", LatencyJson(report.ttft))
      .AddRaw("inter_token", LatencyJson(report.inter_token))
      .AddRaw("queue_wait", LatencyJson(report.queue_wait));
  return out.Finish();
}

}  // namespace infuserki::obs
