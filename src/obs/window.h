#ifndef INFUSERKI_OBS_WINDOW_H_
#define INFUSERKI_OBS_WINDOW_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::obs {

/// Sliding-window view over the metrics registry: a ring of timestamped
/// cumulative snapshots. Windowed aggregates are "newest minus baseline",
/// where the baseline is the most recent frame at least `window_seconds`
/// older than the newest — so operators see last-N-seconds rates and
/// quantiles instead of since-process-start aggregates.
///
/// Thread-safe: Tick() and every reader take the same internal mutex (the
/// expensive part, Registry::TakeSnapshot, happens outside it).
class SlidingWindow {
 public:
  explicit SlidingWindow(double window_seconds = 30.0,
                         size_t max_frames = 256);

  /// Captures a registry snapshot stamped `now_us` (NowMicros() when
  /// negative) and evicts frames older than the window, always retaining
  /// one baseline frame.
  void Tick(int64_t now_us = -1);

  /// Seconds actually spanned by the retained frames (<= the configured
  /// window until enough ticks have accumulated; 0 before two ticks).
  double CoveredSeconds() const;

  /// Windowed counter increase; 0 before two ticks or for unknown names.
  uint64_t CounterDelta(const std::string& name) const;

  /// Windowed counter rate in events/second; 0 before two ticks.
  double CounterRate(const std::string& name) const;

  /// Most recent gauge reading (gauges are instantaneous, not windowed).
  double GaugeValue(const std::string& name) const;

  /// Windowed histogram stats: counts/sum/buckets are newest-minus-baseline
  /// with quantiles recomputed from the delta buckets (see
  /// SubtractHistogramStats for the min/max caveat). Empty stats before two
  /// ticks or for unknown names.
  HistogramStats HistogramDelta(const std::string& name) const;

  /// Windowed rate for every counter in the newest frame.
  std::map<std::string, double> AllCounterRates() const;

  double window_seconds() const { return window_seconds_; }
  size_t frame_count() const;

 private:
  struct Frame {
    int64_t t_us = 0;
    Registry::Snapshot snapshot;
  };

  /// Returns false before two frames exist.
  bool BoundsLocked(const Frame** baseline, const Frame** newest) const
      REQUIRES(mu_);

  const double window_seconds_;
  const size_t max_frames_;
  mutable util::Mutex mu_;
  std::deque<Frame> frames_ GUARDED_BY(mu_);
};

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_WINDOW_H_
