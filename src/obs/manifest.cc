#include "obs/manifest.h"

#include "obs/atomic_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace infuserki::obs {

Lineage& Lineage::Get() {
  // Locking contract: magic-static first touch; all post-init access to
  // `events_` (Record/Snapshot/Clear) holds `mu_`, and Snapshot returns a
  // copy so callers never hold a reference into the guarded vector.
  static Lineage* lineage = new Lineage();
  return *lineage;
}

void Lineage::Record(std::string event) {
  util::MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<std::string> Lineage::Snapshot() const {
  util::MutexLock lock(mu_);
  return events_;
}

void Lineage::Clear() {
  util::MutexLock lock(mu_);
  events_.clear();
}

RunManifest::RunManifest(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void RunManifest::AddConfig(const std::string& key,
                            const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void RunManifest::AddConfig(const std::string& key, int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunManifest::AddConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

std::string RunManifest::ToJson() const {
  JsonWriter config;
  for (const auto& [key, value] : config_) {
    config.AddRaw(key, value);
  }
  JsonWriter spans;
  for (const auto& [name, rollup] : Tracer::Get().Rollup()) {
    JsonWriter span;
    span.AddUint("count", rollup.count)
        .AddNumber("total_seconds",
                   static_cast<double>(rollup.total_us) * 1e-6);
    spans.AddRaw(name, span.Finish());
  }
  std::string lineage = "[";
  for (const std::string& event : Lineage::Get().Snapshot()) {
    if (lineage.size() > 1) lineage += ",";
    lineage += "\"" + JsonEscape(event) + "\"";
  }
  lineage += "]";
  JsonWriter out;
  out.AddString("bench", bench_name_)
      .AddRaw("config", config.Finish())
      .AddRaw("metrics", Registry::Get().JsonDump())
      .AddRaw("spans", spans.Finish())
      .AddUint("spans_dropped", Tracer::Get().dropped())
      .AddRaw("lineage", lineage);
  return out.Finish();
}

bool RunManifest::Write(const std::string& path) const {
  return WriteFileAtomically(path, ToJson() + "\n");
}

}  // namespace infuserki::obs
