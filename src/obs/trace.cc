#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/atomic_io.h"
#include "obs/json.h"

namespace infuserki::obs {
namespace {

// Nesting depth of the calling thread's open spans.
thread_local int32_t t_depth = 0;

}  // namespace

int64_t NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

struct Tracer::ThreadBuffer {
  util::Mutex mu;
  std::vector<SpanEvent> ring GUARDED_BY(mu);
  size_t capacity GUARDED_BY(mu) = 0;
  // Write cursor once the ring is full.
  size_t next GUARDED_BY(mu) = 0;
  uint32_t tid = 0;  // immutable after registration
};

Tracer& Tracer::Get() {
  // Locking contract: magic-static first touch; `buffers_` (the list of
  // per-thread rings) is GUARDED_BY(mu_), each ring's contents by its own
  // `ThreadBuffer::mu` (both compiler-enforced under the tsa preset), and
  // enabled_/capacity_/dropped_/next_tid_ are atomics. Readers
  // (Events/Clear) copy the buffer list under `mu_` and then lock each ring
  // individually; only Enable nests mu_ -> ThreadBuffer::mu (DESIGN.md §13),
  // and the record path takes just the calling thread's buffer lock.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity_per_thread) {
  if (capacity_per_thread == 0) capacity_per_thread = 1;
  capacity_.store(capacity_per_thread, std::memory_order_relaxed);
  {
    // Existing buffers adopt the new capacity (their retained events are
    // kept up to the new bound).
    util::MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      util::MutexLock buffer_lock(buffer->mu);
      buffer->capacity = capacity_per_thread;
      if (buffer->ring.size() > capacity_per_thread) {
        buffer->ring.resize(capacity_per_thread);
      }
      if (buffer->next >= buffer->capacity) buffer->next = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto created = std::make_shared<ThreadBuffer>();
    created->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock buffer_lock(created->mu);
      created->capacity = capacity_.load(std::memory_order_relaxed);
    }
    util::MutexLock lock(mu_);
    buffers_.push_back(created);
    return created;
  }();
  return buffer.get();
}

void Tracer::Record(std::string name, int64_t begin_us, int64_t end_us,
                    int32_t depth) {
  ThreadBuffer* buffer = LocalBuffer();
  util::MutexLock lock(buffer->mu);
  SpanEvent event;
  event.name = std::move(name);
  event.begin_us = begin_us;
  event.end_us = end_us;
  event.tid = buffer->tid;
  event.depth = depth;
  if (buffer->ring.size() < buffer->capacity) {
    buffer->ring.push_back(std::move(event));
  } else {
    buffer->ring[buffer->next] = std::move(event);
    buffer->next = (buffer->next + 1) % buffer->capacity;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t Tracer::NextTrackId() {
  return next_track_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::RecordAsync(uint64_t track, std::string name, int64_t begin_us,
                         int64_t end_us) {
  if (!enabled()) return;
  AsyncSpanEvent event;
  event.name = std::move(name);
  event.track = track;
  event.begin_us = begin_us;
  event.end_us = end_us;
  util::MutexLock lock(async_mu_);
  if (async_ring_.size() < kAsyncCapacity) {
    async_ring_.push_back(std::move(event));
  } else {
    async_ring_[async_next_] = std::move(event);
    async_next_ = (async_next_ + 1) % kAsyncCapacity;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<AsyncSpanEvent> Tracer::AsyncEvents() const {
  std::vector<AsyncSpanEvent> events;
  {
    util::MutexLock lock(async_mu_);
    events = async_ring_;
  }
  std::sort(events.begin(), events.end(),
            [](const AsyncSpanEvent& a, const AsyncSpanEvent& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
              // The enclosing request slice opens first at equal begin.
              return a.end_us > b.end_us;
            });
  return events;
}

std::vector<SpanEvent> Tracer::Events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    util::MutexLock buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
              // Parents open before children; ties break outermost-first.
              return a.depth < b.depth;
            });
  return events;
}

std::map<std::string, SpanRollup> Tracer::Rollup() const {
  std::map<std::string, SpanRollup> rollup;
  for (const SpanEvent& event : Events()) {
    SpanRollup& entry = rollup[event.name];
    ++entry.count;
    entry.total_us += event.end_us - event.begin_us;
  }
  return rollup;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"infuserki\"}}";
  for (const SpanEvent& event : Events()) {
    JsonWriter args;
    args.AddInt("depth", event.depth);
    JsonWriter entry;
    entry.AddString("name", event.name)
        .AddString("cat", "obs")
        .AddString("ph", "X")
        .AddInt("pid", 1)
        .AddInt("tid", event.tid)
        .AddInt("ts", event.begin_us)
        .AddInt("dur", event.end_us - event.begin_us)
        .AddRaw("args", args.Finish());
    out << ",\n" << entry.Finish();
  }
  // Request-scoped swimlanes: nestable async begin/end pairs (ph "b"/"e")
  // plus instants (ph "n"). Events sharing an id group into one track, so
  // a request reads as a single lane across worker threads.
  for (const AsyncSpanEvent& event : AsyncEvents()) {
    std::ostringstream id;
    id << "0x" << std::hex << event.track;
    bool instant = event.begin_us == event.end_us;
    JsonWriter begin;
    begin.AddString("name", event.name)
        .AddString("cat", "request")
        .AddString("ph", instant ? "n" : "b")
        .AddInt("pid", 1)
        .AddInt("tid", 0)
        .AddString("id", id.str())
        .AddInt("ts", event.begin_us);
    out << ",\n" << begin.Finish();
    if (!instant) {
      JsonWriter end;
      end.AddString("name", event.name)
          .AddString("cat", "request")
          .AddString("ph", "e")
          .AddInt("pid", 1)
          .AddInt("tid", 0)
          .AddString("id", id.str())
          .AddInt("ts", event.end_us);
      out << ",\n" << end.Finish();
    }
  }
  out << "\n]}\n";
  return WriteFileAtomically(path, out.str());
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    util::MutexLock buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
  }
  {
    util::MutexLock lock(async_mu_);
    async_ring_.clear();
    async_next_ = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

RequestTrace RequestTrace::Begin() {
  RequestTrace trace;
  trace.id_ = Tracer::Get().NextTrackId();
  trace.begin_us_ = NowMicros();
  return trace;
}

void RequestTrace::Phase(std::string name, int64_t phase_begin_us,
                         int64_t phase_end_us) const {
  if (id_ == 0) return;
  Tracer::Get().RecordAsync(id_, std::move(name), phase_begin_us,
                            phase_end_us);
}

void RequestTrace::Mark(std::string name) const {
  if (id_ == 0) return;
  int64_t now = NowMicros();
  Tracer::Get().RecordAsync(id_, std::move(name), now, now);
}

void RequestTrace::End(std::string name) const {
  if (id_ == 0) return;
  Tracer::Get().RecordAsync(id_, std::move(name), begin_us_, NowMicros());
}

ScopedSpan::ScopedSpan(std::string name) {
  if (!Tracer::Get().enabled()) return;
  active_ = true;
  name_ = std::move(name);
  depth_ = t_depth++;
  begin_us_ = NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_depth;
  Tracer::Get().Record(std::move(name_), begin_us_, NowMicros(), depth_);
}

}  // namespace infuserki::obs
