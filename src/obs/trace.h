#ifndef INFUSERKI_OBS_TRACE_H_
#define INFUSERKI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace infuserki::obs {

/// Microseconds since process start (steady clock). The trace timeline and
/// chrome://tracing timestamps use this clock.
int64_t NowMicros();

/// One completed span: [begin_us, end_us] on thread `tid` at nesting depth
/// `depth` (0 = outermost span on that thread).
struct SpanEvent {
  std::string name;
  int64_t begin_us = 0;
  int64_t end_us = 0;
  uint32_t tid = 0;
  int32_t depth = 0;
};

/// Aggregated view of every span sharing one name.
struct SpanRollup {
  uint64_t count = 0;
  int64_t total_us = 0;
};

/// Process-wide span recorder. Each thread appends completed spans to its
/// own fixed-capacity ring buffer (oldest events are overwritten), so the
/// record path takes only the calling thread's uncontended buffer lock.
class Tracer {
 public:
  static Tracer& Get();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts recording. Spans opened while disabled are dropped entirely.
  /// `capacity_per_thread` bounds each thread's ring buffer.
  void Enable(size_t capacity_per_thread = 1 << 15);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span against the calling thread's ring buffer.
  /// Usually called via ScopedSpan / OBS_SPAN, not directly.
  void Record(std::string name, int64_t begin_us, int64_t end_us,
              int32_t depth);

  /// Every retained event across all threads, ordered by begin time.
  std::vector<SpanEvent> Events() const;

  /// Number of events evicted from full ring buffers so far.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Per-name count and total duration over the retained events.
  std::map<std::string, SpanRollup> Rollup() const;

  /// Writes the retained events as chrome://tracing "trace event" JSON
  /// (complete "X" events). Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops all retained events. Thread buffers stay registered.
  void Clear();

 private:
  struct ThreadBuffer;

  Tracer() = default;
  ThreadBuffer* LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> capacity_{1 << 15};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{0};
  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: snapshots the clock on construction and records a SpanEvent
/// on destruction. Construction is a no-op while tracing is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  explicit ScopedSpan(const char* name) : ScopedSpan(std::string(name)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  std::string name_;
  int64_t begin_us_ = 0;
  int32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace infuserki::obs

#define OBS_SPAN_CONCAT_INNER(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing block, e.g.
/// OBS_SPAN("pretrain/step"). `name` may be a const char* or std::string.
#define OBS_SPAN(name)                                   \
  ::infuserki::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, \
                                               __LINE__)(name)

#endif  // INFUSERKI_OBS_TRACE_H_
