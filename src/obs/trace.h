#ifndef INFUSERKI_OBS_TRACE_H_
#define INFUSERKI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::obs {

/// Microseconds since process start (steady clock). The trace timeline and
/// chrome://tracing timestamps use this clock.
int64_t NowMicros();

/// One completed span: [begin_us, end_us] on thread `tid` at nesting depth
/// `depth` (0 = outermost span on that thread).
struct SpanEvent {
  std::string name;
  int64_t begin_us = 0;
  int64_t end_us = 0;
  uint32_t tid = 0;
  int32_t depth = 0;
};

/// Aggregated view of every span sharing one name.
struct SpanRollup {
  uint64_t count = 0;
  int64_t total_us = 0;
};

/// One async (request-scoped) event: a [begin_us, end_us] slice, or an
/// instant marker when begin_us == end_us. Every event sharing a `track`
/// id renders as one swimlane in chrome://tracing, so a request's whole
/// lifecycle (queue → prefill → decode steps → completion) reads as a
/// single horizontal track regardless of which worker threads ran it.
struct AsyncSpanEvent {
  std::string name;
  uint64_t track = 0;
  int64_t begin_us = 0;
  int64_t end_us = 0;
};

/// Process-wide span recorder. Each thread appends completed spans to its
/// own fixed-capacity ring buffer (oldest events are overwritten), so the
/// record path takes only the calling thread's uncontended buffer lock.
class Tracer {
 public:
  static Tracer& Get();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts recording. Spans opened while disabled are dropped entirely.
  /// `capacity_per_thread` bounds each thread's ring buffer.
  void Enable(size_t capacity_per_thread = 1 << 15);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span against the calling thread's ring buffer.
  /// Usually called via ScopedSpan / OBS_SPAN, not directly.
  void Record(std::string name, int64_t begin_us, int64_t end_us,
              int32_t depth);

  /// Every retained event across all threads, ordered by begin time.
  std::vector<SpanEvent> Events() const;

  /// Allocates a process-unique async track id (never 0). Cheap (one
  /// relaxed fetch_add) and available even while tracing is disabled, so
  /// request ids stay stable whether or not a trace is being captured.
  uint64_t NextTrackId();

  /// Records one async event on `track`. begin_us == end_us records an
  /// instant marker. No-op while disabled; the async ring keeps the newest
  /// kAsyncCapacity events (evictions count toward dropped()).
  void RecordAsync(uint64_t track, std::string name, int64_t begin_us,
                   int64_t end_us);

  /// Every retained async event, ordered by (track, begin time).
  std::vector<AsyncSpanEvent> AsyncEvents() const;

  /// Number of events evicted from full ring buffers so far.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Per-name count and total duration over the retained events.
  std::map<std::string, SpanRollup> Rollup() const;

  /// Writes the retained events as chrome://tracing "trace event" JSON
  /// (complete "X" events). Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops all retained events. Thread buffers stay registered.
  void Clear();

 private:
  struct ThreadBuffer;

  /// Async events are shared across threads (a request migrates between
  /// submitter and worker), so they live in one mutex-guarded ring rather
  /// than the per-thread buffers.
  static constexpr size_t kAsyncCapacity = 1 << 16;

  Tracer() = default;
  ThreadBuffer* LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> capacity_{1 << 15};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{0};
  std::atomic<uint64_t> next_track_{1};
  // Lock order (DESIGN.md §13): mu_ may be held while taking an individual
  // ThreadBuffer::mu (Enable's capacity adoption); never the reverse. The
  // record path takes only the calling thread's buffer lock.
  mutable util::Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  mutable util::Mutex async_mu_;
  std::vector<AsyncSpanEvent> async_ring_ GUARDED_BY(async_mu_);
  // Write cursor once the async ring is full.
  size_t async_next_ GUARDED_BY(async_mu_) = 0;
};

/// RAII span: snapshots the clock on construction and records a SpanEvent
/// on destruction. Construction is a no-op while tracing is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  explicit ScopedSpan(const char* name) : ScopedSpan(std::string(name)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  std::string name_;
  int64_t begin_us_ = 0;
  int32_t depth_ = 0;
  bool active_ = false;
};

/// Request-scoped trace handle: a unique track id plus the admission
/// timestamp. Copies are cheap value types; the handle rides with a request
/// through queueing, prefill, and decode so every lifecycle event lands on
/// one chrome://tracing swimlane. Events are recorded only while tracing is
/// enabled, but the id is always allocated, so callers can expose it (e.g.
/// serve::Response::request_id) unconditionally.
class RequestTrace {
 public:
  RequestTrace() = default;

  /// Allocates a track id and stamps the admission time.
  static RequestTrace Begin();

  uint64_t id() const { return id_; }
  int64_t begin_us() const { return begin_us_; }

  /// Records the named sub-phase [phase_begin_us, phase_end_us].
  void Phase(std::string name, int64_t phase_begin_us,
             int64_t phase_end_us) const;
  /// Records an instant marker (cache hit, retry, shed, degradation) now.
  void Mark(std::string name) const;
  /// Closes the track: records the enclosing admission→now slice. Call
  /// exactly once, after every Phase/Mark for this request.
  void End(std::string name) const;

 private:
  uint64_t id_ = 0;
  int64_t begin_us_ = 0;
};

}  // namespace infuserki::obs

#define OBS_SPAN_CONCAT_INNER(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing block, e.g.
/// OBS_SPAN("pretrain/step"). `name` may be a const char* or std::string.
#define OBS_SPAN(name)                                   \
  ::infuserki::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, \
                                               __LINE__)(name)

#endif  // INFUSERKI_OBS_TRACE_H_
