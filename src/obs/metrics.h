#ifndef INFUSERKI_OBS_METRICS_H_
#define INFUSERKI_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::obs {

/// Monotonically increasing event count. Increment() is a single relaxed
/// atomic add: cheap enough for tensor-op hot paths and worker threads.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written scalar. Set() overwrites; UpdateMax() is an atomic
/// compare-and-swap maximum (used for high-water marks such as queue depth).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it exceeds the current reading. NaN is
  /// rejected outright: NaN compares false against everything, so a NaN
  /// sample must not poison the high-water mark, and a NaN that reached the
  /// stored value (via Set) would otherwise wedge UpdateMax forever
  /// (`value > NaN` is false for every later sample).
  void UpdateMax(double value) {
    if (std::isnan(value)) return;
    double current = value_.load(std::memory_order_relaxed);
    while ((std::isnan(current) || value > current) &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram at a point in time. Quantiles are
/// interpolated from the exponential buckets, so each is exact to within
/// one bucket (<= 2x relative error) and exact for constant distributions
/// (the interpolation clamps to [min, max]). An empty histogram reports
/// count == 0 with every other field zero — callers must check `count`
/// before treating min/max as observed samples.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  /// Per-bucket sample counts (size Histogram::kNumBuckets) — the raw
  /// material for quantile interpolation and windowed deltas.
  std::vector<uint64_t> buckets;
};

/// Interpolated quantile (q in [0, 1]) from `stats.buckets`: walks the
/// cumulative bucket counts to the bucket containing rank ceil(q * count),
/// linearly interpolates inside it, and clamps to [min, max]. Returns 0 for
/// an empty histogram.
double HistogramQuantile(const HistogramStats& stats, double q);

/// Point-in-time difference `after - before` of the same histogram (counts,
/// sum, and buckets subtract; quantiles are recomputed from the delta
/// buckets). min/max cannot be subtracted, so the delta carries `after`'s
/// cumulative bounds — a documented approximation that only loosens the
/// clamp on interpolated quantiles.
HistogramStats SubtractHistogramStats(const HistogramStats& after,
                                      const HistogramStats& before);

/// Distribution of positive samples (latencies, sizes) over exponential
/// base-2 buckets starting at 1e-6. All updates are relaxed atomics; a
/// concurrent Snapshot may observe a sample's count before its sum, which
/// is acceptable for monitoring data.
class Histogram {
 public:
  /// Bucket `i` covers values in (1e-6 * 2^(i-1), 1e-6 * 2^i]; bucket 0
  /// covers everything <= 1e-6. 44 buckets reach ~1e7 seconds.
  static constexpr size_t kNumBuckets = 44;
  static constexpr double kFirstBound = 1e-6;

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramStats Stats() const;
  uint64_t BucketCount(size_t bucket) const;
  /// Upper bound of `bucket` (inclusive); +inf for the last bucket.
  static double BucketBound(size_t bucket);
  /// Index of the bucket `value` lands in (shared with bench cross-checks
  /// so "within one bucket" means the same thing everywhere).
  static size_t BucketIndexFor(double value);

  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max start at +/-inf so every Record competes through the CAS
  // min/max loops — a conditional "first sample seeds the field" store
  // could overwrite a concurrently CAS-published smaller min / larger max.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Process-wide metric registry. Lookup takes a mutex — call sites on hot
/// paths cache the returned pointer (function-local static); the metric
/// objects themselves live forever and their update paths are lock-free.
///
/// Locking contract: `Get()` is a magic static (thread-safe first touch);
/// every access to the name->metric maps — registration, snapshot, dump,
/// reset — holds `mu_` (GUARDED_BY, compiler-enforced under the tsa preset).
/// Returned metric pointers are stable forever and may be updated from any
/// thread without the registry lock (their state is all std::atomic). `mu_`
/// is near the bottom of the lock hierarchy (DESIGN.md §13): it may be taken
/// under component locks (e.g. PrefixCache::mu_ publishing gauges) and takes
/// nothing itself.
class Registry {
 public:
  static Registry& Get();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Registering the same name as two different kinds is a programming
  /// error and aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Point-in-time copy of every registered metric, sorted by name.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Human-readable one-metric-per-line dump.
  std::string TextDump() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonDump() const;

  /// Zeroes every registered metric (names stay registered). Test helper.
  void ResetAll();

 private:
  Registry() = default;

  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace infuserki::obs

#endif  // INFUSERKI_OBS_METRICS_H_
