#ifndef INFUSERKI_MODEL_HOOKS_H_
#define INFUSERKI_MODEL_HOOKS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace infuserki::model {

/// Extension point for modules running parallel to the FFN sublayer.
///
/// For each transformer layer the model calls FfnDelta() with H_P^l, the
/// FFN sublayer input (the paper's notation, Eq. 1); whatever tensor the
/// hook returns is added to the FFN output before the residual connection
/// (Eqs. 3/6). Returning an undefined Tensor means "no contribution at
/// this layer". InfuserKI's gated knowledge adapters, CALINET's calibration
/// adapter and T-Patcher's patch neurons are all implemented as FfnHooks.
///
/// Incremental decode protocol: on the KV-cached path (DecodeSession) the
/// model calls BeginExtend(rows_so_far) instead of BeginForward() and then
/// feeds only the NEW rows to FfnDelta. A hook whose delta for row t
/// depends only on row t of the current forward (position-wise — CALINET,
/// T-Patcher, and the adapter chain without the Infuser gate) needs no
/// overrides: the default BeginExtend treats each chunk as a fresh forward,
/// which is bit-identical to the full-sequence pass for such hooks. A hook
/// whose delta pools over the WHOLE sequence must override
/// SequenceStateful() to return true: its full-sequence forward is
/// non-causal (every row's delta sees later rows through the pooled gate),
/// so no incremental pass can reproduce it bit-exactly, and the generation
/// layer routes such forwards to the legacy full-recompute path instead of
/// a session (see DESIGN.md §7).
class FfnHook {
 public:
  virtual ~FfnHook() = default;

  /// Called once per forward pass before any layer runs; stateful hooks
  /// (e.g. InfuserKI's cross-layer adapter chain) reset here.
  virtual void BeginForward() {}

  /// Incremental-decode variant of BeginForward(): the next FfnDelta calls
  /// extend a sequence of which `rows_so_far` rows were already fed (0 on
  /// the session's first chunk).
  virtual void BeginExtend(size_t rows_so_far) {
    (void)rows_so_far;
    BeginForward();
  }

  /// True when the hook's delta for a row depends on other rows of the
  /// sequence (e.g. the Infuser gate's Mean(H_P^l) pooling). Such hooks are
  /// incompatible with KV-cached incremental decoding.
  virtual bool SequenceStateful() const { return false; }

  /// `layer` is 0-based. `ffn_input` is H_P^l with shape [T, D].
  virtual tensor::Tensor FfnDelta(int layer,
                                  const tensor::Tensor& ffn_input) = 0;
};

/// Extension point parallel to the attention sublayer (used by the
/// adapter-position ablation of Fig. 5, "3-32nd attention layers").
/// Follows the same incremental decode protocol as FfnHook.
class AttnHook {
 public:
  virtual ~AttnHook() = default;

  virtual void BeginForward() {}

  virtual void BeginExtend(size_t rows_so_far) {
    (void)rows_so_far;
    BeginForward();
  }

  virtual bool SequenceStateful() const { return false; }

  /// `attn_input` is the normalized attention sublayer input, [T, D]; the
  /// returned delta is added to the attention sublayer output.
  virtual tensor::Tensor AttnDelta(int layer,
                                   const tensor::Tensor& attn_input) = 0;
};

/// Learned per-layer prefix key/value rows for prefix tuning. keys[l] and
/// values[l] have shape [prefix_len, D]; they are prepended to that layer's
/// attention keys/values and are visible to every query position.
struct PrefixKv {
  std::vector<tensor::Tensor> keys;
  std::vector<tensor::Tensor> values;
  size_t prefix_len = 0;
};

/// Optional per-forward recording used by analysis benches (Fig. 1, Fig. 6).
/// Recorded tensors are detached from the autograd graph.
struct ForwardTrace {
  bool record_ffn_inputs = false;
  bool record_layer_outputs = false;
  std::vector<tensor::Tensor> ffn_inputs;     // H_P^l per layer, [T, D]
  std::vector<tensor::Tensor> layer_outputs;  // residual stream after layer l
};

/// Per-call forward configuration.
struct ForwardOptions {
  FfnHook* ffn_hook = nullptr;
  AttnHook* attn_hook = nullptr;
  const PrefixKv* prefix = nullptr;
  ForwardTrace* trace = nullptr;
};

/// True when `options` carries a hook whose delta pools over the whole
/// sequence; forwards with such hooks must take the full-recompute path
/// instead of a DecodeSession.
inline bool HasSequenceStatefulHook(const ForwardOptions& options) {
  return (options.ffn_hook != nullptr &&
          options.ffn_hook->SequenceStateful()) ||
         (options.attn_hook != nullptr &&
          options.attn_hook->SequenceStateful());
}

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_HOOKS_H_
