#include "model/serve_adapter.h"

#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"

namespace infuserki::model {

using tensor::Tensor;

PositionWiseAdapter::PositionWiseAdapter(size_t model_dim, size_t bottleneck,
                                         AdapterAttachment attachment,
                                         std::vector<LayerWeights> layers)
    : model_dim_(model_dim),
      bottleneck_(bottleneck),
      attachment_(attachment),
      layers_(std::move(layers)) {
  CHECK_GT(model_dim_, size_t{0});
  CHECK_GT(bottleneck_, size_t{0});
  int max_layer = -1;
  for (const LayerWeights& slot : layers_) {
    CHECK_GT(slot.layer, max_layer) << "layers must be strictly ascending";
    max_layer = slot.layer;
    CHECK_EQ(slot.down_weight.dim(0), bottleneck_);
    CHECK_EQ(slot.down_weight.dim(1), model_dim_);
    CHECK_EQ(slot.down_bias.dim(0), bottleneck_);
    CHECK_EQ(slot.up_weight.dim(0), model_dim_);
    CHECK_EQ(slot.up_weight.dim(1), bottleneck_);
    CHECK_EQ(slot.up_bias.dim(0), model_dim_);
  }
  layer_to_slot_.assign(static_cast<size_t>(max_layer) + 1, -1);
  for (size_t i = 0; i < layers_.size(); ++i) {
    layer_to_slot_[static_cast<size_t>(layers_[i].layer)] =
        static_cast<int>(i);
  }
}

bool PositionWiseAdapter::IsAdapted(int layer) const {
  return layer >= 0 && static_cast<size_t>(layer) < layer_to_slot_.size() &&
         layer_to_slot_[static_cast<size_t>(layer)] >= 0;
}

Tensor PositionWiseAdapter::Delta(int layer, const Tensor& sublayer_input,
                                  ChainState* state) const {
  CHECK(state != nullptr);
  if (!IsAdapted(layer)) return Tensor();
  const LayerWeights& slot =
      layers_[static_cast<size_t>(layer_to_slot_[static_cast<size_t>(layer)])];
  Tensor combined = state->chain.defined()
                        ? tensor::Add(sublayer_input, state->chain)
                        : sublayer_input;
  Tensor hidden = tensor::Relu(tensor::Add(
      tensor::MatmulNT(combined, slot.down_weight), slot.down_bias));
  state->chain =
      tensor::Add(tensor::MatmulNT(hidden, slot.up_weight), slot.up_bias);
  return state->chain;
}

Tensor PositionWiseAdapterHook::FfnDelta(int layer, const Tensor& ffn_input) {
  if (adapter_ == nullptr ||
      adapter_->attachment() != AdapterAttachment::kFfn) {
    return Tensor();
  }
  return adapter_->Delta(layer, ffn_input, &state_);
}

Tensor PositionWiseAdapterHook::AttnDelta(int layer,
                                          const Tensor& attn_input) {
  if (adapter_ == nullptr ||
      adapter_->attachment() != AdapterAttachment::kAttention) {
    return Tensor();
  }
  return adapter_->Delta(layer, attn_input, &state_);
}

ForwardOptions PositionWiseAdapterHook::Options() {
  ForwardOptions options;
  if (adapter_ == nullptr) return options;
  if (adapter_->attachment() == AdapterAttachment::kFfn) {
    options.ffn_hook = this;
  } else {
    options.attn_hook = this;
  }
  return options;
}

}  // namespace infuserki::model
