#include "model/pretrain.h"

#include <filesystem>

#include "model/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/checkpoint.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

constexpr uint32_t kCacheMagic = 0x494b4d31;  // "IKM1"

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= 0xff;
  h *= 0x100000001b3ull;
  return h;
}

uint64_t HashValue(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string CachePath(const PretrainSpec& spec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(spec.Fingerprint()));
  return spec.cache_dir + "/base_" + buf + ".ckpt";
}

bool TryLoadFromCache(const PretrainSpec& spec, PretrainedModel* out) {
  std::string path = CachePath(spec);
  util::BinaryReader reader(path);
  if (!reader.ok()) return false;
  if (reader.ReadU32() != kCacheMagic) {
    LOG_WARNING << "ignoring corrupt model cache file " << path;
    return false;
  }
  uint64_t stored_fingerprint = reader.ReadU64();
  uint64_t vocab = reader.ReadU64();
  if (!reader.ok() || stored_fingerprint != spec.Fingerprint()) {
    LOG_WARNING << "ignoring stale model cache file " << path;
    return false;
  }
  auto tokenizer = text::Tokenizer::Deserialize(&reader);
  if (!tokenizer.ok()) {
    LOG_WARNING << "cache tokenizer: " << tokenizer.status();
    return false;
  }
  if (tokenizer.value().vocab_size() != vocab) {
    LOG_WARNING << "cache vocab mismatch in " << path;
    return false;
  }
  TransformerConfig arch = spec.arch;
  arch.vocab_size = vocab;
  util::Rng init_rng(spec.seed);
  auto lm = std::make_unique<TransformerLM>(arch, &init_rng);
  util::Status status = tensor::ReadParametersInto(lm->NamedParameters(),
                                                   &reader);
  if (!status.ok()) {
    LOG_WARNING << "cache parameters: " << status;
    return false;
  }
  out->lm = std::move(lm);
  out->tokenizer = std::move(tokenizer).value();
  out->final_loss = 0.0f;
  LOG_INFO << "loaded pretrained base model from " << path;
  return true;
}

void SaveToCache(const PretrainSpec& spec, const PretrainedModel& model) {
  std::error_code ec;
  std::filesystem::create_directories(spec.cache_dir, ec);
  std::string path = CachePath(spec);
  util::BinaryWriter writer(path);
  if (!writer.ok()) {
    LOG_WARNING << "cannot write model cache " << path;
    return;
  }
  writer.WriteU32(kCacheMagic);
  writer.WriteU64(spec.Fingerprint());
  writer.WriteU64(model.tokenizer.vocab_size());
  model.tokenizer.Serialize(&writer);
  tensor::WriteParameters(model.lm->NamedParameters(), &writer);
  util::Status status = writer.Finish();
  if (!status.ok()) {
    LOG_WARNING << "model cache write failed: " << status;
    return;
  }
  LOG_INFO << "cached pretrained base model at " << path;
}

}  // namespace

uint64_t PretrainSpec::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  h = HashValue(h, arch.Fingerprint());
  for (const std::string& doc : plain_docs) h = HashString(h, doc);
  for (const auto& [prompt, response] : instruction_docs) {
    h = HashString(h, prompt);
    h = HashString(h, response);
  }
  for (const std::string& doc : extra_vocab_docs) h = HashString(h, doc);
  h = HashValue(h, steps);
  h = HashValue(h, batch_size);
  h = HashValue(h, static_cast<uint64_t>(lr * 1e9f));
  h = HashValue(h, seed);
  return h;
}

PretrainedModel PretrainOrLoad(const PretrainSpec& spec) {
  OBS_SPAN("pretrain");
  PretrainedModel model;
  {
    OBS_SPAN("pretrain/cache_load");
    if (!spec.cache_dir.empty() && TryLoadFromCache(spec, &model)) {
      return model;
    }
  }

  // Vocabulary covers everything the experiments will ever tokenize.
  std::vector<std::string> vocab_corpus = spec.plain_docs;
  for (const auto& [prompt, response] : spec.instruction_docs) {
    vocab_corpus.push_back(prompt);
    vocab_corpus.push_back(response);
  }
  vocab_corpus.insert(vocab_corpus.end(), spec.extra_vocab_docs.begin(),
                      spec.extra_vocab_docs.end());
  model.tokenizer = text::Tokenizer::Build(vocab_corpus);

  TransformerConfig arch = spec.arch;
  arch.vocab_size = model.tokenizer.vocab_size();
  util::Rng init_rng(spec.seed);
  model.lm = std::make_unique<TransformerLM>(arch, &init_rng);
  LOG_INFO << "pretraining base model " << arch.ToString() << " ("
           << model.lm->NumParameters() << " params, " << spec.steps
           << " steps)";

  std::vector<LmExample> examples;
  examples.reserve(spec.plain_docs.size() + spec.instruction_docs.size());
  for (const std::string& doc : spec.plain_docs) {
    examples.push_back(MakePlainExample(model.tokenizer, doc));
  }
  for (const auto& [prompt, response] : spec.instruction_docs) {
    examples.push_back(
        MakeInstructionExample(model.tokenizer, prompt, response));
  }
  CHECK(!examples.empty()) << "pretraining corpus is empty";

  LmTrainer::Options trainer_options;
  trainer_options.lr = spec.lr;
  trainer_options.batch_size = spec.batch_size;
  trainer_options.seed = spec.seed + 1;
  LmTrainer trainer(model.lm.get(), model.lm->Parameters(), trainer_options);
  util::Stopwatch watch;
  {
    OBS_SPAN("pretrain/train");
    model.final_loss = trainer.TrainSteps(examples, spec.steps);
  }
  double train_seconds = watch.Lap();
  obs::Registry::Get().GetGauge("pretrain/train_seconds")->Set(train_seconds);
  obs::Registry::Get().GetGauge("pretrain/final_loss")->Set(model.final_loss);
  LOG_INFO << "pretraining done in " << train_seconds
           << "s, final-window loss " << model.final_loss;

  if (!spec.cache_dir.empty()) {
    OBS_SPAN("pretrain/cache_save");
    SaveToCache(spec, model);
  }
  return model;
}

}  // namespace infuserki::model
