#include "model/pretrain.h"

#include <filesystem>

#include "model/trainer.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/checkpoint.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

constexpr uint32_t kCacheMagic = 0x494b4d31;  // "IKM1"

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= 0xff;
  h *= 0x100000001b3ull;
  return h;
}

uint64_t HashValue(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string FingerprintHex(const PretrainSpec& spec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(spec.Fingerprint()));
  return buf;
}

/// An obviously-corrupt vocabulary size: larger than any corpus these
/// experiments build, small enough that a bad value cannot make the model
/// constructor allocate gigabytes before the mismatch is noticed.
constexpr uint64_t kMaxPlausibleVocab = uint64_t{1} << 24;

bool TryLoadFromCache(const PretrainSpec& spec, PretrainedModel* out) {
  std::string path = PretrainCachePath(spec);
  util::Status status = LoadCachedModel(path, spec, out);
  if (status.ok()) {
    obs::Lineage::Get().Record("pretrain: loaded cache " + path);
    LOG_INFO << "loaded pretrained base model from " << path;
    return true;
  }
  // A missing file is the ordinary cache miss; anything else means the
  // file exists but cannot be trusted. Quarantine it so the retrained
  // replacement does not collide with the corrupt bytes, and so the
  // operator can inspect what went wrong.
  if (status.code() != util::StatusCode::kNotFound) {
    LOG_WARNING << "unusable model cache " << path << ": "
                << status.ToString() << "; retraining from scratch";
    util::Status quarantine = util::QuarantineFile(path);
    if (!quarantine.ok()) {
      LOG_WARNING << "quarantine failed: " << quarantine.ToString();
    }
  }
  return false;
}

void SaveToCache(const PretrainSpec& spec, const PretrainedModel& model) {
  std::error_code ec;
  std::filesystem::create_directories(spec.cache_dir, ec);
  std::string path = PretrainCachePath(spec);
  util::BinaryWriter writer(path, "pretrain/cache_write");
  writer.WriteU32(kCacheMagic);
  writer.WriteU64(spec.Fingerprint());
  writer.WriteU64(model.tokenizer.vocab_size());
  model.tokenizer.Serialize(&writer);
  tensor::WriteParameters(model.lm->NamedParameters(), &writer);
  util::Status status = writer.Finish();
  if (!status.ok()) {
    LOG_WARNING << "model cache write failed: " << status;
    return;
  }
  LOG_INFO << "cached pretrained base model at " << path;
}

}  // namespace

std::string PretrainCachePath(const PretrainSpec& spec) {
  return spec.cache_dir + "/base_" + FingerprintHex(spec) + ".ckpt";
}

util::Status LoadCachedModel(const std::string& path,
                             const PretrainSpec& spec, PretrainedModel* out) {
  util::BinaryReader reader(path);
  // NotFound = cache miss; kDataLoss = torn/corrupt frame. Either way the
  // frame CRC has already been verified before any field below is parsed.
  if (!reader.ok()) return reader.status();
  uint32_t magic = reader.ReadU32();
  if (!reader.ok() || magic != kCacheMagic) {
    return util::Status::DataLoss("bad model-cache magic in " + path);
  }
  uint64_t stored_fingerprint = reader.ReadU64();
  uint64_t vocab = reader.ReadU64();
  if (!reader.ok()) {
    return util::Status::DataLoss("truncated model-cache header in " + path);
  }
  if (stored_fingerprint != spec.Fingerprint()) {
    // The fingerprint is embedded in the file name, so a mismatch means the
    // content contradicts the name — corruption, not staleness.
    return util::Status::DataLoss("fingerprint mismatch in " + path);
  }
  if (vocab == 0 || vocab > kMaxPlausibleVocab) {
    return util::Status::DataLoss("implausible vocabulary size " +
                                  std::to_string(vocab) + " in " + path);
  }
  auto tokenizer = text::Tokenizer::Deserialize(&reader);
  if (!tokenizer.ok()) return tokenizer.status();
  if (tokenizer.value().vocab_size() != vocab) {
    return util::Status::DataLoss("vocabulary size mismatch in " + path);
  }
  TransformerConfig arch = spec.arch;
  arch.vocab_size = vocab;
  util::Rng init_rng(spec.seed);
  auto lm = std::make_unique<TransformerLM>(arch, &init_rng);
  RETURN_IF_ERROR(tensor::ReadParametersInto(lm->NamedParameters(), &reader));
  out->lm = std::move(lm);
  out->tokenizer = std::move(tokenizer).value();
  out->final_loss = 0.0f;
  return util::Status::OK();
}

uint64_t PretrainSpec::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  h = HashValue(h, arch.Fingerprint());
  for (const std::string& doc : plain_docs) h = HashString(h, doc);
  for (const auto& [prompt, response] : instruction_docs) {
    h = HashString(h, prompt);
    h = HashString(h, response);
  }
  for (const std::string& doc : extra_vocab_docs) h = HashString(h, doc);
  h = HashValue(h, steps);
  h = HashValue(h, batch_size);
  h = HashValue(h, static_cast<uint64_t>(lr * 1e9f));
  h = HashValue(h, seed);
  return h;
}

PretrainedModel PretrainOrLoad(const PretrainSpec& spec) {
  OBS_SPAN("pretrain");
  PretrainedModel model;
  {
    OBS_SPAN("pretrain/cache_load");
    if (!spec.cache_dir.empty() && TryLoadFromCache(spec, &model)) {
      return model;
    }
  }

  // Vocabulary covers everything the experiments will ever tokenize.
  std::vector<std::string> vocab_corpus = spec.plain_docs;
  for (const auto& [prompt, response] : spec.instruction_docs) {
    vocab_corpus.push_back(prompt);
    vocab_corpus.push_back(response);
  }
  vocab_corpus.insert(vocab_corpus.end(), spec.extra_vocab_docs.begin(),
                      spec.extra_vocab_docs.end());
  model.tokenizer = text::Tokenizer::Build(vocab_corpus);

  TransformerConfig arch = spec.arch;
  arch.vocab_size = model.tokenizer.vocab_size();
  util::Rng init_rng(spec.seed);
  model.lm = std::make_unique<TransformerLM>(arch, &init_rng);
  LOG_INFO << "pretraining base model " << arch.ToString() << " ("
           << model.lm->NumParameters() << " params, " << spec.steps
           << " steps)";

  std::vector<LmExample> examples;
  examples.reserve(spec.plain_docs.size() + spec.instruction_docs.size());
  for (const std::string& doc : spec.plain_docs) {
    examples.push_back(MakePlainExample(model.tokenizer, doc));
  }
  for (const auto& [prompt, response] : spec.instruction_docs) {
    examples.push_back(
        MakeInstructionExample(model.tokenizer, prompt, response));
  }
  CHECK(!examples.empty()) << "pretraining corpus is empty";

  LmTrainer::Options trainer_options;
  trainer_options.lr = spec.lr;
  trainer_options.batch_size = spec.batch_size;
  trainer_options.seed = spec.seed + 1;
  LmTrainer trainer(model.lm.get(), model.lm->Parameters(), trainer_options);
  CheckpointPolicy policy;
  if (!spec.checkpoint_dir.empty() && spec.checkpoint_every_n_steps > 0) {
    // Keyed by fingerprint so concurrent runs with different specs never
    // resume from each other's snapshots.
    policy.dir = spec.checkpoint_dir + "/pretrain_" + FingerprintHex(spec);
    policy.every_n_steps = spec.checkpoint_every_n_steps;
    policy.keep_last = spec.checkpoint_keep_last;
    policy.resume = spec.resume;
  }
  util::Stopwatch watch;
  {
    OBS_SPAN("pretrain/train");
    model.final_loss = trainer.TrainSteps(examples, spec.steps, {}, policy);
  }
  double train_seconds = watch.Lap();
  obs::Registry::Get().GetGauge("pretrain/train_seconds")->Set(train_seconds);
  obs::Registry::Get().GetGauge("pretrain/final_loss")->Set(model.final_loss);
  LOG_INFO << "pretraining done in " << train_seconds
           << "s, final-window loss " << model.final_loss;

  if (!spec.cache_dir.empty()) {
    OBS_SPAN("pretrain/cache_save");
    SaveToCache(spec, model);
  }
  return model;
}

}  // namespace infuserki::model
