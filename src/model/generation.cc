#include "model/generation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::model {

using tensor::NoGradGuard;
using tensor::Tensor;

std::vector<int> GreedyDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens,
                              const ForwardOptions& options) {
  NoGradGuard no_grad;
  std::vector<int> sequence = prompt_ids;
  std::vector<int> generated;
  for (size_t step = 0; step < max_new_tokens; ++step) {
    if (sequence.size() >= lm.config().max_seq_len) break;
    Tensor logits = lm.Logits(sequence, options);
    size_t last = logits.dim(0) - 1;
    size_t vocab = logits.dim(1);
    const float* row = logits.data() + last * vocab;
    int best = 0;
    for (size_t v = 1; v < vocab; ++v) {
      if (row[v] > row[best]) best = static_cast<int>(v);
    }
    if (best == text::kEosId) break;
    generated.push_back(best);
    sequence.push_back(best);
  }
  return generated;
}

std::vector<int> SampleDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens, util::Rng* rng,
                              float temperature, size_t top_k,
                              const ForwardOptions& options) {
  CHECK(rng != nullptr);
  if (temperature <= 0.0f) {
    return GreedyDecode(lm, prompt_ids, max_new_tokens, options);
  }
  NoGradGuard no_grad;
  std::vector<int> sequence = prompt_ids;
  std::vector<int> generated;
  for (size_t step = 0; step < max_new_tokens; ++step) {
    if (sequence.size() >= lm.config().max_seq_len) break;
    Tensor logits = lm.Logits(sequence, options);
    size_t last = logits.dim(0) - 1;
    size_t vocab = logits.dim(1);
    const float* row = logits.data() + last * vocab;
    // Collect (logit, id), optionally truncated to the top-k.
    std::vector<std::pair<float, int>> candidates;
    candidates.reserve(vocab);
    for (size_t v = 0; v < vocab; ++v) {
      candidates.emplace_back(row[v], static_cast<int>(v));
    }
    if (top_k > 0 && top_k < vocab) {
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<long>(top_k),
                        candidates.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      candidates.resize(top_k);
    }
    float mx = candidates[0].first;
    for (const auto& [logit, id] : candidates) mx = std::max(mx, logit);
    double total = 0.0;
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const auto& [logit, id] : candidates) {
      double w = std::exp(static_cast<double>(logit - mx) / temperature);
      weights.push_back(w);
      total += w;
    }
    double draw = rng->Uniform(0.0, total);
    int chosen = candidates.back().second;
    for (size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw <= 0.0) {
        chosen = candidates[i].second;
        break;
      }
    }
    if (chosen == text::kEosId) break;
    generated.push_back(chosen);
    sequence.push_back(chosen);
  }
  return generated;
}

double SequenceLogProb(const TransformerLM& lm,
                       const std::vector<int>& prompt_ids,
                       const std::vector<int>& continuation_ids,
                       const ForwardOptions& options) {
  CHECK(!prompt_ids.empty());
  CHECK(!continuation_ids.empty());
  NoGradGuard no_grad;
  std::vector<int> full = prompt_ids;
  full.insert(full.end(), continuation_ids.begin(), continuation_ids.end());
  CHECK_LE(full.size(), lm.config().max_seq_len)
      << "scored sequence exceeds max_seq_len";
  // Drop the final token from the input: its next-token prediction is not
  // needed, and positions prompt_len-1 .. end-2 predict the continuation.
  std::vector<int> inputs(full.begin(), full.end() - 1);
  Tensor logits = lm.Logits(inputs, options);
  size_t vocab = logits.dim(1);
  double total = 0.0;
  for (size_t i = 0; i < continuation_ids.size(); ++i) {
    size_t position = prompt_ids.size() - 1 + i;
    const float* row = logits.data() + position * vocab;
    float mx = row[0];
    for (size_t v = 1; v < vocab; ++v) mx = std::max(mx, row[v]);
    double sum = 0.0;
    for (size_t v = 0; v < vocab; ++v) {
      sum += std::exp(static_cast<double>(row[v]) - mx);
    }
    int target = continuation_ids[i];
    total += static_cast<double>(row[target]) - mx - std::log(sum);
  }
  return total;
}

OptionScores ScoreOptions(const TransformerLM& lm,
                          const text::Tokenizer& tokenizer,
                          const std::string& prompt,
                          const std::vector<std::string>& options_text,
                          const ForwardOptions& options) {
  CHECK(!options_text.empty());
  std::vector<int> prompt_ids = tokenizer.EncodeWithSpecials(prompt, false);
  OptionScores scores;
  scores.log_probs.reserve(options_text.size());
  std::vector<double> normalized;
  normalized.reserve(options_text.size());
  for (const std::string& option : options_text) {
    std::vector<int> continuation = tokenizer.Encode(option);
    CHECK(!continuation.empty()) << "empty option text";
    double lp = SequenceLogProb(lm, prompt_ids, continuation, options);
    scores.log_probs.push_back(lp);
    normalized.push_back(lp / static_cast<double>(continuation.size()));
  }
  scores.best = static_cast<int>(
      std::max_element(normalized.begin(), normalized.end()) -
      normalized.begin());
  // Softmax over raw sums: the "probability mass over candidate choices"
  // view shown in the paper's case study.
  double mx = *std::max_element(scores.log_probs.begin(),
                                scores.log_probs.end());
  double denom = 0.0;
  for (double lp : scores.log_probs) denom += std::exp(lp - mx);
  for (double lp : scores.log_probs) {
    scores.probabilities.push_back(std::exp(lp - mx) / denom);
  }
  return scores;
}

int ExtractChosenOption(const TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::string& prompt,
                        const std::vector<std::string>& options_text,
                        const ForwardOptions& options) {
  std::vector<int> prompt_ids = tokenizer.EncodeWithSpecials(prompt, false);
  std::vector<int> generated = GreedyDecode(lm, prompt_ids, 12, options);
  std::string response = tokenizer.Decode(generated);
  // Letter form: "( a )" etc.
  for (size_t i = 0; i < options_text.size(); ++i) {
    std::string letter =
        std::string("( ") + static_cast<char>('a' + i) + " )";
    if (util::Contains(response, letter)) return static_cast<int>(i);
  }
  // Fall back to option-text containment, longest match first so nested
  // option names resolve to the most specific one.
  int best = -1;
  size_t best_len = 0;
  for (size_t i = 0; i < options_text.size(); ++i) {
    const std::string needle = util::ToLower(options_text[i]);
    if (needle.size() > best_len && util::Contains(response, needle)) {
      best = static_cast<int>(i);
      best_len = needle.size();
    }
  }
  return best;
}

}  // namespace infuserki::model
