#include "model/generation.h"

#include <algorithm>
#include <cmath>

#include "model/decode_session.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::model {

using tensor::NoGradGuard;
using tensor::Tensor;

namespace {

/// Argmax of the last row of a [T, V] logits tensor.
int ArgmaxLastRow(const Tensor& logits) {
  size_t last = logits.dim(0) - 1;
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + last * vocab;
  int best = 0;
  for (size_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

/// Temperature/top-k sample from the last row of a [T, V] logits tensor.
int SampleLastRow(const Tensor& logits, util::Rng* rng, float temperature,
                  size_t top_k) {
  size_t last = logits.dim(0) - 1;
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + last * vocab;
  // Collect (logit, id), optionally truncated to the top-k.
  std::vector<std::pair<float, int>> candidates;
  candidates.reserve(vocab);
  for (size_t v = 0; v < vocab; ++v) {
    candidates.emplace_back(row[v], static_cast<int>(v));
  }
  if (top_k > 0 && top_k < vocab) {
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<long>(top_k),
                      candidates.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    candidates.resize(top_k);
  }
  float mx = candidates[0].first;
  for (const auto& [logit, id] : candidates) mx = std::max(mx, logit);
  double total = 0.0;
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const auto& [logit, id] : candidates) {
    double w = std::exp(static_cast<double>(logit - mx) / temperature);
    weights.push_back(w);
    total += w;
  }
  double draw = rng->Uniform(0.0, total);
  int chosen = candidates.back().second;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) {
      chosen = candidates[i].second;
      break;
    }
  }
  return chosen;
}

/// log P(target | row) via a numerically stable log-softmax. The arithmetic
/// (float max scan, double exp-sum in vocab order) is kept byte-for-byte
/// identical to the full-sequence SequenceLogProb loop so cached and
/// uncached scores agree exactly.
double RowLogProb(const float* row, size_t vocab, int target) {
  float mx = row[0];
  for (size_t v = 1; v < vocab; ++v) mx = std::max(mx, row[v]);
  double sum = 0.0;
  for (size_t v = 0; v < vocab; ++v) {
    sum += std::exp(static_cast<double>(row[v]) - mx);
  }
  return static_cast<double>(row[target]) - mx - std::log(sum);
}

/// Sum log P(continuation | cached prompt) against a session whose cache
/// currently ends exactly at the prompt. `prompt_logits` is the prefill
/// result (its last row scores the first continuation token); the remaining
/// continuation tokens are fed incrementally. Leaves the session extended —
/// callers rewind.
double ContinuationLogProb(DecodeSession* session,
                           const Tensor& prompt_logits,
                           const std::vector<int>& continuation) {
  size_t vocab = prompt_logits.dim(1);
  const float* last_row =
      prompt_logits.data() + (prompt_logits.dim(0) - 1) * vocab;
  double total = RowLogProb(last_row, vocab, continuation[0]);
  if (continuation.size() > 1) {
    std::vector<int> inputs(continuation.begin(), continuation.end() - 1);
    Tensor logits = session->Prefill(inputs);
    for (size_t i = 0; i + 1 < continuation.size(); ++i) {
      total += RowLogProb(logits.data() + i * vocab, vocab,
                          continuation[i + 1]);
    }
  }
  return total;
}

/// Full-recompute decode loop for sequence-stateful hooks (the Infuser
/// gate pools over every position, so its forward is non-causal and cannot
/// be served from a KV cache — see DESIGN.md §7). Re-runs the model over
/// the whole sequence each step, exactly like the pre-engine code.
/// `pick` maps the step's logits to the next token id.
template <typename PickFn>
std::vector<int> DecodeFullRecompute(const TransformerLM& lm,
                                     const std::vector<int>& prompt_ids,
                                     size_t max_new_tokens,
                                     const ForwardOptions& options,
                                     PickFn&& pick) {
  std::vector<int> sequence = prompt_ids;
  std::vector<int> generated;
  for (size_t step = 0; step < max_new_tokens; ++step) {
    if (sequence.size() >= lm.config().max_seq_len) break;
    Tensor logits = lm.Logits(sequence, options);
    int next = pick(logits);
    if (next == text::kEosId) break;
    generated.push_back(next);
    sequence.push_back(next);
  }
  return generated;
}

/// Incremental decode loop: prefill the prompt once, then one single-token
/// forward per generated token. Token-stream-identical to
/// DecodeFullRecompute for any causal forward (verified bit-exactly in
/// tests/kv_cache_test.cc).
template <typename PickFn>
std::vector<int> DecodeIncremental(const TransformerLM& lm,
                                   const std::vector<int>& prompt_ids,
                                   size_t max_new_tokens,
                                   const ForwardOptions& options,
                                   PickFn&& pick) {
  std::vector<int> generated;
  if (max_new_tokens == 0 ||
      prompt_ids.size() >= lm.config().max_seq_len) {
    return generated;
  }
  DecodeSession session(lm, options);
  Tensor logits = session.Prefill(prompt_ids);
  while (true) {
    int next = pick(logits);
    if (next == text::kEosId) break;
    generated.push_back(next);
    if (generated.size() >= max_new_tokens) break;
    if (prompt_ids.size() + generated.size() >= lm.config().max_seq_len) {
      break;
    }
    logits = session.Decode(next);
  }
  return generated;
}

/// Full-sequence scoring fallback for sequence-stateful hooks.
double SequenceLogProbFullRecompute(const TransformerLM& lm,
                                    const std::vector<int>& prompt_ids,
                                    const std::vector<int>& continuation_ids,
                                    const ForwardOptions& options) {
  std::vector<int> full = prompt_ids;
  full.insert(full.end(), continuation_ids.begin(), continuation_ids.end());
  // Drop the final token from the input: its next-token prediction is not
  // needed, and positions prompt_len-1 .. end-2 predict the continuation.
  std::vector<int> inputs(full.begin(), full.end() - 1);
  Tensor logits = lm.Logits(inputs, options);
  size_t vocab = logits.dim(1);
  double total = 0.0;
  for (size_t i = 0; i < continuation_ids.size(); ++i) {
    size_t position = prompt_ids.size() - 1 + i;
    total += RowLogProb(logits.data() + position * vocab, vocab,
                        continuation_ids[i]);
  }
  return total;
}

}  // namespace

std::vector<int> GreedyDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens,
                              const ForwardOptions& options) {
  NoGradGuard no_grad;
  auto pick = [](const Tensor& logits) { return ArgmaxLastRow(logits); };
  if (HasSequenceStatefulHook(options)) {
    return DecodeFullRecompute(lm, prompt_ids, max_new_tokens, options,
                               pick);
  }
  return DecodeIncremental(lm, prompt_ids, max_new_tokens, options, pick);
}

std::vector<int> SampleDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens, util::Rng* rng,
                              float temperature, size_t top_k,
                              const ForwardOptions& options) {
  CHECK(rng != nullptr);
  if (temperature <= 0.0f) {
    return GreedyDecode(lm, prompt_ids, max_new_tokens, options);
  }
  NoGradGuard no_grad;
  auto pick = [&](const Tensor& logits) {
    return SampleLastRow(logits, rng, temperature, top_k);
  };
  if (HasSequenceStatefulHook(options)) {
    return DecodeFullRecompute(lm, prompt_ids, max_new_tokens, options,
                               pick);
  }
  return DecodeIncremental(lm, prompt_ids, max_new_tokens, options, pick);
}

double SequenceLogProb(const TransformerLM& lm,
                       const std::vector<int>& prompt_ids,
                       const std::vector<int>& continuation_ids,
                       const ForwardOptions& options) {
  CHECK(!prompt_ids.empty());
  CHECK(!continuation_ids.empty());
  CHECK_LE(prompt_ids.size() + continuation_ids.size(),
           lm.config().max_seq_len)
      << "scored sequence exceeds max_seq_len";
  NoGradGuard no_grad;
  if (HasSequenceStatefulHook(options)) {
    return SequenceLogProbFullRecompute(lm, prompt_ids, continuation_ids,
                                        options);
  }
  DecodeSession session(lm, options);
  Tensor prompt_logits = session.Prefill(prompt_ids);
  return ContinuationLogProb(&session, prompt_logits, continuation_ids);
}

OptionScores ScoreOptions(const TransformerLM& lm,
                          const text::Tokenizer& tokenizer,
                          const std::string& prompt,
                          const std::vector<std::string>& options_text,
                          const ForwardOptions& options) {
  CHECK(!options_text.empty());
  std::vector<int> prompt_ids = tokenizer.EncodeWithSpecials(prompt, false);
  NoGradGuard no_grad;
  bool incremental = !HasSequenceStatefulHook(options);
  OptionScores scores;
  scores.log_probs.reserve(options_text.size());
  std::vector<double> normalized;
  normalized.reserve(options_text.size());
  if (incremental) {
    // Prefill the shared prompt once; every option reuses the cached
    // prefix and only its own continuation tokens are forwarded.
    DecodeSession session(lm, options);
    Tensor prompt_logits = session.Prefill(prompt_ids);
    DecodeSession::Checkpoint prompt_mark = session.Save();
    for (const std::string& option : options_text) {
      std::vector<int> continuation = tokenizer.Encode(option);
      CHECK(!continuation.empty()) << "empty option text";
      CHECK_LE(prompt_ids.size() + continuation.size(),
               lm.config().max_seq_len)
          << "scored sequence exceeds max_seq_len";
      double lp = ContinuationLogProb(&session, prompt_logits, continuation);
      session.Rewind(prompt_mark);
      scores.log_probs.push_back(lp);
      normalized.push_back(lp / static_cast<double>(continuation.size()));
    }
  } else {
    for (const std::string& option : options_text) {
      std::vector<int> continuation = tokenizer.Encode(option);
      CHECK(!continuation.empty()) << "empty option text";
      double lp = SequenceLogProb(lm, prompt_ids, continuation, options);
      scores.log_probs.push_back(lp);
      normalized.push_back(lp / static_cast<double>(continuation.size()));
    }
  }
  scores.best = static_cast<int>(
      std::max_element(normalized.begin(), normalized.end()) -
      normalized.begin());
  // Softmax over raw sums: the "probability mass over candidate choices"
  // view shown in the paper's case study.
  double mx = *std::max_element(scores.log_probs.begin(),
                                scores.log_probs.end());
  double denom = 0.0;
  for (double lp : scores.log_probs) denom += std::exp(lp - mx);
  for (double lp : scores.log_probs) {
    scores.probabilities.push_back(std::exp(lp - mx) / denom);
  }
  return scores;
}

int ExtractChosenOption(const TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::string& prompt,
                        const std::vector<std::string>& options_text,
                        const ForwardOptions& options) {
  std::vector<int> prompt_ids = tokenizer.EncodeWithSpecials(prompt, false);
  std::vector<int> generated = GreedyDecode(lm, prompt_ids, 12, options);
  // Case-normalize the response once so the option-text fallback below
  // compares lowercase needles against a lowercase haystack. Ids the model
  // emits are always in-vocabulary; an undecodable response extracts
  // nothing, which the caller counts as incorrect.
  util::StatusOr<std::string> decoded = tokenizer.Decode(generated);
  const std::string response =
      decoded.ok() ? util::ToLower(*decoded) : std::string();
  // Letter form: "( a )" etc.
  for (size_t i = 0; i < options_text.size(); ++i) {
    std::string letter =
        std::string("( ") + static_cast<char>('a' + i) + " )";
    if (util::Contains(response, letter)) return static_cast<int>(i);
  }
  // Fall back to option-text containment, longest match first so nested
  // option names resolve to the most specific one.
  int best = -1;
  size_t best_len = 0;
  for (size_t i = 0; i < options_text.size(); ++i) {
    const std::string needle = util::ToLower(options_text[i]);
    if (needle.size() > best_len && util::Contains(response, needle)) {
      best = static_cast<int>(i);
      best_len = needle.size();
    }
  }
  return best;
}

}  // namespace infuserki::model
