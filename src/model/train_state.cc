#include "model/train_state.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/logging.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace infuserki::model {
namespace {

constexpr uint32_t kTrainStateMagic = 0x494b5431;  // "IKT1"

}  // namespace

util::Status SaveTrainState(const std::string& path, const TrainState& state,
                            const tensor::AdamW& optimizer) {
  util::BinaryWriter writer(path, "train_state/write");
  writer.WriteU32(kTrainStateMagic);
  writer.WriteU64(state.next_step);
  writer.WriteU64(state.total_steps);
  writer.WriteU64(state.order.size());
  for (uint64_t index : state.order) writer.WriteU64(index);
  writer.WriteU64(state.cursor);
  writer.WriteFloatVector(state.losses);
  writer.WriteString(state.rng_state);
  optimizer.Serialize(&writer);
  return writer.Finish();
}

util::Status LoadTrainState(const std::string& path, TrainState* state,
                            tensor::AdamW* optimizer) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  uint32_t magic = reader.ReadU32();
  if (!reader.ok() || magic != kTrainStateMagic) {
    return util::Status::DataLoss("bad train-state magic in " + path);
  }
  TrainState loaded;
  loaded.next_step = reader.ReadU64();
  loaded.total_steps = reader.ReadU64();
  uint64_t order_size = reader.ReadU64();
  if (!reader.ok() || order_size > (uint64_t{1} << 32)) {
    return util::Status::DataLoss("bad visit-order size in " + path);
  }
  loaded.order.resize(order_size);
  for (uint64_t i = 0; i < order_size; ++i) loaded.order[i] = reader.ReadU64();
  loaded.cursor = reader.ReadU64();
  loaded.losses = reader.ReadFloatVector();
  loaded.rng_state = reader.ReadString();
  if (!reader.ok()) {
    return util::Status::DataLoss("truncated train state in " + path);
  }
  if (loaded.cursor > loaded.order.size()) {
    return util::Status::DataLoss("cursor past visit order in " + path);
  }
  // Prove the RNG stream is restorable before touching the optimizer: the
  // optimizer writes through shared tensor storage into the model, which
  // must stay pristine unless the whole snapshot is usable.
  util::Rng probe(0);
  RETURN_IF_ERROR(probe.RestoreState(loaded.rng_state));
  RETURN_IF_ERROR(optimizer->Deserialize(&reader));
  *state = std::move(loaded);
  return util::Status::OK();
}

std::string TrainCheckpointPath(const std::string& dir, uint64_t step) {
  char name[32];
  std::snprintf(name, sizeof(name), "step_%08llu.ckpt",
                static_cast<unsigned long long>(step));
  return dir + "/" + name;
}

std::vector<std::pair<uint64_t, std::string>> ListTrainCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    unsigned long long step = 0;
    char trailer = '\0';
    // Exactly "step_<digits>.ckpt": the trailing %c rejects ".ckpt.tmp",
    // ".ckpt.corrupt", and any other suffix.
    if (std::sscanf(name.c_str(), "step_%llu.ckpt%c", &step, &trailer) != 1) {
      continue;
    }
    found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

void RotateTrainCheckpoints(const std::string& dir, size_t keep_last) {
  if (keep_last == 0) keep_last = 1;
  auto snapshots = ListTrainCheckpoints(dir);
  if (snapshots.size() <= keep_last) return;
  for (size_t i = 0; i + keep_last < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
    if (ec) {
      LOG_WARNING << "failed to rotate out " << snapshots[i].second << ": "
                  << ec.message();
    }
  }
}

}  // namespace infuserki::model
