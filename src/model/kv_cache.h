#ifndef INFUSERKI_MODEL_KV_CACHE_H_
#define INFUSERKI_MODEL_KV_CACHE_H_

#include <cstddef>
#include <vector>

#include "model/hooks.h"
#include "tensor/tensor.h"

namespace infuserki::model {

/// Key/value rows accumulated for one transformer layer. `k` and `v` are
/// [rows, D] (undefined while empty); rows = prefix-tuning rows (if any)
/// followed by one row per cached token position, in position order.
struct LayerKv {
  tensor::Tensor k;
  tensor::Tensor v;

  size_t rows() const { return k.defined() ? k.dim(0) : 0; }
};

/// Per-layer attention key/value cache for incremental decoding.
///
/// Grown by TransformerLM::LogitsIncremental (each chunked forward appends
/// its new K/V rows) and truncated by DecodeSession::Rewind (prefix reuse).
/// Rows are plain detached values: the cache is only ever filled under
/// NoGradGuard.
class KvCache {
 public:
  explicit KvCache(size_t num_layers) : layers_(num_layers) {}

  size_t num_layers() const { return layers_.size(); }

  /// Token positions cached so far (excludes prefix-tuning rows).
  size_t tokens() const { return tokens_; }

  /// Prefix-tuning rows per layer (0 without prefix tuning).
  size_t prefix_rows() const { return prefix_rows_; }

  LayerKv* layer(size_t i) { return &layers_[i]; }

  bool seeded() const { return seeded_; }

  /// One-time seeding with prefix-tuning K/V rows (nullptr when the forward
  /// has no prefix). Must run before the first incremental forward so the
  /// prefix rows occupy the head of every layer's cache.
  void SeedPrefix(const PrefixKv* prefix);

  /// Bumps the cached-token count after a chunked forward appended `count`
  /// rows to every layer.
  void AdvanceTokens(size_t count) { tokens_ += count; }

  /// Drops cached rows beyond `num_tokens` token positions (prefix-tuning
  /// rows are always kept). Requires num_tokens <= tokens().
  void TruncateTokens(size_t num_tokens);

 private:
  std::vector<LayerKv> layers_;
  size_t prefix_rows_ = 0;
  size_t tokens_ = 0;
  bool seeded_ = false;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_KV_CACHE_H_
