#ifndef INFUSERKI_MODEL_KV_CACHE_H_
#define INFUSERKI_MODEL_KV_CACHE_H_

#include <cstddef>
#include <vector>

#include "model/hooks.h"
#include "tensor/tensor.h"

namespace infuserki::model {

/// Key/value rows accumulated for one transformer layer. `k` and `v` are
/// [rows, D] (undefined while empty); rows = prefix-tuning rows (if any)
/// followed by one row per cached token position, in position order.
struct LayerKv {
  tensor::Tensor k;
  tensor::Tensor v;

  size_t rows() const { return k.defined() ? k.dim(0) : 0; }
};

/// Per-layer attention key/value cache for incremental decoding, organised
/// as a pool of independent slots.
///
/// A slot is one logical sequence's set of K/V pages: `num_layers` LayerKv
/// pages plus a cached-token count. The single-sequence engine
/// (DecodeSession) uses a one-slot pool through the slot-defaulted
/// accessors below; BatchedDecodeSession acquires one slot per in-flight
/// batch row and the ragged batched forward appends each row's new K/V
/// rows to that row's slot only — slots never share pages, so retiring or
/// rewinding one row cannot disturb another.
///
/// Grown by TransformerLM::LogitsIncremental / LogitsBatched (each chunked
/// forward appends its new K/V rows) and truncated by
/// DecodeSession::Rewind (prefix reuse). Rows are plain detached values:
/// the cache is only ever filled under NoGradGuard.
///
/// Concurrency contract (DESIGN.md §13): a KvCache is confined to the one
/// thread that owns its session (scheduler thread in serving, caller thread
/// elsewhere), so it is intentionally unsynchronized — no mutex, no TSA
/// capabilities. Page tensors shared out through slot snapshots are
/// immutable (appends/truncations always produce fresh tensors), which is
/// what makes the cross-thread PrefixCache sharing in serve/ safe.
class KvCache {
 public:
  explicit KvCache(size_t num_layers, size_t num_slots = 1)
      : num_layers_(num_layers), slots_(num_slots) {
    for (Slot& slot : slots_) slot.layers.resize(num_layers);
  }

  size_t num_layers() const { return num_layers_; }
  size_t num_slots() const { return slots_.size(); }

  /// Token positions cached so far in `slot` (excludes prefix-tuning rows).
  size_t tokens(size_t slot = 0) const { return at(slot).tokens; }

  /// Prefix-tuning rows per layer in `slot` (0 without prefix tuning).
  size_t prefix_rows(size_t slot = 0) const { return at(slot).prefix_rows; }

  LayerKv* layer(size_t i, size_t slot = 0) {
    return &slots_.at(slot).layers.at(i);
  }
  const LayerKv* layer(size_t i, size_t slot = 0) const {
    return &slots_.at(slot).layers.at(i);
  }

  bool seeded(size_t slot = 0) const { return at(slot).seeded; }

  /// One-time seeding of `slot` with prefix-tuning K/V rows (nullptr when
  /// the forward has no prefix). Must run before the slot's first
  /// incremental forward so the prefix rows occupy the head of every
  /// layer's page.
  void SeedPrefix(const PrefixKv* prefix, size_t slot = 0);

  /// Bumps `slot`'s cached-token count after a chunked forward appended
  /// `count` rows to every one of its layer pages.
  void AdvanceTokens(size_t count, size_t slot = 0) {
    slots_.at(slot).tokens += count;
  }

  /// Drops `slot`'s cached rows beyond `num_tokens` token positions
  /// (prefix-tuning rows are always kept). Requires num_tokens <= tokens().
  void TruncateTokens(size_t num_tokens, size_t slot = 0);

  /// Returns `slot` to its pristine state: all pages dropped, token count
  /// zero, unseeded. Used when a batch slot is recycled for a new row.
  void ResetSlot(size_t slot);

 private:
  struct Slot {
    std::vector<LayerKv> layers;
    size_t prefix_rows = 0;
    size_t tokens = 0;
    bool seeded = false;
  };

  const Slot& at(size_t slot) const { return slots_.at(slot); }

  size_t num_layers_;
  std::vector<Slot> slots_;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_KV_CACHE_H_
