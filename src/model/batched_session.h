#ifndef INFUSERKI_MODEL_BATCHED_SESSION_H_
#define INFUSERKI_MODEL_BATCHED_SESSION_H_

#include <cstddef>
#include <vector>

#include "model/kv_cache.h"
#include "model/transformer.h"

namespace infuserki::model {

/// Incremental inference over a pool of concurrent token sequences,
/// decoded together in ragged batched steps.
///
/// Each in-flight sequence occupies one KV slot (see KvCache): AcquireSlot
/// checks one out, Step() forwards every participating row's new tokens in
/// ONE packed forward (prefill rows carry whole prompts, decode rows a
/// single token — mixed freely), and ReleaseSlot recycles the slot for the
/// next sequence. Every row of a Step is bit-exact with a single-sequence
/// DecodeSession fed the same tokens (DESIGN.md §11): position-wise
/// sublayers run packed with identical per-row arithmetic and attention
/// runs per row against that row's own K/V page.
///
/// Snapshot()/Restore() save and replant a slot's K/V pages, which is how
/// the serving layer's PrefixCache parks a prefilled prompt boundary and
/// later seeds a fresh slot from it without re-running the prefill. A
/// snapshot shares the underlying page storage (pages are never mutated in
/// place — appends and truncations always produce fresh tensors), so two
/// in-flight rows restored from the same snapshot share one copy of the
/// prefix K/V until they diverge.
///
/// Sessions are single-threaded and inference-only (all forwards run under
/// NoGradGuard; hooks / prefix tuning / tracing are unsupported — the
/// generation layer routes those to the single-sequence paths). Thread
/// confinement, not locking, is the concurrency contract (DESIGN.md §13):
/// the session and its KV slot pool are owned by exactly one scheduler
/// thread, so they carry no mutex and no TSA capabilities. SlotSnapshots
/// handed to the PrefixCache are immutable shares; the cache's own mu_
/// publishes them to other rows.
class BatchedDecodeSession {
 public:
  BatchedDecodeSession(const TransformerLM& lm, size_t max_rows);

  size_t max_rows() const { return cache_.num_slots(); }
  size_t active_rows() const { return active_rows_; }
  bool HasFreeSlot() const { return active_rows_ < max_rows(); }

  /// Hard sequence ceiling (the model's positional table size).
  size_t max_tokens() const { return lm_.config().max_seq_len; }

  /// Token positions fed to `slot` so far.
  size_t tokens(size_t slot) const { return cache_.tokens(slot); }

  /// Checks out a free slot (CHECK-fails when none is free; probe with
  /// HasFreeSlot). The slot starts empty: the first Step row on it is a
  /// prefill at position 0 unless Restore() replants saved pages first.
  size_t AcquireSlot();

  /// Returns `slot` to the free pool, dropping its K/V pages.
  void ReleaseSlot(size_t slot);

  /// A slot's per-layer K/V pages at some sequence boundary. Tensors share
  /// storage with the live slot (cheap); `tokens` is the boundary length.
  struct SlotSnapshot {
    std::vector<tensor::Tensor> keys;
    std::vector<tensor::Tensor> values;
    size_t tokens = 0;
  };

  /// Captures `slot`'s current pages. Call at the prompt boundary (right
  /// after the prefill Step) to get a reusable prefix snapshot.
  SlotSnapshot Snapshot(size_t slot) const;

  /// Replants `snapshot` into a freshly acquired (empty) `slot`: the next
  /// Step row on it continues from position snapshot.tokens.
  void Restore(size_t slot, const SlotSnapshot& snapshot);

  /// One participating row of a batched step. `adapter` pins the adapter
  /// version the row was admitted under (nullptr = base model); it must
  /// stay the same for every Step of that row's lifetime so the decoded
  /// stream is bit-exact for ONE version (the swap protocol's epoch
  /// pinning, DESIGN.md §12). Not owned; the serving layer keeps the
  /// version alive via its shared_ptr pin for as long as the row flies.
  struct RowInput {
    size_t slot = 0;
    std::vector<int> tokens;  // new tokens for this row (>= 1)
    const PositionWiseAdapter* adapter = nullptr;
  };

  /// Runs all rows' new tokens in ragged batched forwards and returns
  /// per-row logits [T_r, V], in `rows` order. Rows must use distinct,
  /// acquired slots. Rows sharing an adapter version run in ONE packed
  /// forward; a step mixing versions runs one forward per distinct version
  /// (first-appearance order), so a hot swap costs at most one extra
  /// forward per step while both generations are in flight.
  std::vector<tensor::Tensor> Step(const std::vector<RowInput>& rows);

 private:
  const TransformerLM& lm_;
  KvCache cache_;
  std::vector<bool> in_use_;
  size_t active_rows_ = 0;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_BATCHED_SESSION_H_
