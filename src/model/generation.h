#ifndef INFUSERKI_MODEL_GENERATION_H_
#define INFUSERKI_MODEL_GENERATION_H_

#include <string>
#include <vector>

#include "model/transformer.h"
#include "text/tokenizer.h"

namespace infuserki::model {

/// Greedy (argmax) decoding. Returns only the newly generated ids; stops at
/// <eos> or after `max_new_tokens`.
std::vector<int> GreedyDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens,
                              const ForwardOptions& options = {});

/// Temperature / top-k sampling. `temperature` <= 0 degenerates to greedy;
/// `top_k` = 0 disables truncation. Returns the newly generated ids.
std::vector<int> SampleDecode(const TransformerLM& lm,
                              const std::vector<int>& prompt_ids,
                              size_t max_new_tokens, util::Rng* rng,
                              float temperature = 1.0f, size_t top_k = 0,
                              const ForwardOptions& options = {});

/// Sum of log P(continuation | prompt) under the LM, in nats.
double SequenceLogProb(const TransformerLM& lm,
                       const std::vector<int>& prompt_ids,
                       const std::vector<int>& continuation_ids,
                       const ForwardOptions& options = {});

/// Result of scoring one MCQ's options by continuation likelihood.
struct OptionScores {
  std::vector<double> log_probs;         // sum log-prob per option
  std::vector<double> probabilities;     // softmax of log_probs (Fig. 7 view)
  int best = 0;  // argmax of length-normalized log-prob (the decision rule)
};

/// Scores each option text as a continuation of `prompt`. The decision uses
/// length-normalized log-probabilities (standard small-LM MCQ protocol);
/// `probabilities` reproduces the distribution-over-choices view from the
/// paper's Fig. 7 case study.
OptionScores ScoreOptions(const TransformerLM& lm,
                          const text::Tokenizer& tokenizer,
                          const std::string& prompt,
                          const std::vector<std::string>& options_text,
                          const ForwardOptions& options = {});

/// Paper-faithful answer extraction (§3.2): greedily decodes a response and
/// extracts the chosen option, matching "( x )" letters first and falling
/// back to option-text containment. Returns the option index or -1 when
/// nothing can be extracted (which the paper counts as incorrect).
int ExtractChosenOption(const TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::string& prompt,
                        const std::vector<std::string>& options_text,
                        const ForwardOptions& options = {});

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_GENERATION_H_
