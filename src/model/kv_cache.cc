#include "model/kv_cache.h"

#include "util/logging.h"

namespace infuserki::model {

void KvCache::SeedPrefix(const PrefixKv* prefix, size_t slot_index) {
  Slot& slot = slots_.at(slot_index);
  CHECK(!slot.seeded);
  CHECK_EQ(slot.tokens, size_t{0});
  slot.seeded = true;
  if (prefix == nullptr || prefix->prefix_len == 0) return;
  CHECK_EQ(prefix->keys.size(), num_layers_);
  CHECK_EQ(prefix->values.size(), num_layers_);
  slot.prefix_rows = prefix->prefix_len;
  for (size_t l = 0; l < num_layers_; ++l) {
    slot.layers[l].k = prefix->keys[l].Detach();
    slot.layers[l].v = prefix->values[l].Detach();
  }
}

void KvCache::TruncateTokens(size_t num_tokens, size_t slot_index) {
  Slot& slot = slots_.at(slot_index);
  CHECK_LE(num_tokens, slot.tokens);
  if (num_tokens == slot.tokens) return;
  size_t keep_rows = slot.prefix_rows + num_tokens;
  for (LayerKv& layer : slot.layers) {
    if (!layer.k.defined()) continue;
    if (keep_rows == 0) {
      layer.k = tensor::Tensor();
      layer.v = tensor::Tensor();
      continue;
    }
    size_t cols = layer.k.dim(1);
    std::vector<float> k_data(layer.k.data(),
                              layer.k.data() + keep_rows * cols);
    std::vector<float> v_data(layer.v.data(),
                              layer.v.data() + keep_rows * cols);
    layer.k = tensor::Tensor::FromData({keep_rows, cols}, std::move(k_data));
    layer.v = tensor::Tensor::FromData({keep_rows, cols}, std::move(v_data));
  }
  slot.tokens = num_tokens;
}

void KvCache::ResetSlot(size_t slot_index) {
  Slot& slot = slots_.at(slot_index);
  for (LayerKv& layer : slot.layers) {
    layer.k = tensor::Tensor();
    layer.v = tensor::Tensor();
  }
  slot.prefix_rows = 0;
  slot.tokens = 0;
  slot.seeded = false;
}

}  // namespace infuserki::model
