#include "model/kv_cache.h"

#include "util/logging.h"

namespace infuserki::model {

void KvCache::SeedPrefix(const PrefixKv* prefix) {
  CHECK(!seeded_);
  CHECK_EQ(tokens_, size_t{0});
  seeded_ = true;
  if (prefix == nullptr || prefix->prefix_len == 0) return;
  CHECK_EQ(prefix->keys.size(), layers_.size());
  CHECK_EQ(prefix->values.size(), layers_.size());
  prefix_rows_ = prefix->prefix_len;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].k = prefix->keys[l].Detach();
    layers_[l].v = prefix->values[l].Detach();
  }
}

void KvCache::TruncateTokens(size_t num_tokens) {
  CHECK_LE(num_tokens, tokens_);
  if (num_tokens == tokens_) return;
  size_t keep_rows = prefix_rows_ + num_tokens;
  for (LayerKv& layer : layers_) {
    if (!layer.k.defined()) continue;
    if (keep_rows == 0) {
      layer.k = tensor::Tensor();
      layer.v = tensor::Tensor();
      continue;
    }
    size_t cols = layer.k.dim(1);
    std::vector<float> k_data(layer.k.data(),
                              layer.k.data() + keep_rows * cols);
    std::vector<float> v_data(layer.v.data(),
                              layer.v.data() + keep_rows * cols);
    layer.k = tensor::Tensor::FromData({keep_rows, cols}, std::move(k_data));
    layer.v = tensor::Tensor::FromData({keep_rows, cols}, std::move(v_data));
  }
  tokens_ = num_tokens;
}

}  // namespace infuserki::model
