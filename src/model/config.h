#ifndef INFUSERKI_MODEL_CONFIG_H_
#define INFUSERKI_MODEL_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace infuserki::model {

/// Architecture of the decoder-only base LM.
///
/// The default is the simulator-scale stand-in for LLaMa-2-7B used across
/// the experiments: the depth/width are scaled down but the block structure
/// (pre-RMSNorm, multi-head causal attention, SwiGLU FFN, tied embeddings)
/// matches, so FFN-parallel adapters and internal-state gating attach in
/// exactly the places the paper describes.
struct TransformerConfig {
  size_t vocab_size = 0;   // set from the tokenizer
  size_t dim = 80;         // hidden size d
  size_t num_layers = 12;  // L
  size_t num_heads = 4;
  size_t ffn_hidden = 160;  // SwiGLU inner width
  size_t max_seq_len = 96;  // learned positional table size

  /// Stable hash over all fields (model-cache key component).
  uint64_t Fingerprint() const;

  std::string ToString() const;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_CONFIG_H_
