#ifndef INFUSERKI_MODEL_PRETRAIN_H_
#define INFUSERKI_MODEL_PRETRAIN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/config.h"
#include "model/transformer.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace infuserki::model {

/// Everything a base-model pretraining run depends on. The fingerprint of
/// this spec keys the on-disk model cache, so identical specs across bench
/// binaries reuse one pretrained model.
struct PretrainSpec {
  TransformerConfig arch;  // vocab_size is filled in from the corpus

  /// Fully-supervised documents (knowledge statements, filler prose).
  std::vector<std::string> plain_docs;

  /// Instruction documents (QA with response-only loss).
  std::vector<std::pair<std::string, std::string>> instruction_docs;

  /// Additional text that must be covered by the vocabulary but is not
  /// trained on (e.g. questions about facts the base model must NOT know).
  std::vector<std::string> extra_vocab_docs;

  size_t steps = 2500;
  size_t batch_size = 8;
  float lr = 3e-3f;
  uint64_t seed = 7;

  /// Directory for cached models; empty disables caching.
  std::string cache_dir;

  /// Mid-run durability (see model/train_state.h). These knobs do not
  /// change what is trained, only how the run survives crashes, so they
  /// are deliberately excluded from Fingerprint(): an interrupted run and
  /// a clean one produce (and cache) the same model.
  std::string checkpoint_dir;
  size_t checkpoint_every_n_steps = 0;
  size_t checkpoint_keep_last = 2;
  bool resume = true;

  uint64_t Fingerprint() const;
};

/// A pretrained base model with its tokenizer.
struct PretrainedModel {
  std::unique_ptr<TransformerLM> lm;
  text::Tokenizer tokenizer;
  float final_loss = 0.0f;  // 0 when loaded from cache
};

/// Cache file the spec would load from / save to:
/// `<cache_dir>/base_<fingerprint-hex>.ckpt`.
std::string PretrainCachePath(const PretrainSpec& spec);

/// Strict cache-file loader. Returns kNotFound for a missing file and an
/// error (never a half-built model) for anything unreadable: torn frame,
/// CRC mismatch, wrong magic, fingerprint that contradicts the file name,
/// implausible vocabulary size, undecodable tokenizer or parameters.
util::Status LoadCachedModel(const std::string& path,
                             const PretrainSpec& spec, PretrainedModel* out);

/// Trains the base LM on the spec's corpus, or loads it from the cache when
/// a model with the same fingerprint exists. The returned model's
/// parameters are left trainable (callers freeze them for PEFT).
///
/// Robustness: a corrupt cache file is quarantined (renamed `.corrupt`)
/// and the model is retrained from scratch; with `checkpoint_dir` set the
/// training loop itself snapshots and resumes per the spec's policy.
PretrainedModel PretrainOrLoad(const PretrainSpec& spec);

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_PRETRAIN_H_
