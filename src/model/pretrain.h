#ifndef INFUSERKI_MODEL_PRETRAIN_H_
#define INFUSERKI_MODEL_PRETRAIN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/config.h"
#include "model/transformer.h"
#include "text/tokenizer.h"

namespace infuserki::model {

/// Everything a base-model pretraining run depends on. The fingerprint of
/// this spec keys the on-disk model cache, so identical specs across bench
/// binaries reuse one pretrained model.
struct PretrainSpec {
  TransformerConfig arch;  // vocab_size is filled in from the corpus

  /// Fully-supervised documents (knowledge statements, filler prose).
  std::vector<std::string> plain_docs;

  /// Instruction documents (QA with response-only loss).
  std::vector<std::pair<std::string, std::string>> instruction_docs;

  /// Additional text that must be covered by the vocabulary but is not
  /// trained on (e.g. questions about facts the base model must NOT know).
  std::vector<std::string> extra_vocab_docs;

  size_t steps = 2500;
  size_t batch_size = 8;
  float lr = 3e-3f;
  uint64_t seed = 7;

  /// Directory for cached models; empty disables caching.
  std::string cache_dir;

  uint64_t Fingerprint() const;
};

/// A pretrained base model with its tokenizer.
struct PretrainedModel {
  std::unique_ptr<TransformerLM> lm;
  text::Tokenizer tokenizer;
  float final_loss = 0.0f;  // 0 when loaded from cache
};

/// Trains the base LM on the spec's corpus, or loads it from the cache when
/// a model with the same fingerprint exists. The returned model's
/// parameters are left trainable (callers freeze them for PEFT).
PretrainedModel PretrainOrLoad(const PretrainSpec& spec);

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_PRETRAIN_H_
