#ifndef INFUSERKI_MODEL_TRAINER_H_
#define INFUSERKI_MODEL_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "model/train_state.h"
#include "model/transformer.h"
#include "tensor/optimizer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace infuserki::model {

/// One language-modeling example: a token sequence plus the index of the
/// first supervised token (0 supervises the whole sequence, as in plain
/// pretraining; instruction samples set it to the first response token).
struct LmExample {
  std::vector<int> tokens;
  size_t loss_start = 0;
  /// Free-form marker a training recipe can attach (e.g. InfuserKI tags
  /// known-replay samples to flip its gate override per example).
  int tag = 0;
};

/// Builds an instruction example: <bos> prompt response <eos> with the loss
/// restricted to the response and <eos>.
LmExample MakeInstructionExample(const text::Tokenizer& tokenizer,
                                 const std::string& prompt,
                                 const std::string& response);

/// Builds a plain LM example: <bos> text <eos>, fully supervised.
LmExample MakePlainExample(const text::Tokenizer& tokenizer,
                           const std::string& text);

/// Generic mini-batch AdamW trainer over LmExamples. Used both for base-
/// model pretraining and for every fine-tuning method (the trainable
/// parameter set decides what actually moves).
class LmTrainer {
 public:
  struct Options {
    float lr = 1e-3f;
    // Zero by default: both pretraining and knowledge integration are
    // memorization workloads, where decay directly erodes stored facts.
    float weight_decay = 0.0f;
    float clip_norm = 1.0f;
    size_t batch_size = 8;
    uint64_t seed = 99;
    /// Cosine learning-rate decay over the TrainSteps() horizon, down to
    /// `min_lr_fraction` of the base lr. Large final-phase steps are what
    /// keep memorization losses from converging; the decay matters more
    /// here than in classification fine-tuning.
    bool cosine_decay = true;
    float min_lr_fraction = 0.1f;
    /// Invoked before each example's forward pass (per-example setup such
    /// as hook reconfiguration). May be empty.
    std::function<void(const LmExample&)> on_example;
  };

  LmTrainer(const TransformerLM* lm, std::vector<tensor::Tensor> trainable,
            const Options& options);

  /// Runs `steps` optimizer steps, cycling over `examples` in reshuffled
  /// epochs. Returns the mean loss of the final epoch-equivalent window.
  ///
  /// With an enabled `policy`, the loop snapshots its full state (weights,
  /// AdamW moments, RNG stream, schedule position) every
  /// `policy.every_n_steps` steps and, if `policy.resume` is set, first
  /// tries to continue from the newest valid snapshot in `policy.dir`.
  /// A resumed run is bit-exact with an uninterrupted one; snapshots that
  /// fail their CRC are quarantined and the next-older one is tried.
  float TrainSteps(const std::vector<LmExample>& examples, size_t steps,
                   const ForwardOptions& forward = {},
                   const CheckpointPolicy& policy = {});

  /// Single optimizer step on an explicit batch; returns its mean loss.
  float Step(const std::vector<const LmExample*>& batch,
             const ForwardOptions& forward = {});

  tensor::AdamW& optimizer() { return optimizer_; }

 private:
  const TransformerLM* lm_;
  tensor::AdamW optimizer_;
  float clip_norm_;
  size_t batch_size_;
  bool cosine_decay_;
  float min_lr_fraction_;
  float base_lr_;
  std::function<void(const LmExample&)> on_example_;
  util::Rng rng_;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_TRAINER_H_
