#ifndef INFUSERKI_MODEL_TRANSFORMER_H_
#define INFUSERKI_MODEL_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "model/config.h"
#include "model/hooks.h"
#include "model/kv_cache.h"
#include "model/serve_adapter.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace infuserki::model {

/// One pre-norm transformer block: x += Attn(norm1(x)); x += FFN(norm2(x))
/// with SwiGLU FFN. Exposes its projections so PEFT methods can attach
/// LoRA deltas, and routes hook deltas per ForwardOptions.
class TransformerLayer : public tensor::Module {
 public:
  TransformerLayer(const TransformerConfig& config, util::Rng* rng);

  /// Residual-stream update for layer `layer_index`.
  ///
  /// With `kv == nullptr` this is the full-sequence forward (prefix-tuning
  /// rows, if any, are concatenated from `options.prefix`). With a cache
  /// layer, `x` holds only the NEW positions: the cached K/V rows (which
  /// already include any prefix-tuning rows) are prepended, the new rows
  /// are appended to the cache, and attention runs with the cached rows as
  /// an always-visible prefix — row-for-row bit-identical to the
  /// full-sequence pass.
  tensor::Tensor Forward(const tensor::Tensor& x, int layer_index,
                         const ForwardOptions& options,
                         LayerKv* kv = nullptr) const;

  /// Ragged batched residual-stream update. `x` is the packed batch
  /// [sum(row_lens), D] — row r's new positions occupy the `row_lens[r]`
  /// consecutive rows starting at offset sum(row_lens[0..r)). Every
  /// position-wise sublayer (norms, projections, SwiGLU, residuals) runs on
  /// the packed tensor directly — the arithmetic for each row is identical
  /// to the single-sequence Forward — while attention is computed per row
  /// against `row_kv[r]`, that row's cached K/V page (new rows appended,
  /// exactly as the single-sequence cached path). Bit-exact per row with
  /// Forward; no hook / prefix-tuning / trace support (serving path).
  ///
  /// An optional PositionWiseAdapter applies its delta to the packed
  /// sublayer input (attachment selects attention vs FFN) with `chain`
  /// carrying the cross-layer adapter state — every adapter op is
  /// row-wise, so the packed delta stays bit-exact per row with the
  /// hook-driven single-sequence pass. `layer_index` is only consulted by
  /// the adapter; pass anything when `adapter == nullptr`.
  tensor::Tensor ForwardBatched(
      const tensor::Tensor& x, const std::vector<size_t>& row_lens,
      const std::vector<LayerKv*>& row_kv, int layer_index = -1,
      const PositionWiseAdapter* adapter = nullptr,
      PositionWiseAdapter::ChainState* chain = nullptr) const;

  tensor::Linear& wq() { return wq_; }
  tensor::Linear& wk() { return wk_; }
  tensor::Linear& wv() { return wv_; }
  tensor::Linear& wo() { return wo_; }
  tensor::Linear& ffn_gate() { return ffn_gate_; }
  tensor::Linear& ffn_up() { return ffn_up_; }
  tensor::Linear& ffn_down() { return ffn_down_; }

 private:
  size_t num_heads_;
  tensor::Tensor norm1_weight_;
  tensor::Tensor norm2_weight_;
  tensor::Linear wq_;
  tensor::Linear wk_;
  tensor::Linear wv_;
  tensor::Linear wo_;
  tensor::Linear ffn_gate_;  // W1 of SwiGLU
  tensor::Linear ffn_up_;    // W3
  tensor::Linear ffn_down_;  // W2
};

/// Decoder-only language model with tied input/output embeddings, learned
/// positions, and per-layer hook points (see hooks.h). This is the
/// simulator-scale stand-in for the paper's LLaMa-2-7B base model.
class TransformerLM : public tensor::Module {
 public:
  TransformerLM(const TransformerConfig& config, util::Rng* rng);

  /// Final-norm hidden states for `tokens` -> [T, D].
  tensor::Tensor Hidden(const std::vector<int>& tokens,
                        const ForwardOptions& options = {}) const;

  /// Token logits -> [T, V] (tied output head: h @ E^T).
  tensor::Tensor Logits(const std::vector<int>& tokens,
                        const ForwardOptions& options = {}) const;

  /// Incremental (KV-cached) forward: runs `tokens` at positions
  /// cache->tokens() .. cache->tokens() + T - 1 against the cached
  /// key/value rows, appending the new rows to `cache`. Returns final-norm
  /// hidden states for the NEW positions only, [T, D]. Inference-only (the
  /// cache stores detached values); call under NoGradGuard — DecodeSession
  /// wraps this. `options.trace` is not supported on this path.
  tensor::Tensor HiddenIncremental(const std::vector<int>& tokens,
                                   KvCache* cache,
                                   const ForwardOptions& options = {}) const;

  /// HiddenIncremental through the tied output head -> [T, V].
  tensor::Tensor LogitsIncremental(const std::vector<int>& tokens,
                                   KvCache* cache,
                                   const ForwardOptions& options = {}) const;

  /// One row of a ragged batched forward: the row's NEW tokens plus the
  /// KvCache slot holding its previously cached K/V pages. Prefill rows
  /// carry whole prompts, decode rows carry a single token — mixed freely
  /// in one batch.
  struct BatchRow {
    const std::vector<int>* tokens = nullptr;
    size_t slot = 0;
  };

  /// Ragged batched incremental forward: every row's new tokens run at
  /// positions cache->tokens(row.slot) .. in ONE packed forward, appending
  /// each row's new K/V rows to its own slot. Returns packed final-norm
  /// hidden states [sum_T, D], rows in batch order (slice with
  /// tensor::SliceRows). Each output row is bit-exact with the
  /// single-sequence HiddenIncremental of that row alone (DESIGN.md §11).
  /// Inference-only; call under NoGradGuard. Slots must be distinct; hooks,
  /// prefix tuning and tracing are not supported on this path — the one
  /// batched-safe extension point is an optional PositionWiseAdapter,
  /// applied identically to EVERY row of the batch (rows pinned to
  /// different adapter versions must go in separate calls; the scheduler
  /// partitions by version, DESIGN.md §12).
  tensor::Tensor HiddenBatched(const std::vector<BatchRow>& rows,
                               KvCache* cache,
                               const PositionWiseAdapter* adapter =
                                   nullptr) const;

  /// HiddenBatched through the tied output head -> [sum_T, V].
  tensor::Tensor LogitsBatched(const std::vector<BatchRow>& rows,
                               KvCache* cache,
                               const PositionWiseAdapter* adapter =
                                   nullptr) const;

  /// Mean next-token cross entropy over positions >= loss_start (0 = whole
  /// sequence). Position t predicts tokens[t + 1]; with loss_start = p only
  /// targets at indices > p contribute, which restricts supervision to the
  /// response part of an instruction sample.
  tensor::Tensor NextTokenLoss(const std::vector<int>& tokens,
                               size_t loss_start = 0,
                               const ForwardOptions& options = {}) const;

  const TransformerConfig& config() const { return config_; }
  TransformerLayer& layer(size_t i) { return *layers_[i]; }
  const tensor::Embedding& token_embedding() const { return token_emb_; }

 private:
  TransformerConfig config_;
  tensor::Embedding token_emb_;
  tensor::Embedding pos_emb_;
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
  tensor::Tensor final_norm_weight_;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_TRANSFORMER_H_
