#include "model/decode_session.h"

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

/// Inference-engine metrics. Prefill = multi-token chunks (prompt
/// ingestion), decode = single-token steps; the reuse counter tallies
/// cached rows each incremental forward attended to instead of recomputing.
struct EngineMetrics {
  obs::Counter* sessions;
  obs::Counter* prefill_tokens;
  obs::Counter* decode_tokens;
  obs::Counter* cached_rows_reused;
  obs::Counter* rewinds;
  obs::Histogram* prefill_seconds;
  obs::Histogram* decode_step_seconds;
};

EngineMetrics& Metrics() {
  // Locking contract: resolved once under the magic-static guard; the
  // struct is immutable afterwards and all metric updates are relaxed
  // atomics, so concurrent sessions (parallel MCQ fan-out) publish without
  // any lock.
  static EngineMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new EngineMetrics{
        registry.GetCounter("engine/sessions"),
        registry.GetCounter("engine/prefill_tokens"),
        registry.GetCounter("engine/decode_tokens"),
        registry.GetCounter("engine/cached_rows_reused"),
        registry.GetCounter("engine/rewinds"),
        registry.GetHistogram("engine/prefill_seconds"),
        registry.GetHistogram("engine/decode_step_seconds")};
  }();
  return *metrics;
}

}  // namespace

DecodeSession::DecodeSession(const TransformerLM& lm,
                             const ForwardOptions& options)
    : lm_(lm), options_(options), cache_(lm.config().num_layers) {
  CHECK(options_.trace == nullptr)
      << "trace recording is not supported on the incremental path";
  CHECK(!HasSequenceStatefulHook(options_))
      << "sequence-stateful hooks (Infuser-gated adapters) cannot take the "
         "KV-cached path; use the full-recompute generation entry points";
  Metrics().sessions->Increment();
}

tensor::Tensor DecodeSession::Prefill(const std::vector<int>& tokens) {
  CHECK(!tokens.empty());
  EngineMetrics& metrics = Metrics();
  size_t reused = cache_.prefix_rows() + cache_.tokens();
  util::Stopwatch watch;
  tensor::NoGradGuard no_grad;
  tensor::Tensor logits = lm_.LogitsIncremental(tokens, &cache_, options_);
  double seconds = watch.ElapsedSeconds();
  if (tokens.size() == 1) {
    metrics.decode_tokens->Increment();
    metrics.decode_step_seconds->Record(seconds);
  } else {
    metrics.prefill_tokens->Increment(tokens.size());
    metrics.prefill_seconds->Record(seconds);
  }
  metrics.cached_rows_reused->Increment(reused * tokens.size());
  return logits;
}

tensor::Tensor DecodeSession::Decode(int token) { return Prefill({token}); }

DecodeSession::Checkpoint DecodeSession::Save() const {
  return Checkpoint{cache_.tokens()};
}

void DecodeSession::Rewind(const Checkpoint& checkpoint) {
  cache_.TruncateTokens(checkpoint.tokens);
  Metrics().rewinds->Increment();
}

}  // namespace infuserki::model
