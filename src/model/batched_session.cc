#include "model/batched_session.h"

#include "obs/metrics.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

/// Batched-engine metrics. Shares the engine/prefill_tokens and
/// engine/decode_tokens streams with DecodeSession (same registry names)
/// and adds per-step batching telemetry.
struct BatchedMetrics {
  obs::Counter* sessions;
  obs::Counter* prefill_tokens;
  obs::Counter* decode_tokens;
  obs::Counter* batched_steps;
  obs::Counter* batched_rows;
  obs::Histogram* batched_step_seconds;
};

BatchedMetrics& Metrics() {
  // Locking contract: resolved once under the magic-static guard; the
  // struct is immutable afterwards and all metric updates are relaxed
  // atomics (the EngineMetrics idiom from decode_session.cc).
  static BatchedMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new BatchedMetrics{
        registry.GetCounter("engine/sessions"),
        registry.GetCounter("engine/prefill_tokens"),
        registry.GetCounter("engine/decode_tokens"),
        registry.GetCounter("engine/batched_steps"),
        registry.GetCounter("engine/batched_rows"),
        registry.GetHistogram("engine/batched_step_seconds")};
  }();
  return *metrics;
}

}  // namespace

BatchedDecodeSession::BatchedDecodeSession(const TransformerLM& lm,
                                           size_t max_rows)
    : lm_(lm),
      cache_(lm.config().num_layers, max_rows),
      in_use_(max_rows, false) {
  CHECK_GT(max_rows, size_t{0});
  Metrics().sessions->Increment();
}

size_t BatchedDecodeSession::AcquireSlot() {
  CHECK(HasFreeSlot()) << "all " << max_rows() << " batch slots are in use";
  for (size_t slot = 0; slot < in_use_.size(); ++slot) {
    if (!in_use_[slot]) {
      in_use_[slot] = true;
      ++active_rows_;
      return slot;
    }
  }
  CHECK(false) << "free-slot accounting out of sync";
  return 0;
}

void BatchedDecodeSession::ReleaseSlot(size_t slot) {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]) << "slot " << slot << " is not acquired";
  cache_.ResetSlot(slot);
  in_use_[slot] = false;
  --active_rows_;
}

BatchedDecodeSession::SlotSnapshot BatchedDecodeSession::Snapshot(
    size_t slot) const {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]);
  SlotSnapshot snapshot;
  snapshot.tokens = cache_.tokens(slot);
  size_t layers = cache_.num_layers();
  snapshot.keys.reserve(layers);
  snapshot.values.reserve(layers);
  // Tensor copies share storage; pages are append-only (every extension
  // replaces the handle with a fresh ConcatRows result), so the snapshot
  // stays frozen at this boundary no matter how the slot decodes on.
  for (size_t l = 0; l < layers; ++l) {
    const LayerKv* page = cache_.layer(l, slot);
    snapshot.keys.push_back(page->k);
    snapshot.values.push_back(page->v);
  }
  return snapshot;
}

void BatchedDecodeSession::Restore(size_t slot,
                                   const SlotSnapshot& snapshot) {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]);
  CHECK_EQ(cache_.tokens(slot), size_t{0})
      << "Restore requires a fresh slot";
  CHECK(!cache_.seeded(slot));
  CHECK_EQ(snapshot.keys.size(), cache_.num_layers());
  CHECK_EQ(snapshot.values.size(), cache_.num_layers());
  cache_.SeedPrefix(nullptr, slot);
  for (size_t l = 0; l < cache_.num_layers(); ++l) {
    LayerKv* page = cache_.layer(l, slot);
    page->k = snapshot.keys[l];
    page->v = snapshot.values[l];
  }
  cache_.AdvanceTokens(snapshot.tokens, slot);
}

std::vector<tensor::Tensor> BatchedDecodeSession::Step(
    const std::vector<RowInput>& rows) {
  CHECK(!rows.empty());
  BatchedMetrics& metrics = Metrics();
  util::Stopwatch watch;
  tensor::NoGradGuard no_grad;
  std::vector<TransformerLM::BatchRow> batch;
  batch.reserve(rows.size());
  for (const RowInput& row : rows) {
    CHECK_LT(row.slot, in_use_.size());
    CHECK(in_use_[row.slot]) << "Step row uses unacquired slot " << row.slot;
    batch.push_back(TransformerLM::BatchRow{&row.tokens, row.slot});
  }
  tensor::Tensor packed = lm_.LogitsBatched(batch, &cache_);
  std::vector<tensor::Tensor> per_row;
  per_row.reserve(rows.size());
  size_t offset = 0;
  for (const RowInput& row : rows) {
    per_row.push_back(tensor::SliceRows(packed, offset, row.tokens.size()));
    offset += row.tokens.size();
    if (row.tokens.size() == 1) {
      metrics.decode_tokens->Increment();
    } else {
      metrics.prefill_tokens->Increment(row.tokens.size());
    }
  }
  metrics.batched_steps->Increment();
  metrics.batched_rows->Increment(rows.size());
  metrics.batched_step_seconds->Record(watch.ElapsedSeconds());
  return per_row;
}

}  // namespace infuserki::model
