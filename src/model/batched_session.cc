#include "model/batched_session.h"

#include "obs/metrics.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

/// Batched-engine metrics. Shares the engine/prefill_tokens and
/// engine/decode_tokens streams with DecodeSession (same registry names)
/// and adds per-step batching telemetry.
struct BatchedMetrics {
  obs::Counter* sessions;
  obs::Counter* prefill_tokens;
  obs::Counter* decode_tokens;
  obs::Counter* batched_steps;
  obs::Counter* batched_rows;
  obs::Histogram* batched_step_seconds;
};

BatchedMetrics& Metrics() {
  // Locking contract: resolved once under the magic-static guard; the
  // struct is immutable afterwards and all metric updates are relaxed
  // atomics (the EngineMetrics idiom from decode_session.cc).
  static BatchedMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new BatchedMetrics{
        registry.GetCounter("engine/sessions"),
        registry.GetCounter("engine/prefill_tokens"),
        registry.GetCounter("engine/decode_tokens"),
        registry.GetCounter("engine/batched_steps"),
        registry.GetCounter("engine/batched_rows"),
        registry.GetHistogram("engine/batched_step_seconds")};
  }();
  return *metrics;
}

}  // namespace

BatchedDecodeSession::BatchedDecodeSession(const TransformerLM& lm,
                                           size_t max_rows)
    : lm_(lm),
      cache_(lm.config().num_layers, max_rows),
      in_use_(max_rows, false) {
  CHECK_GT(max_rows, size_t{0});
  Metrics().sessions->Increment();
}

size_t BatchedDecodeSession::AcquireSlot() {
  CHECK(HasFreeSlot()) << "all " << max_rows() << " batch slots are in use";
  for (size_t slot = 0; slot < in_use_.size(); ++slot) {
    if (!in_use_[slot]) {
      in_use_[slot] = true;
      ++active_rows_;
      return slot;
    }
  }
  CHECK(false) << "free-slot accounting out of sync";
  return 0;
}

void BatchedDecodeSession::ReleaseSlot(size_t slot) {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]) << "slot " << slot << " is not acquired";
  cache_.ResetSlot(slot);
  in_use_[slot] = false;
  --active_rows_;
}

BatchedDecodeSession::SlotSnapshot BatchedDecodeSession::Snapshot(
    size_t slot) const {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]);
  SlotSnapshot snapshot;
  snapshot.tokens = cache_.tokens(slot);
  size_t layers = cache_.num_layers();
  snapshot.keys.reserve(layers);
  snapshot.values.reserve(layers);
  // Tensor copies share storage; pages are append-only (every extension
  // replaces the handle with a fresh ConcatRows result), so the snapshot
  // stays frozen at this boundary no matter how the slot decodes on.
  for (size_t l = 0; l < layers; ++l) {
    const LayerKv* page = cache_.layer(l, slot);
    snapshot.keys.push_back(page->k);
    snapshot.values.push_back(page->v);
  }
  return snapshot;
}

void BatchedDecodeSession::Restore(size_t slot,
                                   const SlotSnapshot& snapshot) {
  CHECK_LT(slot, in_use_.size());
  CHECK(in_use_[slot]);
  CHECK_EQ(cache_.tokens(slot), size_t{0})
      << "Restore requires a fresh slot";
  CHECK(!cache_.seeded(slot));
  CHECK_EQ(snapshot.keys.size(), cache_.num_layers());
  CHECK_EQ(snapshot.values.size(), cache_.num_layers());
  cache_.SeedPrefix(nullptr, slot);
  for (size_t l = 0; l < cache_.num_layers(); ++l) {
    LayerKv* page = cache_.layer(l, slot);
    page->k = snapshot.keys[l];
    page->v = snapshot.values[l];
  }
  cache_.AdvanceTokens(snapshot.tokens, slot);
}

std::vector<tensor::Tensor> BatchedDecodeSession::Step(
    const std::vector<RowInput>& rows) {
  CHECK(!rows.empty());
  BatchedMetrics& metrics = Metrics();
  util::Stopwatch watch;
  tensor::NoGradGuard no_grad;
  for (const RowInput& row : rows) {
    CHECK_LT(row.slot, in_use_.size());
    CHECK(in_use_[row.slot]) << "Step row uses unacquired slot " << row.slot;
  }
  // Partition rows by pinned adapter version (first-appearance order): the
  // packed forward applies one adapter to every row, so rows pinned to
  // different versions must run in separate forwards to stay bit-exact for
  // their own version. The common cases — no adapters, or everyone on the
  // current version — collapse to the single packed forward of before.
  std::vector<const PositionWiseAdapter*> group_adapters;
  std::vector<std::vector<size_t>> group_rows;
  for (size_t r = 0; r < rows.size(); ++r) {
    size_t g = 0;
    while (g < group_adapters.size() && group_adapters[g] != rows[r].adapter) {
      ++g;
    }
    if (g == group_adapters.size()) {
      group_adapters.push_back(rows[r].adapter);
      group_rows.emplace_back();
    }
    group_rows[g].push_back(r);
  }
  std::vector<tensor::Tensor> per_row(rows.size());
  for (size_t g = 0; g < group_adapters.size(); ++g) {
    std::vector<TransformerLM::BatchRow> batch;
    batch.reserve(group_rows[g].size());
    for (size_t r : group_rows[g]) {
      batch.push_back(TransformerLM::BatchRow{&rows[r].tokens, rows[r].slot});
    }
    tensor::Tensor packed =
        lm_.LogitsBatched(batch, &cache_, group_adapters[g]);
    size_t offset = 0;
    for (size_t r : group_rows[g]) {
      per_row[r] =
          tensor::SliceRows(packed, offset, rows[r].tokens.size());
      offset += rows[r].tokens.size();
    }
  }
  for (const RowInput& row : rows) {
    if (row.tokens.size() == 1) {
      metrics.decode_tokens->Increment();
    } else {
      metrics.prefill_tokens->Increment(row.tokens.size());
    }
  }
  metrics.batched_steps->Increment();
  metrics.batched_rows->Increment(rows.size());
  metrics.batched_step_seconds->Record(watch.ElapsedSeconds());
  return per_row;
}

}  // namespace infuserki::model
