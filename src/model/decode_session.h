#ifndef INFUSERKI_MODEL_DECODE_SESSION_H_
#define INFUSERKI_MODEL_DECODE_SESSION_H_

#include <cstddef>
#include <vector>

#include "model/kv_cache.h"
#include "model/transformer.h"

namespace infuserki::model {

/// Incremental inference session over one logical token sequence.
///
/// Prefill() runs the model once over a chunk of tokens and caches every
/// layer's key/value rows; subsequent Prefill()/Decode() calls forward only
/// the NEW tokens against the cache, turning per-step decode cost from
/// O(T) full-sequence forwards into O(1) single-token forwards. The cached
/// path is bit-identical to the full-sequence forward (see DESIGN.md §7):
/// every sublayer is position-wise and attention re-reads the same key rows
/// in the same order. Sequence-stateful hooks (the Infuser gate pools over
/// every position, making the full-sequence forward non-causal) cannot be
/// reproduced incrementally and are rejected here; the generation layer
/// routes such forwards to the legacy full-recompute path.
///
/// Save()/Rewind() checkpoint the sequence boundary so a shared prompt
/// prefix can be prefilled once and reused across many continuations (MCQ
/// option scoring): Rewind truncates the cache back to the checkpoint.
///
/// Sessions are single-threaded; a stateful hook (options.ffn_hook /
/// attn_hook) must not be shared with a concurrent session or forward.
/// All forwards run under NoGradGuard — returned logits are plain values.
class DecodeSession {
 public:
  /// `options.trace` must be null and any hook must not be
  /// SequenceStateful() (both unsupported on the incremental path).
  /// `options` (and any hook / prefix it points to) must outlive the
  /// session.
  explicit DecodeSession(const TransformerLM& lm,
                         const ForwardOptions& options = {});

  /// Extends the sequence with `tokens`; returns logits [T, V] for the new
  /// positions (row i scores the token after position tokens_before + i).
  tensor::Tensor Prefill(const std::vector<int>& tokens);

  /// Single-token step; returns logits [1, V] for the new position.
  tensor::Tensor Decode(int token);

  /// Token positions fed so far.
  size_t tokens() const { return cache_.tokens(); }

  /// Hard sequence ceiling (the model's positional table size).
  size_t max_tokens() const { return lm_.config().max_seq_len; }

  /// Sequence-boundary checkpoint (a cached-token count).
  struct Checkpoint {
    size_t tokens = 0;
  };

  Checkpoint Save() const;

  /// Truncates the session back to `checkpoint` (taken on this session, at
  /// or before the current length).
  void Rewind(const Checkpoint& checkpoint);

 private:
  const TransformerLM& lm_;
  ForwardOptions options_;
  KvCache cache_;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_DECODE_SESSION_H_
