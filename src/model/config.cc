#include "model/config.h"

#include <sstream>

namespace infuserki::model {
namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // FNV-1a style mixing.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t TransformerConfig::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  h = HashCombine(h, vocab_size);
  h = HashCombine(h, dim);
  h = HashCombine(h, num_layers);
  h = HashCombine(h, num_heads);
  h = HashCombine(h, ffn_hidden);
  h = HashCombine(h, max_seq_len);
  return h;
}

std::string TransformerConfig::ToString() const {
  std::ostringstream os;
  os << "TransformerConfig{vocab=" << vocab_size << ", dim=" << dim
     << ", layers=" << num_layers << ", heads=" << num_heads
     << ", ffn_hidden=" << ffn_hidden << ", max_seq=" << max_seq_len << "}";
  return os.str();
}

}  // namespace infuserki::model
