#include "model/trainer.h"

#include <cmath>
#include <filesystem>
#include <numeric>
#include <system_error>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

/// Trainer metrics shared by all LmTrainer instances (pretraining and every
/// method's fine-tuning phases).
struct TrainerMetrics {
  obs::Counter* steps;
  obs::Counter* tokens;
  obs::Counter* examples;
  obs::Histogram* step_seconds;
  obs::Gauge* last_loss;
  obs::Gauge* tokens_per_sec;
};

TrainerMetrics& Metrics() {
  // Locking contract: resolved once under the magic-static guard; the
  // struct is immutable afterwards and every metric update is a relaxed
  // atomic on the lock-free metric objects.
  static TrainerMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new TrainerMetrics{
        registry.GetCounter("trainer/steps"),
        registry.GetCounter("trainer/tokens"),
        registry.GetCounter("trainer/examples"),
        registry.GetHistogram("trainer/step_seconds"),
        registry.GetGauge("trainer/last_loss"),
        registry.GetGauge("trainer/tokens_per_sec")};
  }();
  return *metrics;
}

}  // namespace

LmExample MakeInstructionExample(const text::Tokenizer& tokenizer,
                                 const std::string& prompt,
                                 const std::string& response) {
  LmExample example;
  example.tokens.push_back(text::kBosId);
  std::vector<int> prompt_ids = tokenizer.Encode(prompt);
  example.tokens.insert(example.tokens.end(), prompt_ids.begin(),
                        prompt_ids.end());
  example.loss_start = example.tokens.size();
  std::vector<int> response_ids = tokenizer.Encode(response);
  CHECK(!response_ids.empty()) << "empty response text";
  example.tokens.insert(example.tokens.end(), response_ids.begin(),
                        response_ids.end());
  example.tokens.push_back(text::kEosId);
  return example;
}

LmExample MakePlainExample(const text::Tokenizer& tokenizer,
                           const std::string& text) {
  LmExample example;
  example.tokens = tokenizer.EncodeWithSpecials(text, /*add_eos=*/true);
  example.loss_start = 0;
  return example;
}

LmTrainer::LmTrainer(const TransformerLM* lm,
                     std::vector<tensor::Tensor> trainable,
                     const Options& options)
    : lm_(lm),
      optimizer_(std::move(trainable),
                 tensor::AdamW::Options{.lr = options.lr,
                                        .weight_decay = options.weight_decay}),
      clip_norm_(options.clip_norm),
      batch_size_(options.batch_size),
      cosine_decay_(options.cosine_decay),
      min_lr_fraction_(options.min_lr_fraction),
      base_lr_(options.lr),
      on_example_(options.on_example),
      rng_(options.seed) {
  CHECK(lm != nullptr);
  CHECK_GT(batch_size_, size_t{0});
}

float LmTrainer::TrainSteps(const std::vector<LmExample>& examples,
                            size_t steps, const ForwardOptions& forward,
                            const CheckpointPolicy& policy) {
  CHECK(!examples.empty());
  OBS_SPAN("trainer/train_steps");
  uint64_t tokens_before = Metrics().tokens->Value();
  util::Stopwatch watch;
  std::vector<size_t> order(examples.size());
  size_t cursor = 0;
  std::vector<float> losses;
  losses.reserve(steps);
  size_t start_step = 0;

  if (policy.enabled() && policy.resume) {
    // Newest first; a snapshot that fails its CRC (or decodes but does not
    // belong to this run shape) is quarantined or skipped and the next
    // older one is tried. No usable snapshot -> train from scratch.
    auto snapshots = ListTrainCheckpoints(policy.dir);
    for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
      TrainState state;
      util::Status status = LoadTrainState(it->second, &state, &optimizer_);
      if (!status.ok()) {
        LOG_WARNING << "unusable snapshot " << it->second << ": "
                    << status.ToString();
        util::Status quarantine = util::QuarantineFile(it->second);
        if (!quarantine.ok()) {
          LOG_WARNING << "quarantine failed: " << quarantine.ToString();
        }
        continue;
      }
      if (state.total_steps != steps || state.order.size() != order.size() ||
          state.rng_state.empty()) {
        LOG_WARNING << "snapshot " << it->second
                    << " belongs to a different run shape; skipping";
        continue;
      }
      // LoadTrainState already validated the stream on a probe engine.
      CHECK(rng_.RestoreState(state.rng_state).ok());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<size_t>(state.order[i]);
      }
      cursor = static_cast<size_t>(state.cursor);
      losses = std::move(state.losses);
      start_step = static_cast<size_t>(state.next_step);
      obs::Lineage::Get().Record("trainer: resumed from " + it->second);
      obs::Registry::Get().GetGauge("trainer/resume_step")
          ->Set(static_cast<double>(start_step));
      obs::Registry::Get().GetCounter("trainer/resumes")->Increment();
      LOG_INFO << "resuming training from " << it->second << " (step "
               << start_step << "/" << steps << ")";
      break;
    }
  }
  if (start_step == 0) {
    std::iota(order.begin(), order.end(), 0);
    rng_.Shuffle(&order);
    cursor = 0;
  }

  const bool faults_active = util::FaultRegistry::Get().active();
  for (size_t step = start_step; step < steps; ++step) {
    if (faults_active) {
      // "trainer/step" failpoint: `crash@N` terminates the process here
      // (simulating a hard kill between optimizer steps); `fail@N` returns
      // an error we treat as a graceful interrupt request.
      util::Status fault = FAULT_POINT("trainer/step");
      if (!fault.ok()) {
        LOG_WARNING << "training interrupted at step " << step << ": "
                    << fault.ToString();
        break;
      }
    }
    std::vector<const LmExample*> batch;
    batch.reserve(batch_size_);
    for (size_t b = 0; b < batch_size_; ++b) {
      if (cursor == order.size()) {
        rng_.Shuffle(&order);
        cursor = 0;
      }
      batch.push_back(&examples[order[cursor++]]);
    }
    if (cosine_decay_ && steps > 1) {
      float progress = static_cast<float>(step) /
                       static_cast<float>(steps - 1);
      float scale = min_lr_fraction_ +
                    (1.0f - min_lr_fraction_) * 0.5f *
                        (1.0f + std::cos(progress * 3.14159265f));
      optimizer_.set_lr(base_lr_ * scale);
    }
    losses.push_back(Step(batch, forward));
    size_t done = step + 1;
    if (policy.enabled() && done % policy.every_n_steps == 0 &&
        done < steps) {
      std::error_code ec;
      std::filesystem::create_directories(policy.dir, ec);
      TrainState state;
      state.next_step = done;
      state.total_steps = steps;
      state.order.assign(order.begin(), order.end());
      state.cursor = cursor;
      state.losses = losses;
      state.rng_state = rng_.SaveState();
      std::string path = TrainCheckpointPath(policy.dir, done);
      util::Status status = SaveTrainState(path, state, optimizer_);
      if (status.ok()) {
        obs::Registry::Get()
            .GetCounter("trainer/checkpoints_written")
            ->Increment();
        RotateTrainCheckpoints(policy.dir, policy.keep_last);
      } else {
        // Degrade gracefully: a failed snapshot costs durability, not the
        // run. The atomic writer guarantees no torn file was left behind.
        LOG_WARNING << "snapshot " << path
                    << " failed: " << status.ToString();
      }
    }
  }
  optimizer_.set_lr(base_lr_);
  double elapsed = watch.ElapsedSeconds();
  if (elapsed > 0.0) {
    Metrics().tokens_per_sec->Set(
        static_cast<double>(Metrics().tokens->Value() - tokens_before) /
        elapsed);
  }
  // Report the mean over the final quarter: representative of where
  // training ended rather than where it started.
  size_t window = std::max<size_t>(1, losses.size() / 4);
  double total = 0.0;
  for (size_t i = losses.size() - window; i < losses.size(); ++i) {
    total += losses[i];
  }
  return static_cast<float>(total / static_cast<double>(window));
}

float LmTrainer::Step(const std::vector<const LmExample*>& batch,
                      const ForwardOptions& forward) {
  CHECK(!batch.empty());
  TrainerMetrics& metrics = Metrics();
  int64_t step_begin_us = obs::NowMicros();
  size_t batch_tokens = 0;
  float inv = 1.0f / static_cast<float>(batch.size());
  double total = 0.0;
  for (const LmExample* example : batch) {
    if (on_example_) on_example_(*example);
    batch_tokens += example->tokens.size();
    tensor::Tensor loss =
        lm_->NextTokenLoss(example->tokens, example->loss_start, forward);
    total += loss.item();
    tensor::MulScalar(loss, inv).Backward();
  }
  tensor::ClipGradNorm(optimizer_.params(), clip_norm_);
  optimizer_.Step();
  optimizer_.ZeroGrad();
  float mean_loss = static_cast<float>(total * inv);
  metrics.steps->Increment();
  metrics.examples->Increment(batch.size());
  metrics.tokens->Increment(batch_tokens);
  metrics.step_seconds->Record(
      static_cast<double>(obs::NowMicros() - step_begin_us) * 1e-6);
  metrics.last_loss->Set(mean_loss);
  return mean_loss;
}

}  // namespace infuserki::model
