#include "model/trainer.h"

#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::model {
namespace {

/// Trainer metrics shared by all LmTrainer instances (pretraining and every
/// method's fine-tuning phases).
struct TrainerMetrics {
  obs::Counter* steps;
  obs::Counter* tokens;
  obs::Counter* examples;
  obs::Histogram* step_seconds;
  obs::Gauge* last_loss;
  obs::Gauge* tokens_per_sec;
};

TrainerMetrics& Metrics() {
  static TrainerMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new TrainerMetrics{
        registry.GetCounter("trainer/steps"),
        registry.GetCounter("trainer/tokens"),
        registry.GetCounter("trainer/examples"),
        registry.GetHistogram("trainer/step_seconds"),
        registry.GetGauge("trainer/last_loss"),
        registry.GetGauge("trainer/tokens_per_sec")};
  }();
  return *metrics;
}

}  // namespace

LmExample MakeInstructionExample(const text::Tokenizer& tokenizer,
                                 const std::string& prompt,
                                 const std::string& response) {
  LmExample example;
  example.tokens.push_back(text::kBosId);
  std::vector<int> prompt_ids = tokenizer.Encode(prompt);
  example.tokens.insert(example.tokens.end(), prompt_ids.begin(),
                        prompt_ids.end());
  example.loss_start = example.tokens.size();
  std::vector<int> response_ids = tokenizer.Encode(response);
  CHECK(!response_ids.empty()) << "empty response text";
  example.tokens.insert(example.tokens.end(), response_ids.begin(),
                        response_ids.end());
  example.tokens.push_back(text::kEosId);
  return example;
}

LmExample MakePlainExample(const text::Tokenizer& tokenizer,
                           const std::string& text) {
  LmExample example;
  example.tokens = tokenizer.EncodeWithSpecials(text, /*add_eos=*/true);
  example.loss_start = 0;
  return example;
}

LmTrainer::LmTrainer(const TransformerLM* lm,
                     std::vector<tensor::Tensor> trainable,
                     const Options& options)
    : lm_(lm),
      optimizer_(std::move(trainable),
                 tensor::AdamW::Options{.lr = options.lr,
                                        .weight_decay = options.weight_decay}),
      clip_norm_(options.clip_norm),
      batch_size_(options.batch_size),
      cosine_decay_(options.cosine_decay),
      min_lr_fraction_(options.min_lr_fraction),
      base_lr_(options.lr),
      on_example_(options.on_example),
      rng_(options.seed) {
  CHECK(lm != nullptr);
  CHECK_GT(batch_size_, size_t{0});
}

float LmTrainer::TrainSteps(const std::vector<LmExample>& examples,
                            size_t steps, const ForwardOptions& forward) {
  CHECK(!examples.empty());
  OBS_SPAN("trainer/train_steps");
  uint64_t tokens_before = Metrics().tokens->Value();
  util::Stopwatch watch;
  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);
  size_t cursor = 0;
  std::vector<float> losses;
  losses.reserve(steps);
  for (size_t step = 0; step < steps; ++step) {
    std::vector<const LmExample*> batch;
    batch.reserve(batch_size_);
    for (size_t b = 0; b < batch_size_; ++b) {
      if (cursor == order.size()) {
        rng_.Shuffle(&order);
        cursor = 0;
      }
      batch.push_back(&examples[order[cursor++]]);
    }
    if (cosine_decay_ && steps > 1) {
      float progress = static_cast<float>(step) /
                       static_cast<float>(steps - 1);
      float scale = min_lr_fraction_ +
                    (1.0f - min_lr_fraction_) * 0.5f *
                        (1.0f + std::cos(progress * 3.14159265f));
      optimizer_.set_lr(base_lr_ * scale);
    }
    losses.push_back(Step(batch, forward));
  }
  optimizer_.set_lr(base_lr_);
  double elapsed = watch.ElapsedSeconds();
  if (elapsed > 0.0) {
    Metrics().tokens_per_sec->Set(
        static_cast<double>(Metrics().tokens->Value() - tokens_before) /
        elapsed);
  }
  // Report the mean over the final quarter: representative of where
  // training ended rather than where it started.
  size_t window = std::max<size_t>(1, losses.size() / 4);
  double total = 0.0;
  for (size_t i = losses.size() - window; i < losses.size(); ++i) {
    total += losses[i];
  }
  return static_cast<float>(total / static_cast<double>(window));
}

float LmTrainer::Step(const std::vector<const LmExample*>& batch,
                      const ForwardOptions& forward) {
  CHECK(!batch.empty());
  TrainerMetrics& metrics = Metrics();
  int64_t step_begin_us = obs::NowMicros();
  size_t batch_tokens = 0;
  float inv = 1.0f / static_cast<float>(batch.size());
  double total = 0.0;
  for (const LmExample* example : batch) {
    if (on_example_) on_example_(*example);
    batch_tokens += example->tokens.size();
    tensor::Tensor loss =
        lm_->NextTokenLoss(example->tokens, example->loss_start, forward);
    total += loss.item();
    tensor::MulScalar(loss, inv).Backward();
  }
  tensor::ClipGradNorm(optimizer_.params(), clip_norm_);
  optimizer_.Step();
  optimizer_.ZeroGrad();
  float mean_loss = static_cast<float>(total * inv);
  metrics.steps->Increment();
  metrics.examples->Increment(batch.size());
  metrics.tokens->Increment(batch_tokens);
  metrics.step_seconds->Record(
      static_cast<double>(obs::NowMicros() - step_begin_us) * 1e-6);
  metrics.last_loss->Set(mean_loss);
  return mean_loss;
}

}  // namespace infuserki::model
