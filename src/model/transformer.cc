#include "model/transformer.h"

#include <numeric>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace infuserki::model {

using tensor::Tensor;

TransformerLayer::TransformerLayer(const TransformerConfig& config,
                                   util::Rng* rng)
    : num_heads_(config.num_heads),
      norm1_weight_(Tensor::Full({config.dim}, 1.0f, /*requires_grad=*/true)),
      norm2_weight_(Tensor::Full({config.dim}, 1.0f, /*requires_grad=*/true)),
      wq_(config.dim, config.dim, rng, /*with_bias=*/false),
      wk_(config.dim, config.dim, rng, /*with_bias=*/false),
      wv_(config.dim, config.dim, rng, /*with_bias=*/false),
      wo_(config.dim, config.dim, rng, /*with_bias=*/false),
      ffn_gate_(config.dim, config.ffn_hidden, rng, /*with_bias=*/false),
      ffn_up_(config.dim, config.ffn_hidden, rng, /*with_bias=*/false),
      ffn_down_(config.ffn_hidden, config.dim, rng, /*with_bias=*/false) {
  RegisterParameter("norm1", norm1_weight_);
  RegisterParameter("norm2", norm2_weight_);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
  RegisterModule("ffn_gate", &ffn_gate_);
  RegisterModule("ffn_up", &ffn_up_);
  RegisterModule("ffn_down", &ffn_down_);
}

Tensor TransformerLayer::Forward(const Tensor& x, int layer_index,
                                 const ForwardOptions& options,
                                 LayerKv* kv) const {
  // Attention sublayer.
  Tensor attn_in = tensor::RmsNorm(x, norm1_weight_);
  Tensor q = wq_.Forward(attn_in);
  Tensor k = wk_.Forward(attn_in);
  Tensor v = wv_.Forward(attn_in);
  size_t prefix_len = 0;
  if (kv != nullptr) {
    // KV-cached path. The cache already holds prefix-tuning rows (seeded by
    // KvCache::SeedPrefix) plus one row per previously fed position; all of
    // them are visible to every new query, and the new rows are causal
    // among themselves — exactly the full-sequence mask restricted to the
    // new rows.
    if (kv->k.defined()) {
      prefix_len = kv->k.dim(0);
      k = tensor::ConcatRows(kv->k, k);
      v = tensor::ConcatRows(kv->v, v);
    }
    kv->k = k;
    kv->v = v;
  } else if (options.prefix != nullptr && options.prefix->prefix_len > 0) {
    const PrefixKv& prefix = *options.prefix;
    CHECK_LT(static_cast<size_t>(layer_index), prefix.keys.size());
    k = tensor::ConcatRows(prefix.keys[static_cast<size_t>(layer_index)], k);
    v = tensor::ConcatRows(prefix.values[static_cast<size_t>(layer_index)],
                           v);
    prefix_len = prefix.prefix_len;
  }
  Tensor attn =
      tensor::CausalSelfAttention(q, k, v, num_heads_, prefix_len);
  Tensor attn_out = wo_.Forward(attn);
  if (options.attn_hook != nullptr) {
    Tensor delta = options.attn_hook->AttnDelta(layer_index, attn_in);
    if (delta.defined()) attn_out = tensor::Add(attn_out, delta);
  }
  Tensor h = tensor::Add(x, attn_out);

  // FFN sublayer (SwiGLU). ffn_in is the paper's H_P^l.
  Tensor ffn_in = tensor::RmsNorm(h, norm2_weight_);
  if (options.trace != nullptr && options.trace->record_ffn_inputs) {
    options.trace->ffn_inputs.push_back(ffn_in.Detach());
  }
  Tensor gate = tensor::Silu(ffn_gate_.Forward(ffn_in));
  Tensor up = ffn_up_.Forward(ffn_in);
  Tensor ffn_out = ffn_down_.Forward(tensor::Mul(gate, up));
  if (options.ffn_hook != nullptr) {
    Tensor delta = options.ffn_hook->FfnDelta(layer_index, ffn_in);
    if (delta.defined()) ffn_out = tensor::Add(ffn_out, delta);
  }
  return tensor::Add(h, ffn_out);
}

Tensor TransformerLayer::ForwardBatched(
    const Tensor& x, const std::vector<size_t>& row_lens,
    const std::vector<LayerKv*>& row_kv, int layer_index,
    const PositionWiseAdapter* adapter,
    PositionWiseAdapter::ChainState* chain) const {
  CHECK_EQ(row_lens.size(), row_kv.size());
  CHECK(adapter == nullptr || chain != nullptr)
      << "batched adapter forwards need a caller-owned chain state";
  // Attention sublayer. The norm and the Q/K/V projections are
  // position-wise, so running them on the packed batch produces — row for
  // row — the same values as running each sequence alone.
  Tensor attn_in = tensor::RmsNorm(x, norm1_weight_);
  Tensor q = wq_.Forward(attn_in);
  Tensor k = wk_.Forward(attn_in);
  Tensor v = wv_.Forward(attn_in);
  // Attention is the only sublayer that mixes positions, so it runs per
  // row inside one ragged kernel call: each row's cached K/V page is
  // extended with its new rows, then CausalSelfAttentionRagged attends
  // every row against its own pages (cached rows as an always-visible
  // prefix) with per-row arithmetic identical to the single-sequence
  // kernel, fanning rows out over the global pool.
  std::vector<size_t> row_offsets(row_lens.size());
  size_t offset = 0;
  for (size_t r = 0; r < row_lens.size(); ++r) {
    CHECK_GT(row_lens[r], size_t{0});
    row_offsets[r] = offset;
    offset += row_lens[r];
  }
  CHECK_EQ(offset, x.dim(0));
  std::vector<Tensor> keys(row_lens.size());
  std::vector<Tensor> values(row_lens.size());
  for (size_t r = 0; r < row_lens.size(); ++r) {
    Tensor k_r = tensor::SliceRows(k, row_offsets[r], row_lens[r]);
    Tensor v_r = tensor::SliceRows(v, row_offsets[r], row_lens[r]);
    LayerKv* kv = row_kv[r];
    if (kv->k.defined()) {
      k_r = tensor::ConcatRows(kv->k, k_r);
      v_r = tensor::ConcatRows(kv->v, v_r);
    }
    kv->k = k_r;
    kv->v = v_r;
    keys[r] = k_r;
    values[r] = v_r;
  }
  Tensor attn =
      tensor::CausalSelfAttentionRagged(q, keys, values, row_lens, num_heads_);
  Tensor attn_out = wo_.Forward(attn);
  if (adapter != nullptr &&
      adapter->attachment() == AdapterAttachment::kAttention) {
    Tensor delta = adapter->Delta(layer_index, attn_in, chain);
    if (delta.defined()) attn_out = tensor::Add(attn_out, delta);
  }
  Tensor h = tensor::Add(x, attn_out);

  // FFN sublayer (SwiGLU) — position-wise, packed.
  Tensor ffn_in = tensor::RmsNorm(h, norm2_weight_);
  Tensor gate = tensor::Silu(ffn_gate_.Forward(ffn_in));
  Tensor up = ffn_up_.Forward(ffn_in);
  Tensor ffn_out = ffn_down_.Forward(tensor::Mul(gate, up));
  if (adapter != nullptr && adapter->attachment() == AdapterAttachment::kFfn) {
    Tensor delta = adapter->Delta(layer_index, ffn_in, chain);
    if (delta.defined()) ffn_out = tensor::Add(ffn_out, delta);
  }
  return tensor::Add(h, ffn_out);
}

TransformerLM::TransformerLM(const TransformerConfig& config, util::Rng* rng)
    : config_(config),
      token_emb_(config.vocab_size, config.dim, rng),
      pos_emb_(config.max_seq_len, config.dim, rng),
      final_norm_weight_(
          Tensor::Full({config.dim}, 1.0f, /*requires_grad=*/true)) {
  CHECK_GT(config.vocab_size, size_t{0}) << "vocab_size must be set";
  CHECK_EQ(config.dim % config.num_heads, size_t{0});
  RegisterModule("token_emb", &token_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterParameter("final_norm", final_norm_weight_);
  layers_.reserve(config.num_layers);
  for (size_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<TransformerLayer>(config, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

Tensor TransformerLM::Hidden(const std::vector<int>& tokens,
                             const ForwardOptions& options) const {
  CHECK(!tokens.empty());
  CHECK_LE(tokens.size(), config_.max_seq_len)
      << "sequence exceeds max_seq_len";
  if (options.ffn_hook != nullptr) options.ffn_hook->BeginForward();
  if (options.attn_hook != nullptr) options.attn_hook->BeginForward();
  if (options.trace != nullptr) {
    options.trace->ffn_inputs.clear();
    options.trace->layer_outputs.clear();
  }
  std::vector<int> positions(tokens.size());
  std::iota(positions.begin(), positions.end(), 0);
  Tensor x = tensor::Add(token_emb_.Forward(tokens),
                         pos_emb_.Forward(positions));
  for (size_t l = 0; l < layers_.size(); ++l) {
    x = layers_[l]->Forward(x, static_cast<int>(l), options);
    if (options.trace != nullptr && options.trace->record_layer_outputs) {
      options.trace->layer_outputs.push_back(x.Detach());
    }
  }
  return tensor::RmsNorm(x, final_norm_weight_);
}

Tensor TransformerLM::Logits(const std::vector<int>& tokens,
                             const ForwardOptions& options) const {
  Tensor h = Hidden(tokens, options);
  // Tied output head.
  return tensor::MatmulNT(h, token_emb_.table());
}

Tensor TransformerLM::HiddenIncremental(const std::vector<int>& tokens,
                                        KvCache* cache,
                                        const ForwardOptions& options) const {
  CHECK(cache != nullptr);
  CHECK(!tokens.empty());
  CHECK(!tensor::GradEnabled())
      << "the incremental path is inference-only (run under NoGradGuard)";
  CHECK(options.trace == nullptr)
      << "trace recording is not supported on the incremental path";
  CHECK(!HasSequenceStatefulHook(options))
      << "sequence-stateful hooks cannot take the incremental path";
  CHECK_EQ(cache->num_layers(), layers_.size());
  size_t start = cache->tokens();
  CHECK_LE(start + tokens.size(), config_.max_seq_len)
      << "sequence exceeds max_seq_len";
  if (!cache->seeded()) cache->SeedPrefix(options.prefix);
  if (options.ffn_hook != nullptr) options.ffn_hook->BeginExtend(start);
  if (options.attn_hook != nullptr) options.attn_hook->BeginExtend(start);
  std::vector<int> positions(tokens.size());
  std::iota(positions.begin(), positions.end(), static_cast<int>(start));
  Tensor x = tensor::Add(token_emb_.Forward(tokens),
                         pos_emb_.Forward(positions));
  for (size_t l = 0; l < layers_.size(); ++l) {
    x = layers_[l]->Forward(x, static_cast<int>(l), options,
                            cache->layer(l));
  }
  cache->AdvanceTokens(tokens.size());
  return tensor::RmsNorm(x, final_norm_weight_);
}

Tensor TransformerLM::LogitsIncremental(const std::vector<int>& tokens,
                                        KvCache* cache,
                                        const ForwardOptions& options) const {
  Tensor h = HiddenIncremental(tokens, cache, options);
  return tensor::MatmulNT(h, token_emb_.table());
}

Tensor TransformerLM::HiddenBatched(const std::vector<BatchRow>& rows,
                                    KvCache* cache,
                                    const PositionWiseAdapter* adapter) const {
  CHECK(cache != nullptr);
  CHECK(!rows.empty());
  CHECK(adapter == nullptr || adapter->model_dim() == config_.dim)
      << "adapter model_dim does not match this model";
  CHECK(!tensor::GradEnabled())
      << "the batched path is inference-only (run under NoGradGuard)";
  CHECK_EQ(cache->num_layers(), layers_.size());
  std::vector<int> packed_tokens;
  std::vector<int> packed_positions;
  std::vector<size_t> row_lens;
  row_lens.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    const BatchRow& row = rows[r];
    CHECK(row.tokens != nullptr && !row.tokens->empty());
    CHECK_LT(row.slot, cache->num_slots());
    for (size_t other = 0; other < r; ++other) {
      CHECK(rows[other].slot != row.slot)
          << "batch rows must use distinct KV slots";
    }
    size_t start = cache->tokens(row.slot);
    CHECK_LE(start + row.tokens->size(), config_.max_seq_len)
        << "sequence exceeds max_seq_len";
    if (!cache->seeded(row.slot)) cache->SeedPrefix(nullptr, row.slot);
    CHECK_EQ(cache->prefix_rows(row.slot), size_t{0})
        << "prefix tuning is not supported on the batched path";
    for (size_t i = 0; i < row.tokens->size(); ++i) {
      packed_tokens.push_back((*row.tokens)[i]);
      packed_positions.push_back(static_cast<int>(start + i));
    }
    row_lens.push_back(row.tokens->size());
  }
  Tensor x = tensor::Add(token_emb_.Forward(packed_tokens),
                         pos_emb_.Forward(packed_positions));
  std::vector<LayerKv*> row_kv(rows.size());
  // One chain state spans all layers of this forward (the adapter chain is
  // row-wise over the packed batch, so a single [sum_T, D] chain tensor is
  // exactly the per-row chains stacked in batch order).
  PositionWiseAdapter::ChainState chain;
  for (size_t l = 0; l < layers_.size(); ++l) {
    for (size_t r = 0; r < rows.size(); ++r) {
      row_kv[r] = cache->layer(l, rows[r].slot);
    }
    x = layers_[l]->ForwardBatched(x, row_lens, row_kv, static_cast<int>(l),
                                   adapter, &chain);
  }
  for (const BatchRow& row : rows) {
    cache->AdvanceTokens(row.tokens->size(), row.slot);
  }
  return tensor::RmsNorm(x, final_norm_weight_);
}

Tensor TransformerLM::LogitsBatched(const std::vector<BatchRow>& rows,
                                    KvCache* cache,
                                    const PositionWiseAdapter* adapter) const {
  Tensor h = HiddenBatched(rows, cache, adapter);
  return tensor::MatmulNT(h, token_emb_.table());
}

Tensor TransformerLM::NextTokenLoss(const std::vector<int>& tokens,
                                    size_t loss_start,
                                    const ForwardOptions& options) const {
  CHECK_GE(tokens.size(), size_t{2}) << "need at least two tokens";
  std::vector<int> inputs(tokens.begin(), tokens.end() - 1);
  std::vector<int> targets(tokens.begin() + 1, tokens.end());
  for (size_t i = 0; i + 1 < loss_start && i < targets.size(); ++i) {
    targets[i] = -1;  // ignored by CrossEntropy
  }
  Tensor logits = Logits(inputs, options);
  return tensor::CrossEntropy(logits, targets, /*ignore_index=*/-1);
}

}  // namespace infuserki::model
