#ifndef INFUSERKI_MODEL_TRAIN_STATE_H_
#define INFUSERKI_MODEL_TRAIN_STATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/optimizer.h"
#include "util/status.h"

namespace infuserki::model {

/// Where, how often, and how durably a training loop snapshots itself.
/// Default-constructed policy disables checkpointing entirely, so existing
/// call sites are unaffected.
struct CheckpointPolicy {
  /// Directory for snapshots; created on first save. Empty disables.
  std::string dir;
  /// Snapshot after every N completed optimizer steps. 0 disables.
  size_t every_n_steps = 0;
  /// How many most-recent snapshots survive rotation (minimum 1).
  size_t keep_last = 2;
  /// Whether TrainSteps may resume from the newest valid snapshot in `dir`.
  bool resume = true;

  bool enabled() const { return !dir.empty() && every_n_steps > 0; }
};

/// Everything LmTrainer::TrainSteps needs — beyond the optimizer state — to
/// continue a run bit-exactly: the schedule position, the shuffled visit
/// order, the epoch cursor, the per-step loss history (the return value is
/// a window over it), and the serialized RNG stream.
struct TrainState {
  /// First step index the resumed loop should execute.
  uint64_t next_step = 0;
  /// Horizon the snapshot was taken under; resuming into a run with a
  /// different total is rejected (the cosine schedule would diverge).
  uint64_t total_steps = 0;
  std::vector<uint64_t> order;
  uint64_t cursor = 0;
  std::vector<float> losses;
  std::string rng_state;
};

/// Serializes `state` plus the optimizer (weights, moments, step counter)
/// into the framed v2 format at `path`, atomically (failpoint
/// "train_state/write"). The file is either fully present or absent.
util::Status SaveTrainState(const std::string& path, const TrainState& state,
                            const tensor::AdamW& optimizer);

/// Restores a snapshot written by SaveTrainState. Transactional: the frame
/// CRC, every field, and the RNG stream are validated before the optimizer
/// (and, through shared tensor storage, the model) is touched. On any error
/// `*state` and `*optimizer` are unchanged.
util::Status LoadTrainState(const std::string& path, TrainState* state,
                            tensor::AdamW* optimizer);

/// Canonical snapshot path for a given step: `<dir>/step_<%08u>.ckpt`.
std::string TrainCheckpointPath(const std::string& dir, uint64_t step);

/// Snapshots present in `dir`, sorted by ascending step. Ignores temp and
/// quarantined (".corrupt") files. Missing directory -> empty list.
std::vector<std::pair<uint64_t, std::string>> ListTrainCheckpoints(
    const std::string& dir);

/// Deletes all but the newest `keep_last` snapshots in `dir`.
void RotateTrainCheckpoints(const std::string& dir, size_t keep_last);

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_TRAIN_STATE_H_
