#ifndef INFUSERKI_MODEL_SERVE_ADAPTER_H_
#define INFUSERKI_MODEL_SERVE_ADAPTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/hooks.h"
#include "tensor/tensor.h"

namespace infuserki::model {

/// Which sublayer the adapter chain attaches to (the serving-side mirror of
/// core::AdapterPlacement — model/ cannot depend on core/).
enum class AdapterAttachment : uint32_t {
  kFfn = 0,
  kAttention = 1,
};

/// Immutable position-wise knowledge-adapter weights for serving.
///
/// This is the inference-side export of core::KnowledgeAdapterStack in its
/// ungated (w/o-Ro, use_infuser = false) form: per adapted layer a
/// bottleneck down/up projection pair, chained across layers through the
/// caller-owned ChainState exactly like the training-side stack chains
/// adapter outputs (DESIGN.md §12). The gated form pools Mean(H_P^l) over
/// the whole sequence and therefore cannot take the KV-cached or batched
/// paths; exports of gated stacks are rejected at the source.
///
/// All members are set at construction and never mutated, so one instance
/// may be shared freely across threads (the swap protocol publishes
/// shared_ptr<const PositionWiseAdapter> snapshots).
class PositionWiseAdapter {
 public:
  /// Deep-copied weights for one adapted layer. Tensors are detached
  /// (requires_grad = false) and owned exclusively by this adapter.
  struct LayerWeights {
    int layer = 0;               // 0-based transformer layer index
    tensor::Tensor down_weight;  // [bottleneck, model_dim]
    tensor::Tensor down_bias;    // [bottleneck]
    tensor::Tensor up_weight;    // [model_dim, bottleneck]
    tensor::Tensor up_bias;      // [model_dim]
  };

  /// Cross-layer chain state for ONE forward pass. The chain tensor is
  /// [T, D] over the rows of the current forward; every op that touches it
  /// is row-wise, so a packed ragged batch threads one ChainState for all
  /// rows and stays bit-exact per row with the single-sequence pass.
  struct ChainState {
    tensor::Tensor chain;
  };

  /// `layers` must be sorted by ascending layer index with consistent
  /// shapes; CHECK-fails otherwise (registry loads validate before
  /// constructing).
  PositionWiseAdapter(size_t model_dim, size_t bottleneck,
                      AdapterAttachment attachment,
                      std::vector<LayerWeights> layers);

  size_t model_dim() const { return model_dim_; }
  size_t bottleneck() const { return bottleneck_; }
  AdapterAttachment attachment() const { return attachment_; }
  const std::vector<LayerWeights>& layers() const { return layers_; }
  bool IsAdapted(int layer) const;

  /// Adapter delta for `layer` given the sublayer input [T, D]; returns an
  /// undefined Tensor for unadapted layers (chain state untouched, exactly
  /// like the training stack skipping a layer). Arithmetic is
  /// op-for-op identical to KnowledgeAdapterStack's ungated Delta:
  ///   combined = chain.defined() ? input + chain : input
  ///   hidden   = Relu(combined @ W_down^T + b_down)
  ///   chain    = hidden @ W_up^T + b_up        (also the returned delta)
  tensor::Tensor Delta(int layer, const tensor::Tensor& sublayer_input,
                       ChainState* state) const;

 private:
  size_t model_dim_;
  size_t bottleneck_;
  AdapterAttachment attachment_;
  std::vector<LayerWeights> layers_;
  std::vector<int> layer_to_slot_;  // dense layer -> layers_ index, -1 = none
};

/// FfnHook/AttnHook bridge so the single-sequence paths (full recompute,
/// DecodeSession, GreedyDecode references) run a PositionWiseAdapter
/// through the ordinary ForwardOptions plumbing. Position-wise
/// (SequenceStateful() stays false), so the generation layer keeps the
/// fast KV-cached route. Holds per-forward chain state: one hook instance
/// per concurrent forward, not shared across threads.
class PositionWiseAdapterHook : public FfnHook, public AttnHook {
 public:
  /// `adapter` may be nullptr (base model: no deltas, empty Options()).
  /// Not owned; must outlive the hook.
  explicit PositionWiseAdapterHook(const PositionWiseAdapter* adapter)
      : adapter_(adapter) {}

  void BeginForward() override { state_.chain = tensor::Tensor(); }

  tensor::Tensor FfnDelta(int layer, const tensor::Tensor& ffn_input) override;
  tensor::Tensor AttnDelta(int layer,
                           const tensor::Tensor& attn_input) override;

  /// ForwardOptions wired to this hook on the attachment's sublayer
  /// (empty options when constructed with a null adapter).
  ForwardOptions Options();

 private:
  const PositionWiseAdapter* adapter_;
  PositionWiseAdapter::ChainState state_;
};

}  // namespace infuserki::model

#endif  // INFUSERKI_MODEL_SERVE_ADAPTER_H_
