#include "kg/synth.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace infuserki::kg {
namespace {

// ---------------------------------------------------------------------------
// Name generation
// ---------------------------------------------------------------------------

const char* const kMedPrefix[] = {
    "cardio", "neuro",  "osteo",  "derma",  "gastro", "hepato", "nephro",
    "pulmo",  "angio",  "myelo",  "arthro", "cranio", "broncho", "entero",
    "hemato", "lipo",   "fibro",  "chondro", "masto",  "cysto",  "rhino",
    "oto",    "ophthal", "glosso", "thoraco", "spleno", "adeno",  "colo",
};

const char* const kMedStem[] = {
    "vas",  "neur", "derm", "fleb", "tens", "plex",  "cort", "gland",
    "duct", "sept", "vill", "foll", "nod",  "trab",  "lam",  "stri",
};

const char* const kMedSuffix[] = {
    "itis",   "osis",   "pathia", "plasia", "trophy", "ectomy", "otomy",
    "plasty", "graphy", "scopy",  "algia",  "emia",   "oma",    "genesis",
    "lysis",  "rrhea",  "stasis", "ptosis", "sclerosis", "megaly",
};

const char* const kMedQualifier[] = {
    "disorder", "finding", "procedure", "syndrome", "structure", "morphology",
};

const char* const kFirstNames[] = {
    "alan",  "bruno",  "clara",  "dario", "elena", "felix",  "greta",
    "hugo",  "irene",  "jonas",  "karla", "lukas", "marta",  "nils",
    "olga",  "pablo",  "quinn",  "rosa",  "stefan", "tessa", "umar",
    "vera",  "walter", "ximena", "yann",  "zelda",
};

const char* const kLastNames[] = {
    "abrams",   "bergman", "castell", "dunmore", "eastwick", "farrow",
    "goldman",  "harlow",  "ingram",  "jansen",  "kessler",  "lindqvist",
    "morrow",   "novak",   "ostrom",  "pearce",  "quintero", "renshaw",
    "sorensen", "thatcher", "ulrich",  "vance",   "whitfield", "yarrow",
};

const char* const kMovieAdj[] = {
    "silent",  "crimson", "broken",  "golden", "hidden", "frozen",
    "burning", "lonely",  "endless", "savage", "gentle", "hollow",
    "velvet",  "shattered", "winding", "distant", "pale", "electric",
};

const char* const kMovieNoun[] = {
    "harbor", "empire",  "garden",  "voyage",  "shadow", "river",
    "crown",  "orchard", "lantern", "horizon", "meadow", "fortress",
    "mirror", "carnival", "station", "compass", "summit", "archive",
};

const char* const kLanguages[] = {
    "english", "french", "spanish", "german", "italian",
    "japanese", "korean", "hindi",  "swedish", "portuguese",
};

const char* const kGenres[] = {
    "drama",    "comedy", "thriller", "horror",  "romance", "western",
    "musical",  "mystery", "adventure", "animation", "crime", "fantasy",
};

const char* const kTags[] = {
    "heist",     "courtroom", "roadtrip",  "dystopia",  "biopic",
    "noir",      "slapstick", "espionage", "wilderness", "haunting",
    "underdog",  "betrayal",  "redemption", "timeloop",  "smalltown",
    "seafaring", "backstage", "frontier",  "conspiracy", "homecoming",
};

const char* const kVoteLevels[] = {
    "famous", "popular", "acclaimed", "obscure", "cult",
};

template <size_t N>
const char* Pick(const char* const (&bank)[N], util::Rng* rng) {
  return bank[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(N) - 1))];
}

/// Draws a unique pseudo-medical concept name, e.g.
/// "cardiovasitis disorder" or "neuroplasia".
std::string UniqueMedicalName(std::unordered_set<std::string>* used,
                              util::Rng* rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name = std::string(Pick(kMedPrefix, rng)) +
                       Pick(kMedStem, rng) + Pick(kMedSuffix, rng);
    if (rng->Bernoulli(0.4)) {
      name += std::string(" ") + Pick(kMedQualifier, rng);
    }
    if (rng->Bernoulli(0.15)) {
      name += " type " + std::to_string(rng->UniformInt(1, 9));
    }
    if (used->insert(name).second) return name;
  }
  // Collision fallback: append a unique ordinal.
  std::string name;
  do {
    name = std::string(Pick(kMedPrefix, rng)) + Pick(kMedStem, rng) +
           Pick(kMedSuffix, rng) + " variant " +
           std::to_string(used->size());
  } while (!used->insert(name).second);
  return name;
}

std::string UniquePersonName(std::unordered_set<std::string>* used,
                             util::Rng* rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name =
        std::string(Pick(kFirstNames, rng)) + " " + Pick(kLastNames, rng);
    if (used->insert(name).second) return name;
  }
  std::string name;
  do {
    name = std::string(Pick(kFirstNames, rng)) + " " +
           Pick(kLastNames, rng) + " " +
           std::to_string(used->size());
  } while (!used->insert(name).second);
  return name;
}

std::string UniqueMovieName(std::unordered_set<std::string>* used,
                            util::Rng* rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name =
        std::string("the ") + Pick(kMovieAdj, rng) + " " +
        Pick(kMovieNoun, rng);
    if (rng->Bernoulli(0.2)) {
      name += " " + std::to_string(rng->UniformInt(2, 4));  // sequels
    }
    if (used->insert(name).second) return name;
  }
  std::string name;
  do {
    name = std::string("the ") + Pick(kMovieAdj, rng) + " " +
           Pick(kMovieNoun, rng) + " " + std::to_string(used->size());
  } while (!used->insert(name).second);
  return name;
}

struct UmlsRelationSpec {
  const char* name;
  const char* surface;
};

const UmlsRelationSpec kUmlsRelations[] = {
    {"has_finding_site", "finding site"},
    {"treats", "treatment target"},
    {"causes", "caused condition"},
    {"prevents", "prevented condition"},
    {"diagnoses", "diagnosed condition"},
    {"associated_with", "associated condition"},
    {"part_of", "parent structure"},
    {"has_symptom", "symptom"},
    {"contraindicates", "contraindicated condition"},
    {"interacts_with", "interacting agent"},
    {"located_in", "anatomical location"},
    {"derives_from", "source tissue"},
    {"measures", "measured quantity"},
    {"regulates", "regulated process"},
    {"disrupts", "disrupted process"},
    {"produces", "produced substance"},
    {"carries_risk_of", "associated risk"},
    {"manifests_as", "manifestation"},
    {"occurs_in", "affected population"},
    {"affects", "affected function"},
    {"co_occurs_with", "co occurring condition"},
    {"method_of", "parent method"},
    {"uses_substance", "active substance"},
    {"has_stage", "clinical stage"},
};

}  // namespace

KnowledgeGraph SyntheticUmls(const SynthOptions& options) {
  CHECK_GE(options.num_triplets, size_t{24});
  util::Rng rng(options.seed);
  KnowledgeGraph kg;
  std::unordered_set<std::string> used_names;

  constexpr size_t kNumRelations =
      sizeof(kUmlsRelations) / sizeof(kUmlsRelations[0]);
  std::vector<int> relation_ids;
  relation_ids.reserve(kNumRelations);
  for (const UmlsRelationSpec& spec : kUmlsRelations) {
    relation_ids.push_back(kg.AddRelation(spec.name, spec.surface));
  }

  // Per-relation typed tail pools: large enough for edit-distance distractor
  // selection to be meaningful, small enough that pools are reused across
  // triplets (so "known" distractors recur and the LM can learn them).
  size_t pool_size = std::max<size_t>(
      8, options.num_triplets / kNumRelations / 3);
  pool_size = std::min<size_t>(pool_size, 64);
  std::vector<std::vector<int>> tails(kNumRelations);
  for (size_t r = 0; r < kNumRelations; ++r) {
    for (size_t i = 0; i < pool_size; ++i) {
      tails[r].push_back(kg.AddEntity(UniqueMedicalName(&used_names, &rng)));
    }
  }

  // Head concepts: roughly one head per two triplets, so most heads carry a
  // couple of facts (as in real UMLS samples).
  size_t num_heads = std::max<size_t>(kNumRelations,
                                      options.num_triplets / 2);
  std::vector<int> heads;
  heads.reserve(num_heads);
  for (size_t i = 0; i < num_heads; ++i) {
    heads.push_back(kg.AddEntity(UniqueMedicalName(&used_names, &rng)));
  }

  size_t added = 0;
  size_t attempts = 0;
  while (added < options.num_triplets &&
         attempts < options.num_triplets * 50) {
    ++attempts;
    size_t r = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kNumRelations) - 1));
    int head = rng.Choice(heads);
    // Concept-to-concept edges create 2-hop chains when enabled.
    bool chain_edge = options.chain_fraction > 0.0 &&
                      rng.Bernoulli(options.chain_fraction);
    int tail = chain_edge ? rng.Choice(heads) : rng.Choice(tails[r]);
    if (tail == head) continue;
    if (kg.AddTriplet(head, relation_ids[r], tail).ok()) ++added;
  }
  CHECK_EQ(added, options.num_triplets)
      << "SyntheticUmls could not place all triplets";
  return kg;
}

KnowledgeGraph SyntheticMetaQa(const SynthOptions& options) {
  CHECK_GE(options.num_triplets, size_t{9});
  util::Rng rng(options.seed);
  KnowledgeGraph kg;
  std::unordered_set<std::string> used_names;

  const int rel_directed = kg.AddRelation("directed_by", "director");
  const int rel_written = kg.AddRelation("written_by", "writer");
  const int rel_starred = kg.AddRelation("starred_actors", "starring actor");
  const int rel_year = kg.AddRelation("release_year", "release year");
  const int rel_language = kg.AddRelation("in_language", "language");
  const int rel_genre = kg.AddRelation("has_genre", "genre");
  const int rel_tags = kg.AddRelation("has_tags", "tag");
  const int rel_rating = kg.AddRelation("has_imdb_rating", "imdb rating");
  const int rel_votes = kg.AddRelation("has_imdb_votes", "vote level");

  // People pools (directors/writers/actors overlap in real MetaQA; keep
  // them disjoint here so tail pools stay typed).
  auto make_people = [&](size_t n) {
    std::vector<int> ids;
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(kg.AddEntity(UniquePersonName(&used_names, &rng)));
    }
    return ids;
  };
  size_t people_pool = std::max<size_t>(10, options.num_triplets / 60);
  std::vector<int> directors = make_people(people_pool);
  std::vector<int> writers = make_people(people_pool);
  std::vector<int> actors = make_people(people_pool * 2);

  std::vector<int> years;
  for (int y = 1950; y <= 2015; y += 5) {
    years.push_back(kg.AddEntity(std::to_string(y)));
  }
  std::vector<int> languages, genres, tags, ratings, votes;
  for (const char* v : kLanguages) languages.push_back(kg.AddEntity(v));
  for (const char* v : kGenres) genres.push_back(kg.AddEntity(v));
  for (const char* v : kTags) tags.push_back(kg.AddEntity(v));
  for (int r = 3; r <= 9; ++r) {
    ratings.push_back(kg.AddEntity("rated " + std::to_string(r)));
  }
  for (const char* v : kVoteLevels) votes.push_back(kg.AddEntity(v));

  // Each movie contributes up to nine facts; create enough movies.
  size_t num_movies = options.num_triplets / 6 + 2;
  std::vector<int> movies;
  for (size_t i = 0; i < num_movies; ++i) {
    movies.push_back(kg.AddEntity(UniqueMovieName(&used_names, &rng)));
  }

  struct Slot {
    int relation;
    const std::vector<int>* pool;
  };
  size_t added = 0;
  for (int movie : movies) {
    if (added >= options.num_triplets) break;
    const Slot slots[] = {
        {rel_directed, &directors}, {rel_written, &writers},
        {rel_starred, &actors},     {rel_year, &years},
        {rel_language, &languages}, {rel_genre, &genres},
        {rel_tags, &tags},          {rel_rating, &ratings},
        {rel_votes, &votes},
    };
    for (const Slot& slot : slots) {
      if (added >= options.num_triplets) break;
      int tail = rng.Choice(*slot.pool);
      if (kg.AddTriplet(movie, slot.relation, tail).ok()) ++added;
    }
  }
  CHECK_EQ(added, options.num_triplets)
      << "SyntheticMetaQa could not place all triplets";
  return kg;
}

}  // namespace infuserki::kg
