#include "kg/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace infuserki::kg {
namespace {

// Framed TSV (v2): "#ikgtsv2\t<payload line count>" header, payload lines,
// "#crc32\t<8 hex>" trailer over the payload bytes. Still a grep-able text
// file, but truncation, appended junk, and bit flips are all detectable.
constexpr char kFrameHeaderTag[] = "#ikgtsv2";
constexpr char kFrameTrailerTag[] = "#crc32";

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

util::Status ParseLine(const std::string& path, size_t line_number,
                       const std::string& raw_line, KnowledgeGraph* kg) {
  // Tolerate CRLF files (the CRC, when framed, is verified over the raw
  // bytes before parsing; trimming here only affects field values).
  std::string line = raw_line;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  auto error_at = [&](const std::string& message) {
    return util::Status::InvalidArgument(
        path + ":" + std::to_string(line_number) + ": " + message);
  };
  // Garbage-line guards: a control byte (truncated write, binary junk
  // spliced into the payload) or an empty field would otherwise mint
  // nonsense entities silently instead of failing the load.
  for (char c : line) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (byte < 0x20 && c != '\t') {
      return error_at("control byte in line (corrupt or binary data)");
    }
  }
  std::vector<std::string> fields = SplitTabs(line);
  if (fields[0] == "#relation") {
    if (fields.size() != 3 || fields[1].empty()) {
      return error_at("malformed relation header");
    }
    kg->AddRelation(fields[1], fields[2]);
    return util::Status::OK();
  }
  if (fields.size() != 3) {
    return error_at("expected head\\trelation\\ttail, got " +
                    std::to_string(fields.size()) + " fields");
  }
  if (fields[0].empty() || fields[1].empty() || fields[2].empty()) {
    return error_at("empty field in triple");
  }
  if (static_cast<int64_t>(kg->num_entities()) + 2 >
      KnowledgeGraph::kMaxEntities) {
    return error_at("entity count exceeds the packed-key ceiling (" +
                    std::to_string(KnowledgeGraph::kMaxEntities) + ")");
  }
  int head = kg->AddEntity(fields[0]);
  int relation = kg->FindRelation(fields[1]);
  if (relation < 0) relation = kg->AddRelation(fields[1], fields[1]);
  int tail = kg->AddEntity(fields[2]);
  util::Status status = kg->AddTriplet(head, relation, tail);
  if (!status.ok()) {
    return error_at(status.message());
  }
  return util::Status::OK();
}

}  // namespace

util::Status SaveTsv(const KnowledgeGraph& kg, const std::string& path) {
  std::ostringstream payload;
  size_t payload_lines = 0;
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    const Relation& relation = kg.relation(static_cast<int>(r));
    payload << "#relation\t" << relation.name << "\t" << relation.surface
            << "\n";
    ++payload_lines;
  }
  for (const Triplet& triplet : kg.triplets()) {
    payload << kg.entity(triplet.head).name << "\t"
            << kg.relation(triplet.relation).name << "\t"
            << kg.entity(triplet.tail).name << "\n";
    ++payload_lines;
  }
  std::string body = payload.str();
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", util::Crc32(body));
  std::string contents = std::string(kFrameHeaderTag) + "\t" +
                         std::to_string(payload_lines) + "\n" + body +
                         kFrameTrailerTag + "\t" + crc_hex + "\n";
  return util::WriteFileAtomic(path, contents, "kg/save");
}

util::StatusOr<KnowledgeGraph> LoadTsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  if (contents.empty()) {
    return util::Status::DataLoss("empty KG file " + path);
  }

  // Split into lines, preserving the exact payload bytes for the CRC.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < contents.size()) {
    size_t end = contents.find('\n', start);
    if (end == std::string::npos) end = contents.size();
    lines.push_back(contents.substr(start, end - start));
    start = end + 1;
  }
  if (!lines.empty() && lines.back().empty()) lines.pop_back();

  size_t first_payload = 0;
  size_t end_payload = lines.size();
  bool framed = !lines.empty() && SplitTabs(lines[0])[0] == kFrameHeaderTag;
  if (framed) {
    std::vector<std::string> header = SplitTabs(lines[0]);
    unsigned long long declared = 0;
    char trailer_char = '\0';
    if (header.size() != 2 ||
        std::sscanf(header[1].c_str(), "%llu%c", &declared, &trailer_char) !=
            1) {
      return util::Status::DataLoss("malformed frame header in " + path);
    }
    if (lines.size() < 2 ||
        SplitTabs(lines.back())[0] != kFrameTrailerTag) {
      return util::Status::DataLoss("missing CRC trailer in " + path);
    }
    std::vector<std::string> trailer = SplitTabs(lines.back());
    if (trailer.size() != 2 || trailer[1].size() != 8 ||
        trailer[1].find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
      return util::Status::DataLoss("malformed CRC trailer in " + path);
    }
    first_payload = 1;
    end_payload = lines.size() - 1;
    if (end_payload - first_payload != declared) {
      return util::Status::DataLoss(
          "KG file " + path + " declares " + std::to_string(declared) +
          " lines but has " +
          std::to_string(end_payload - first_payload));
    }
    std::string body;
    for (size_t i = first_payload; i < end_payload; ++i) {
      body += lines[i];
      body += '\n';
    }
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", util::Crc32(body));
    if (trailer[1] != crc_hex) {
      return util::Status::DataLoss("CRC mismatch in " + path);
    }
  }

  KnowledgeGraph kg;
  for (size_t i = first_payload; i < end_payload; ++i) {
    if (lines[i].empty()) continue;
    RETURN_IF_ERROR(ParseLine(path, i + 1, lines[i], &kg));
  }
  return kg;
}

}  // namespace infuserki::kg
