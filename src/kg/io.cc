#include "kg/io.h"

#include <fstream>
#include <vector>

#include "util/string_util.h"

namespace infuserki::kg {
namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

}  // namespace

util::Status SaveTsv(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::Internal("cannot open " + path);
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    const Relation& relation = kg.relation(static_cast<int>(r));
    out << "#relation\t" << relation.name << "\t" << relation.surface
        << "\n";
  }
  for (const Triplet& triplet : kg.triplets()) {
    out << kg.entity(triplet.head).name << "\t"
        << kg.relation(triplet.relation).name << "\t"
        << kg.entity(triplet.tail).name << "\n";
  }
  out.flush();
  if (!out) return util::Status::DataLoss("short write to " + path);
  return util::Status::OK();
}

util::StatusOr<KnowledgeGraph> LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  KnowledgeGraph kg;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitTabs(line);
    if (fields[0] == "#relation") {
      if (fields.size() != 3) {
        return util::Status::InvalidArgument(
            path + ":" + std::to_string(line_number) +
            ": malformed relation header");
      }
      kg.AddRelation(fields[1], fields[2]);
      continue;
    }
    if (fields.size() != 3) {
      return util::Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": expected head\\trelation\\ttail");
    }
    int head = kg.AddEntity(fields[0]);
    int relation = kg.FindRelation(fields[1]);
    if (relation < 0) relation = kg.AddRelation(fields[1], fields[1]);
    int tail = kg.AddEntity(fields[2]);
    util::Status status = kg.AddTriplet(head, relation, tail);
    if (!status.ok()) {
      return util::Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": " +
          status.message());
    }
  }
  return kg;
}

}  // namespace infuserki::kg
