#include "kg/dataset.h"

#include "util/logging.h"

namespace infuserki::kg {

DatasetBuilder::DatasetBuilder(const KnowledgeGraph* kg,
                               const TemplateEngine* templates)
    : kg_(kg), templates_(templates), mcq_builder_(kg, templates) {}

std::vector<QaSample> DatasetBuilder::BuildQa(
    const std::vector<size_t>& triplet_indices, int template_id,
    util::Rng* rng) const {
  std::vector<QaSample> out;
  out.reserve(triplet_indices.size());
  for (size_t index : triplet_indices) {
    QaSample sample;
    sample.triplet_index = index;
    sample.template_id = template_id;
    sample.mcq = mcq_builder_.Build(index, template_id, rng);
    sample.prompt = FormatQuestionPrompt(sample.mcq);
    sample.response = McqGoldResponse(sample.mcq);
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<StatementSample> DatasetBuilder::BuildStatements(
    const std::vector<size_t>& triplet_indices) const {
  std::vector<StatementSample> out;
  out.reserve(triplet_indices.size());
  for (size_t index : triplet_indices) {
    CHECK_LT(index, kg_->num_triplets());
    const Triplet& triplet = kg_->triplets()[index];
    out.push_back({index, templates_->Statement(*kg_, triplet)});
  }
  return out;
}

std::vector<YesNoSample> DatasetBuilder::BuildYesNo(
    const std::vector<size_t>& triplet_indices, util::Rng* rng) const {
  std::vector<YesNoSample> out;
  out.reserve(triplet_indices.size());
  for (size_t index : triplet_indices) {
    CHECK_LT(index, kg_->num_triplets());
    const Triplet& triplet = kg_->triplets()[index];
    YesNoSample sample;
    sample.triplet_index = index;
    bool positive = rng->Bernoulli(0.5);
    if (positive) {
      sample.prompt =
          templates_->YesNoQuestion(*kg_, triplet) + " answer :";
      sample.answer = true;
    } else {
      const std::vector<int>& pool = kg_->TailPool(triplet.relation);
      int fake = triplet.tail;
      for (int attempt = 0; attempt < 20 && fake == triplet.tail;
           ++attempt) {
        fake = rng->Choice(pool);
      }
      if (fake == triplet.tail) {
        // Degenerate pool; keep the positive phrasing.
        sample.prompt =
            templates_->YesNoQuestion(*kg_, triplet) + " answer :";
        sample.answer = true;
      } else {
        sample.prompt =
            templates_->YesNoQuestion(*kg_, triplet, fake) + " answer :";
        sample.answer = false;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<std::string> FillerSentences(size_t count, util::Rng* rng) {
  static const char* const kSubjects[] = {
      "the committee", "a recent study",  "the laboratory", "the archive",
      "the survey",    "the department",  "a field report", "the council",
  };
  static const char* const kVerbs[] = {
      "reviewed", "documented", "summarized", "examined",
      "compared", "catalogued", "released",   "evaluated",
  };
  static const char* const kObjects[] = {
      "the annual records",   "several open questions",
      "the updated findings", "a series of observations",
      "the collected notes",  "the standard procedures",
      "the revised guidelines", "multiple earlier reports",
  };
  static const char* const kTails[] = {
      "last year .",       "in great detail .", "for the board .",
      "without delay .",   "as planned .",      "across regions .",
      "with new methods .", "in a short memo .",
  };
  auto pick = [&](const char* const* bank, size_t n) {
    return bank[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(n) - 1))];
  };
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(std::string(pick(kSubjects, 8)) + " " + pick(kVerbs, 8) +
                  " " + pick(kObjects, 8) + " " + pick(kTails, 8));
  }
  return out;
}

}  // namespace infuserki::kg
