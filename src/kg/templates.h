#ifndef INFUSERKI_KG_TEMPLATES_H_
#define INFUSERKI_KG_TEMPLATES_H_

#include <array>
#include <string>
#include <unordered_map>

#include "kg/graph.h"

namespace infuserki::kg {

/// Number of QA templates per relation (T1..T5). T1 and T2 are "seen"
/// (used for training); T3..T5 are held out to measure generality, exactly
/// as in the paper's F1_T1..F1_T5 metrics.
inline constexpr int kNumTemplates = 5;
inline constexpr int kNumSeenTemplates = 2;

/// The per-relation surface forms produced by the (substituted) GPT-4
/// template generation step of Appendix A.1. `[S]` marks the subject and
/// `[O]` the object placeholder.
struct RelationTemplates {
  std::array<std::string, kNumTemplates> qa;  // answer is the object
  std::string yes_no;                         // yes/no question about [S],[O]
  std::string statement;                      // declarative knowledge fact
};

/// Deterministic template generator plus instantiation helpers.
///
/// Substitution note (DESIGN.md): the paper prompts GPT-4 for five unique
/// question templates and one knowledge statement per relation. We generate
/// them from phrase banks instead, with the bank variant chosen by a hash of
/// the relation name so different relations receive different phrasings.
class TemplateEngine {
 public:
  TemplateEngine() = default;

  /// Generic templates for a relation (pure function of the relation name
  /// and surface).
  static RelationTemplates Generate(const Relation& relation);

  /// Installs custom templates for one relation (tests / curated domains).
  void SetTemplates(int relation_id, RelationTemplates templates);

  /// Templates for `relation`, generated and memoized on first use.
  const RelationTemplates& For(const Relation& relation) const;

  /// Instantiates QA template `template_id` (1-based, 1..5) for a triplet.
  /// The gold answer is the tail entity's name.
  std::string Question(const KnowledgeGraph& kg, const Triplet& triplet,
                       int template_id) const;

  /// Yes/no question; `tail_override` (entity id, or -1) substitutes a
  /// different object to produce negative samples.
  std::string YesNoQuestion(const KnowledgeGraph& kg, const Triplet& triplet,
                            int tail_override = -1) const;

  /// Declarative knowledge statement for a triplet.
  std::string Statement(const KnowledgeGraph& kg,
                        const Triplet& triplet) const;

 private:
  mutable std::unordered_map<int, RelationTemplates> cache_;
};

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_TEMPLATES_H_
