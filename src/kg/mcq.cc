#include "kg/mcq.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::kg {
namespace {

constexpr size_t kNearestPoolSize = 10;

}  // namespace

McqBuilder::McqBuilder(const KnowledgeGraph* kg,
                       const TemplateEngine* templates)
    : kg_(kg), templates_(templates) {
  CHECK(kg != nullptr);
  CHECK(templates != nullptr);
}

Mcq McqBuilder::Build(size_t triplet_index, int template_id,
                      util::Rng* rng) const {
  CHECK_LT(triplet_index, kg_->num_triplets());
  const Triplet& triplet = kg_->triplets()[triplet_index];
  const std::string& head_name = kg_->entity(triplet.head).name;
  const std::string& answer = kg_->entity(triplet.tail).name;

  // Candidate distractors: the relation's tail pool minus the answer,
  // padded with random entities when the pool is thin.
  std::vector<int> pool;
  for (int id : kg_->TailPool(triplet.relation)) {
    if (id != triplet.tail) pool.push_back(id);
  }
  while (pool.size() < 3) {
    int id = static_cast<int>(rng->UniformInt(
        0, static_cast<int64_t>(kg_->num_entities()) - 1));
    if (id == triplet.tail ||
        std::find(pool.begin(), pool.end(), id) != pool.end()) {
      continue;
    }
    pool.push_back(id);
  }

  // Distractor 1: minimal edit distance to the head entity.
  size_t best = std::numeric_limits<size_t>::max();
  int first = pool[0];
  for (int id : pool) {
    size_t d = util::EditDistance(kg_->entity(id).name, head_name);
    if (d < best) {
      best = d;
      first = id;
    }
  }

  // Distractors 2-3: random among the ten candidates closest to the answer.
  std::vector<std::pair<size_t, int>> by_answer_distance;
  for (int id : pool) {
    if (id == first) continue;
    by_answer_distance.emplace_back(
        util::EditDistance(kg_->entity(id).name, answer), id);
  }
  std::sort(by_answer_distance.begin(), by_answer_distance.end());
  size_t take = std::min(kNearestPoolSize, by_answer_distance.size());
  std::vector<int> nearest;
  nearest.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    nearest.push_back(by_answer_distance[i].second);
  }
  rng->Shuffle(&nearest);
  // Pool padding above guarantees at least two candidates here.
  CHECK_GE(nearest.size(), size_t{2});
  int second = nearest[0];
  int third = nearest[1];

  Mcq mcq;
  mcq.triplet_index = triplet_index;
  mcq.template_id = template_id;
  mcq.question = templates_->Question(*kg_, triplet, template_id);
  std::vector<int> option_ids = {triplet.tail, first, second, third};
  rng->Shuffle(&option_ids);
  for (size_t i = 0; i < option_ids.size(); ++i) {
    mcq.options[i] = kg_->entity(option_ids[i]).name;
    if (option_ids[i] == triplet.tail) mcq.correct = static_cast<int>(i);
  }
  return mcq;
}

std::vector<Mcq> McqBuilder::BuildAll(int template_id,
                                      util::Rng* rng) const {
  std::vector<Mcq> out;
  out.reserve(kg_->num_triplets());
  for (size_t i = 0; i < kg_->num_triplets(); ++i) {
    out.push_back(Build(i, template_id, rng));
  }
  return out;
}

std::string FormatMcqPrompt(const Mcq& mcq) {
  std::string prompt = "question : " + mcq.question;
  prompt += " options :";
  for (size_t i = 0; i < mcq.options.size(); ++i) {
    prompt += " ( ";
    prompt += OptionLetter(static_cast<int>(i));
    prompt += " ) " + mcq.options[i];
  }
  prompt += " answer :";
  return prompt;
}

std::string FormatQuestionPrompt(const Mcq& mcq) {
  return "question : " + mcq.question + " answer :";
}

std::string FormatInstructionPrompt(const std::string& instruction) {
  return "below is an instruction that describes a task . write a response "
         "that appropriately completes the request . ### instruction : " +
         instruction + " ### response :";
}

std::string McqGoldResponse(const Mcq& mcq) {
  return mcq.options[static_cast<size_t>(mcq.correct)];
}

char OptionLetter(int index) {
  CHECK_GE(index, 0);
  CHECK_LT(index, 4);
  return static_cast<char>('a' + index);
}

}  // namespace infuserki::kg
