#ifndef INFUSERKI_KG_MCQ_H_
#define INFUSERKI_KG_MCQ_H_

#include <array>
#include <string>
#include <vector>

#include "kg/graph.h"
#include "kg/templates.h"
#include "util/rng.h"

namespace infuserki::kg {

/// One multiple-choice question derived from a knowledge triplet
/// (§3.2 "Multiple-choice Question Generation").
struct Mcq {
  size_t triplet_index = 0;  // into KnowledgeGraph::triplets()
  int template_id = 1;       // 1..kNumTemplates
  std::string question;
  std::array<std::string, 4> options;
  int correct = 0;  // index into options
};

/// Builds MCQs with the distractor policy of Appendix A.1:
///   * the first distractor is the pool candidate with minimal edit
///     distance to the *head* entity;
///   * the remaining two are drawn at random from the ten candidates
///     closest (by edit distance) to the correct answer;
///   * option order is then shuffled.
/// The candidate pool is the relation's tail pool (type-plausible
/// distractors); if it is too small, random entities pad it out.
class McqBuilder {
 public:
  McqBuilder(const KnowledgeGraph* kg, const TemplateEngine* templates);

  Mcq Build(size_t triplet_index, int template_id, util::Rng* rng) const;

  /// Builds one MCQ per triplet with the given template.
  std::vector<Mcq> BuildAll(int template_id, util::Rng* rng) const;

 private:
  const KnowledgeGraph* kg_;
  const TemplateEngine* templates_;
};

/// Compact prompt for the LM, terminated by "answer :" so that the gold
/// continuation is the answer text. Lettered options mirror the paper's
/// (A)-(D) format. Used by the generation/extraction answer path.
std::string FormatMcqPrompt(const Mcq& mcq);

/// Option-free prompt ("question : <q> answer :"). Training and
/// likelihood-scored evaluation use this format: the options stay scoring
/// candidates rather than prompt text, which prevents the word-level
/// simulator LM from shortcut-learning the option layout instead of the
/// question -> answer mapping (see DESIGN.md substitution notes).
std::string FormatQuestionPrompt(const Mcq& mcq);

/// Alpaca-style instruction wrapper from Table 6 of the paper. Used by the
/// paper-faithful prompt path; the compact format is the default at
/// simulator scale.
std::string FormatInstructionPrompt(const std::string& instruction);

/// The gold response text for an MCQ: "( <letter> ) <answer text>".
std::string McqGoldResponse(const Mcq& mcq);

/// Option letter ('a'..'d') for index 0..3.
char OptionLetter(int index);

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_MCQ_H_
