#ifndef INFUSERKI_KG_DATASET_H_
#define INFUSERKI_KG_DATASET_H_

#include <string>
#include <vector>

#include "kg/graph.h"
#include "kg/mcq.h"
#include "kg/templates.h"
#include "util/rng.h"

namespace infuserki::kg {

/// One QA training/eval sample: a prompt (MCQ format) and the gold
/// response (the answer option's text).
struct QaSample {
  size_t triplet_index = 0;
  int template_id = 1;
  std::string prompt;
  std::string response;
  Mcq mcq;
};

/// One next-token-loss sample built from a knowledge statement (used by
/// the RC training phase, Eq. 10).
struct StatementSample {
  size_t triplet_index = 0;
  std::string text;
};

/// One yes/no QA sample (the paper mixes a small set of these into QA
/// training to improve generality over question types).
struct YesNoSample {
  size_t triplet_index = 0;
  std::string prompt;
  bool answer = true;
};

/// Builds the textual corpus pieces the experiments need from a KG.
class DatasetBuilder {
 public:
  DatasetBuilder(const KnowledgeGraph* kg, const TemplateEngine* templates);

  /// MCQ-formatted QA samples for `triplet_indices` under one template.
  /// Distractors are resampled per call via `rng`.
  std::vector<QaSample> BuildQa(const std::vector<size_t>& triplet_indices,
                                int template_id, util::Rng* rng) const;

  /// Knowledge statements for `triplet_indices`.
  std::vector<StatementSample> BuildStatements(
      const std::vector<size_t>& triplet_indices) const;

  /// Yes/no samples; each triplet yields a positive sample and, with
  /// probability 0.5, the sample is flipped to a negative one by
  /// substituting a random same-relation tail.
  std::vector<YesNoSample> BuildYesNo(
      const std::vector<size_t>& triplet_indices, util::Rng* rng) const;

  const KnowledgeGraph& kg() const { return *kg_; }
  const TemplateEngine& templates() const { return *templates_; }
  const McqBuilder& mcq_builder() const { return mcq_builder_; }

 private:
  const KnowledgeGraph* kg_;
  const TemplateEngine* templates_;
  McqBuilder mcq_builder_;
};

/// Generic filler sentences for base-LM pretraining, so the vanilla model
/// sees language beyond bare facts (stabilizes the tokenizer distribution
/// and makes "unknown" questions genuinely unknown rather than ill-formed).
std::vector<std::string> FillerSentences(size_t count, util::Rng* rng);

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_DATASET_H_
