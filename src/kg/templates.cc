#include "kg/templates.h"

#include <functional>

#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::kg {
namespace {

// Three phrasing variants per template slot; the variant used by a relation
// is chosen by hashing the relation name, giving GPT-4-like diversity across
// relations while staying deterministic.
constexpr int kVariants = 3;

const char* const kQaBank[kNumTemplates][kVariants] = {
    {
        "what is the {R} of [S] ?",
        "what serves as the {R} of [S] ?",
        "which entity is the {R} of [S] ?",
    },
    {
        "identify the {R} of [S] .",
        "name the {R} of [S] .",
        "state the {R} of [S] .",
    },
    {
        "the {R} of [S] is what ?",
        "[S] has what {R} ?",
        "[S] has which {R} ?",
    },
    {
        "tell me the {R} associated with [S] .",
        "give the {R} linked to [S] .",
        "provide the {R} connected with [S] .",
    },
    {
        "regarding [S] , what is its {R} ?",
        "for [S] , which entity acts as its {R} ?",
        "concerning [S] , what is the {R} ?",
    },
};

const char* const kYesNoBank[kVariants] = {
    "is [O] the {R} of [S] ?",
    "does [S] have [O] as its {R} ?",
    "would [O] be the {R} of [S] ?",
};

const char* const kStatementBank[kVariants] = {
    "the {R} of [S] is [O] .",
    "[S] has [O] as its {R} .",
    "for [S] the {R} is [O] .",
};

size_t VariantFor(const std::string& relation_name, int slot) {
  std::hash<std::string> hasher;
  return (hasher(relation_name) + static_cast<size_t>(slot) * 2654435761u) %
         kVariants;
}

std::string Instantiate(const std::string& tmpl, const std::string& subject,
                        const std::string& object) {
  std::string out = util::ReplaceAll(tmpl, "[S]", subject);
  out = util::ReplaceAll(out, "[O]", object);
  return out;
}

}  // namespace

RelationTemplates TemplateEngine::Generate(const Relation& relation) {
  RelationTemplates out;
  for (int slot = 0; slot < kNumTemplates; ++slot) {
    const char* raw = kQaBank[slot][VariantFor(relation.name, slot)];
    out.qa[static_cast<size_t>(slot)] =
        util::ReplaceAll(raw, "{R}", relation.surface);
  }
  out.yes_no = util::ReplaceAll(
      kYesNoBank[VariantFor(relation.name, kNumTemplates)], "{R}",
      relation.surface);
  out.statement = util::ReplaceAll(
      kStatementBank[VariantFor(relation.name, kNumTemplates + 1)], "{R}",
      relation.surface);
  return out;
}

void TemplateEngine::SetTemplates(int relation_id,
                                  RelationTemplates templates) {
  cache_[relation_id] = std::move(templates);
}

const RelationTemplates& TemplateEngine::For(const Relation& relation) const {
  auto it = cache_.find(relation.id);
  if (it == cache_.end()) {
    it = cache_.emplace(relation.id, Generate(relation)).first;
  }
  return it->second;
}

std::string TemplateEngine::Question(const KnowledgeGraph& kg,
                                     const Triplet& triplet,
                                     int template_id) const {
  CHECK_GE(template_id, 1);
  CHECK_LE(template_id, kNumTemplates);
  const RelationTemplates& templates = For(kg.relation(triplet.relation));
  return Instantiate(templates.qa[static_cast<size_t>(template_id - 1)],
                     kg.entity(triplet.head).name,
                     kg.entity(triplet.tail).name);
}

std::string TemplateEngine::YesNoQuestion(const KnowledgeGraph& kg,
                                          const Triplet& triplet,
                                          int tail_override) const {
  const RelationTemplates& templates = For(kg.relation(triplet.relation));
  int tail = tail_override >= 0 ? tail_override : triplet.tail;
  return Instantiate(templates.yes_no, kg.entity(triplet.head).name,
                     kg.entity(tail).name);
}

std::string TemplateEngine::Statement(const KnowledgeGraph& kg,
                                      const Triplet& triplet) const {
  const RelationTemplates& templates = For(kg.relation(triplet.relation));
  return Instantiate(templates.statement, kg.entity(triplet.head).name,
                     kg.entity(triplet.tail).name);
}

}  // namespace infuserki::kg
