#ifndef INFUSERKI_KG_GRAPH_H_
#define INFUSERKI_KG_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace infuserki::kg {

/// An entity node. `name` is the unique surface form used in text.
struct Entity {
  int id = -1;
  std::string name;
};

/// A relation type. `surface` is the natural-language rendering used by
/// templates (e.g. relation "has_finding_site" -> surface "finding site").
struct Relation {
  int id = -1;
  std::string name;
  std::string surface;
};

/// A directed labeled edge <head, relation, tail>.
struct Triplet {
  int head = -1;
  int relation = -1;
  int tail = -1;

  bool operator==(const Triplet& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// In-memory triple store with the lookups the experiments need: unique-tail
/// queries for QA answers and per-relation tail pools for distractor
/// sampling.
class KnowledgeGraph {
 public:
  /// Ceiling on entity/relation ids imposed by the packed (head, relation)
  /// lookup key. Loaders must reject inputs that would cross it — ids at or
  /// above the stride would silently collide in the unique-tail index.
  static constexpr int64_t kMaxEntities = 1 << 20;

  KnowledgeGraph() = default;

  /// Adds (or finds) an entity by name; returns its id.
  int AddEntity(const std::string& name);

  /// Adds (or finds) a relation; returns its id. Re-adding with a different
  /// surface keeps the first surface.
  int AddRelation(const std::string& name, const std::string& surface);

  /// Appends a triplet; duplicate (head, relation) pairs are rejected so
  /// every question has a unique gold answer.
  util::Status AddTriplet(int head, int relation, int tail);

  const Entity& entity(int id) const;
  const Relation& relation(int id) const;
  const std::vector<Triplet>& triplets() const { return triplets_; }

  size_t num_entities() const { return entities_.size(); }
  size_t num_relations() const { return relations_.size(); }
  size_t num_triplets() const { return triplets_.size(); }

  /// Entity id by exact name, or -1.
  int FindEntity(const std::string& name) const;

  /// Relation id by name, or -1.
  int FindRelation(const std::string& name) const;

  /// The unique tail for (head, relation), or -1 when absent.
  int TailOf(int head, int relation) const;

  /// All distinct entities appearing as tails of `relation` — the type-
  /// plausible distractor pool for that relation's questions.
  const std::vector<int>& TailPool(int relation) const;

  /// All triplets with the given head (used by the 1-hop downstream task).
  std::vector<Triplet> TripletsWithHead(int head) const;

 private:
  std::vector<Entity> entities_;
  std::vector<Relation> relations_;
  std::vector<Triplet> triplets_;
  std::unordered_map<std::string, int> entity_by_name_;
  std::unordered_map<std::string, int> relation_by_name_;
  // (head, relation) -> tail, packed key head * kKeyStride + relation.
  std::unordered_map<int64_t, int> tail_by_head_rel_;
  std::vector<std::vector<int>> tail_pools_;        // by relation id
  std::vector<std::vector<char>> tail_pool_seen_;   // membership bitmap

  static constexpr int64_t kKeyStride = kMaxEntities;
};

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_GRAPH_H_
