#ifndef INFUSERKI_KG_SYNTH_H_
#define INFUSERKI_KG_SYNTH_H_

#include <cstdint>

#include "kg/graph.h"

namespace infuserki::kg {

/// Options shared by the synthetic KG generators.
struct SynthOptions {
  size_t num_triplets = 2500;
  uint64_t seed = 17;

  /// Fraction of UMLS triplets whose tail is drawn from the concept (head)
  /// pool instead of the relation's typed tail pool, creating
  /// concept-to-concept edges and hence multi-hop chains (used by the
  /// 2-hop QA extension). 0 keeps the graph strictly bipartite.
  double chain_fraction = 0.0;
};

/// Synthetic stand-in for the UMLS medical KG sample used by the paper
/// (2.5k / 25k triplets): ~24 biomedical relation types, pseudo-medical
/// concept names built from Latin/Greek syllables, per-relation typed tail
/// pools so that MCQ distractors are plausible.
KnowledgeGraph SyntheticUmls(const SynthOptions& options);

/// Synthetic stand-in for the MetaQA movie KG (2.9k triplets): exactly the
/// nine canonical MetaQA relations (directed_by, written_by,
/// starred_actors, release_year, in_language, has_genre, has_tags,
/// has_imdb_rating, has_imdb_votes) over generated movies and people.
KnowledgeGraph SyntheticMetaQa(const SynthOptions& options);

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_SYNTH_H_
