#ifndef INFUSERKI_KG_IO_H_
#define INFUSERKI_KG_IO_H_

#include <string>

#include "kg/graph.h"
#include "util/status.h"

namespace infuserki::kg {

/// Writes a KG as tab-separated triples: one "head\trelation\ttail" line
/// per triplet, preceded by "#relation\tname\tsurface" header lines so the
/// relation surfaces survive a round trip. The payload is framed with an
/// "#ikgtsv2\t<line count>" header and a "#crc32\t<hex>" trailer, and the
/// file is published atomically (write temp, fsync, rename).
util::Status SaveTsv(const KnowledgeGraph& kg, const std::string& path);

/// Loads a KG written by SaveTsv (or any plain head\trelation\ttail file;
/// unknown relations get their name as surface). Framed files are verified
/// — truncation, line-count drift, or a CRC mismatch returns kDataLoss —
/// while legacy headerless files parse as before. Malformed payload lines
/// (wrong field count, empty fields, control bytes, duplicate (head,
/// relation) pairs, entity-id overflow) are rejected with the offending
/// line number; no input, however corrupt, crashes the loader.
util::StatusOr<KnowledgeGraph> LoadTsv(const std::string& path);

}  // namespace infuserki::kg

#endif  // INFUSERKI_KG_IO_H_
