#include "kg/graph.h"

#include "util/logging.h"

namespace infuserki::kg {

int KnowledgeGraph::AddEntity(const std::string& name) {
  auto it = entity_by_name_.find(name);
  if (it != entity_by_name_.end()) return it->second;
  int id = static_cast<int>(entities_.size());
  entities_.push_back({id, name});
  entity_by_name_[name] = id;
  return id;
}

int KnowledgeGraph::AddRelation(const std::string& name,
                                const std::string& surface) {
  auto it = relation_by_name_.find(name);
  if (it != relation_by_name_.end()) return it->second;
  int id = static_cast<int>(relations_.size());
  relations_.push_back({id, name, surface});
  relation_by_name_[name] = id;
  tail_pools_.emplace_back();
  tail_pool_seen_.emplace_back();
  return id;
}

util::Status KnowledgeGraph::AddTriplet(int head, int relation, int tail) {
  if (head < 0 || static_cast<size_t>(head) >= entities_.size() ||
      tail < 0 || static_cast<size_t>(tail) >= entities_.size()) {
    return util::Status::InvalidArgument("entity id out of range");
  }
  if (relation < 0 || static_cast<size_t>(relation) >= relations_.size()) {
    return util::Status::InvalidArgument("relation id out of range");
  }
  int64_t key = static_cast<int64_t>(head) * kKeyStride + relation;
  auto [it, inserted] = tail_by_head_rel_.emplace(key, tail);
  (void)it;
  if (!inserted) {
    return util::Status::AlreadyExists(
        "duplicate (head, relation): " + entities_[head].name + " / " +
        relations_[relation].name);
  }
  triplets_.push_back({head, relation, tail});
  auto& seen = tail_pool_seen_[relation];
  if (seen.size() <= static_cast<size_t>(tail)) {
    seen.resize(entities_.size(), 0);
  }
  if (seen.size() > static_cast<size_t>(tail) && !seen[tail]) {
    seen[tail] = 1;
    tail_pools_[relation].push_back(tail);
  }
  return util::Status::OK();
}

const Entity& KnowledgeGraph::entity(int id) const {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), entities_.size());
  return entities_[static_cast<size_t>(id)];
}

const Relation& KnowledgeGraph::relation(int id) const {
  CHECK_GE(id, 0);
  CHECK_LT(static_cast<size_t>(id), relations_.size());
  return relations_[static_cast<size_t>(id)];
}

int KnowledgeGraph::FindEntity(const std::string& name) const {
  auto it = entity_by_name_.find(name);
  return it == entity_by_name_.end() ? -1 : it->second;
}

int KnowledgeGraph::FindRelation(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  return it == relation_by_name_.end() ? -1 : it->second;
}

int KnowledgeGraph::TailOf(int head, int relation) const {
  int64_t key = static_cast<int64_t>(head) * kKeyStride + relation;
  auto it = tail_by_head_rel_.find(key);
  return it == tail_by_head_rel_.end() ? -1 : it->second;
}

const std::vector<int>& KnowledgeGraph::TailPool(int relation) const {
  CHECK_GE(relation, 0);
  CHECK_LT(static_cast<size_t>(relation), tail_pools_.size());
  return tail_pools_[static_cast<size_t>(relation)];
}

std::vector<Triplet> KnowledgeGraph::TripletsWithHead(int head) const {
  std::vector<Triplet> out;
  for (const Triplet& t : triplets_) {
    if (t.head == head) out.push_back(t);
  }
  return out;
}

}  // namespace infuserki::kg
