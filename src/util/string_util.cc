#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace infuserki::util {

std::vector<std::string> Split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // Two-row dynamic program; b is the shorter string.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t substitute = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::string FormatFloat(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

}  // namespace infuserki::util
