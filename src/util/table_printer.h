#ifndef INFUSERKI_UTIL_TABLE_PRINTER_H_
#define INFUSERKI_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace infuserki::util {

/// Accumulates rows and renders them as an aligned console table and/or a
/// CSV file. Used by every bench binary to print paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_TABLE_PRINTER_H_
