#ifndef INFUSERKI_UTIL_LOGGING_H_
#define INFUSERKI_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace infuserki::util {

/// Log severities, ordered by importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum severity that is actually emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum severity. Thread-safe: the level is an
/// atomic, so it may be flipped at any time (e.g. to silence workers).
void SetMinLogLevel(LogLevel level);

/// Stream-style log message. Emits on destruction; aborts for kFatal.
///
/// Not for direct use: use the LOG()/CHECK() macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log stream when the severity is below the emission threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace infuserki::util

#define INFUSERKI_LOG_INTERNAL(level)                                \
  ::infuserki::util::LogMessage(::infuserki::util::LogLevel::level, \
                                __FILE__, __LINE__)                  \
      .stream()

#define LOG_DEBUG INFUSERKI_LOG_INTERNAL(kDebug)
#define LOG_INFO INFUSERKI_LOG_INTERNAL(kInfo)
#define LOG_WARNING INFUSERKI_LOG_INTERNAL(kWarning)
#define LOG_ERROR INFUSERKI_LOG_INTERNAL(kError)
#define LOG_FATAL INFUSERKI_LOG_INTERNAL(kFatal)

/// CHECK(cond) aborts with a message when `cond` is false. Active in all
/// build modes: invariants in a database-style codebase must not be compiled
/// out silently.
#define CHECK(cond)                                      \
  if (!(cond)) LOG_FATAL << "Check failed: " #cond " "

#define CHECK_OP(a, b, op)                                                  \
  if (!((a)op(b)))                                                          \
  LOG_FATAL << "Check failed: " #a " " #op " " #b " (" << (a) << " vs. "    \
            << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#ifndef NDEBUG
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#else
#define DCHECK(cond) \
  if (false) ::infuserki::util::NullStream()
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#endif

#endif  // INFUSERKI_UTIL_LOGGING_H_
