#ifndef INFUSERKI_UTIL_STRING_UTIL_H_
#define INFUSERKI_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace infuserki::util {

/// Splits `text` at any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view text,
                               std::string_view delims = " ");

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Levenshtein distance (unit costs). Used by the MCQ distractor selection
/// rule from Appendix A.1 of the paper.
size_t EditDistance(std::string_view a, std::string_view b);

/// Formats a double with fixed precision, e.g. FormatFloat(0.987, 2) ==
/// "0.99".
std::string FormatFloat(double value, int precision);

/// True when `text` contains `needle`.
bool Contains(std::string_view text, std::string_view needle);

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_STRING_UTIL_H_
