#ifndef INFUSERKI_UTIL_FAULT_H_
#define INFUSERKI_UTIL_FAULT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <string>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace infuserki::util {

/// Exit code used by crash-mode failpoints, so harnesses (tests,
/// scripts/check_build.sh) can tell an injected crash from a real one.
constexpr int kFaultCrashExitCode = 42;

/// Deterministic, programmable failpoints for exercising the durability
/// layer. Production code threads named points through its fragile paths:
///
///   RETURN_IF_ERROR(FAULT_POINT("ckpt/write"));
///
/// With nothing configured a point is a cheap no-op returning OK. Faults are
/// armed programmatically via Configure() or through the INFUSERKI_FAULTS
/// environment variable (read once, at first use), with a `;`-separated
/// spec of `point=mode` entries:
///
///   fail@N      fail the Nth hit of the point (1-based), that hit only —
///               models a transient I/O error (cleared by a retry)
///   fail@N+     fail every hit from the Nth on — a permanent failure
///   prob:P:S    fail each hit with probability P, from a deterministic
///               stream seeded with S (default seed 0)
///   crash@N     terminate the process (exit kFaultCrashExitCode) on the
///               Nth hit — models a hard crash / preemption
///   off         remove any fault armed on the point
///
/// Example: INFUSERKI_FAULTS="trainer/step=crash@60;kg/save=fail@1"
///
/// Injected failures carry StatusCode::kInternal (the transient class the
/// retry helpers act on). All bookkeeping is mutex-guarded; failpoints live
/// on I/O and per-step paths, never per-element hot loops.
class FaultRegistry {
 public:
  static FaultRegistry& Get();

  /// Parses and arms a fault spec (see class comment). Returns
  /// kInvalidArgument on a malformed spec, leaving valid entries armed.
  Status Configure(const std::string& spec) EXCLUDES(mu_);

  /// Disarms everything and resets hit counters.
  void Clear() EXCLUDES(mu_);

  /// Registers one hit of `point`. Returns OK, an injected kInternal error,
  /// or does not return at all (crash mode).
  Status Hit(const std::string& point) EXCLUDES(mu_);

  /// Number of times `point` was hit since the last Clear(). Counted only
  /// while a fault (of any mode) is armed on the point.
  uint64_t hits(const std::string& point) const EXCLUDES(mu_);

  /// True when any failpoint is armed — lets per-step call sites skip the
  /// lock entirely in production.
  bool active() const { return active_.load(std::memory_order_relaxed); }

 private:
  FaultRegistry();

  enum class Mode { kFailNth, kFailFrom, kProbabilistic, kCrashNth };
  struct Point {
    Mode mode = Mode::kFailNth;
    uint64_t n = 1;
    double probability = 0.0;
    std::mt19937_64 stream;
    uint64_t hit_count = 0;
  };

  mutable Mutex mu_;
  std::map<std::string, Point> points_ GUARDED_BY(mu_);
  std::atomic<bool> active_{false};  // lock-free armed? fast path
};

/// Options for RetryWithBackoff. Delays are `base_delay_ms * multiplier^k`
/// before retry k (k = 0 for the first retry).
struct RetryOptions {
  int max_attempts = 3;
  int base_delay_ms = 5;
  double multiplier = 2.0;
  /// Overall deadline for the whole retry loop: once the deadline has
  /// passed — or the next backoff sleep would overshoot it — no further
  /// attempt is made and the last status is returned immediately. The
  /// serving layer threads each request's deadline through here so retries
  /// can never outlive the request they serve. The default (epoch) means
  /// unbounded; the first attempt always runs, deadline or not.
  std::chrono::steady_clock::time_point deadline{};
};

/// Runs `fn` until it returns OK or a permanent error, retrying transient
/// failures (StatusCode::kInternal — the class real I/O errors and injected
/// faults use) with exponential backoff, bounded by `options.deadline` when
/// set. Returns the last status.
Status RetryWithBackoff(const std::function<Status()>& fn,
                        const RetryOptions& options = {},
                        const std::string& what = "");

/// Returns `options` with its overall deadline tightened to `deadline`:
/// the result carries the EARLIER of the two bounds, where the epoch
/// default means "unbounded" on either side. Callers layering a
/// per-request deadline over a configured policy must use this instead of
/// assigning `options.deadline` directly — a plain assignment from a
/// no-deadline request would silently erase the configured bound and let
/// the backoff loop sleep past it.
RetryOptions BoundDeadline(RetryOptions options,
                           std::chrono::steady_clock::time_point deadline);

}  // namespace infuserki::util

/// Expression form of a failpoint hit; wrap in RETURN_IF_ERROR (or inspect
/// the Status) at the call site.
#define FAULT_POINT(point) (::infuserki::util::FaultRegistry::Get().Hit(point))

#endif  // INFUSERKI_UTIL_FAULT_H_
