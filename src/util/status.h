#ifndef INFUSERKI_UTIL_STATUS_H_
#define INFUSERKI_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/logging.h"

namespace infuserki::util {

/// Canonical error codes, a subset of the absl/gRPC code space that this
/// library actually uses.
enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
  kDataLoss = 15,
};

/// Returns a human-readable name for `code`.
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier. The library never throws across public API
/// boundaries; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Single-line rendering, e.g. "INVALID_ARGUMENT: bad shape".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Attaches a machine-readable retry hint to `status`, appended to the
/// message as ` [retry_after_s=<seconds>]`. Used by load-shedding paths
/// (kResourceExhausted / kUnavailable) so a client that only sees the
/// Status — not the serving layer's Response struct — still learns how
/// long to back off. Non-positive hints return the status unchanged.
Status WithRetryAfter(Status status, double seconds);

/// Parses a hint attached by WithRetryAfter(); 0.0 when none is present.
double RetryAfterSeconds(const Status& status);

/// Union of a value and an error Status; exactly one is present.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace infuserki::util

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::infuserki::util::Status _status = (expr); \
    if (!_status.ok()) return _status;          \
  } while (false)

/// Assigns the value of a StatusOr expression or propagates its error.
#define ASSIGN_OR_RETURN(lhs, expr)             \
  ASSIGN_OR_RETURN_IMPL(                        \
      INFUSERKI_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL(statusor, lhs, expr) \
  auto statusor = (expr);                          \
  if (!statusor.ok()) return statusor.status();    \
  lhs = std::move(statusor).value()

#define INFUSERKI_STATUS_CONCAT_IMPL(a, b) a##b
#define INFUSERKI_STATUS_CONCAT(a, b) INFUSERKI_STATUS_CONCAT_IMPL(a, b)

#endif  // INFUSERKI_UTIL_STATUS_H_
