#ifndef INFUSERKI_UTIL_CRC32_H_
#define INFUSERKI_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace infuserki::util {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `size` bytes.
/// Pass a previous result as `seed` to checksum data incrementally:
///   crc = Crc32(a, na); crc = Crc32(b, nb, crc);  // == Crc32(a+b)
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_CRC32_H_
