#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace infuserki::util {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::Fork() { return Rng(engine_()); }

std::string Rng::SaveState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::RestoreState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 engine;
  is >> engine;
  if (is.fail()) {
    return Status::InvalidArgument("unparseable rng state");
  }
  engine_ = engine;
  return Status::OK();
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  CHECK_LE(k, n);
  // Partial Fisher-Yates: O(n) memory, O(k) swaps.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace infuserki::util
