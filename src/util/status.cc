#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace infuserki::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace {
constexpr const char kRetryAfterPrefix[] = " [retry_after_s=";
}  // namespace

Status WithRetryAfter(Status status, double seconds) {
  if (status.ok() || seconds <= 0.0) return status;
  char hint[64];
  std::snprintf(hint, sizeof(hint), "%s%.6f]", kRetryAfterPrefix, seconds);
  return Status(status.code(), status.message() + hint);
}

double RetryAfterSeconds(const Status& status) {
  const std::string& message = status.message();
  size_t at = message.rfind(kRetryAfterPrefix);
  if (at == std::string::npos) return 0.0;
  const char* begin = message.c_str() + at + sizeof(kRetryAfterPrefix) - 1;
  char* end = nullptr;
  double seconds = std::strtod(begin, &end);
  if (end == begin || end == nullptr || *end != ']') return 0.0;
  return seconds > 0.0 ? seconds : 0.0;
}

}  // namespace infuserki::util
