#ifndef INFUSERKI_UTIL_SERIALIZE_H_
#define INFUSERKI_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace infuserki::util {

/// Little binary writer for checkpoints. All integers are fixed-width
/// little-endian (we only target little-endian hosts); floats are IEEE-754.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary), path_(path) {}

  bool ok() const { return static_cast<bool>(out_); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  void WriteFloatVector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  Status Finish() {
    out_.flush();
    if (!out_) return Status::DataLoss("short write to " + path_);
    return Status::OK();
  }

 private:
  void WriteRaw(const void* data, size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }

  std::ofstream out_;
  std::string path_;
};

/// Counterpart reader. Each accessor reports corruption through ok().
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary), path_(path) {}

  bool ok() const { return static_cast<bool>(in_); }
  const std::string& path() const { return path_; }

  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  float ReadF32() {
    float v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  std::string ReadString() {
    uint64_t size = ReadU64();
    if (!ok() || size > (1ull << 32)) {
      in_.setstate(std::ios::failbit);
      return "";
    }
    std::string s(size, '\0');
    ReadRaw(s.data(), size);
    return s;
  }

  std::vector<float> ReadFloatVector() {
    uint64_t size = ReadU64();
    if (!ok() || size > (1ull << 32)) {
      in_.setstate(std::ios::failbit);
      return {};
    }
    std::vector<float> v(size);
    ReadRaw(v.data(), size * sizeof(float));
    return v;
  }

 private:
  void ReadRaw(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  }

  std::ifstream in_;
  std::string path_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_SERIALIZE_H_
