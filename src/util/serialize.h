#ifndef INFUSERKI_UTIL_SERIALIZE_H_
#define INFUSERKI_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace infuserki::util {

/// Binary checkpoint framing, format v2. Every file is
///
///   [u32 file magic "IKF2"] [u32 format version]
///   [payload bytes]
///   [u64 payload size] [u32 crc32(payload)] [u32 footer magic]
///
/// All integers are fixed-width little-endian (we only target little-endian
/// hosts); floats are IEEE-754. The CRC lets readers reject any truncation
/// or bit corruption before a single payload byte is parsed, and the
/// version field lets future formats evolve without silent misreads.
constexpr uint32_t kFrameFileMagic = 0x494b4632;    // "IKF2"
constexpr uint32_t kFrameFormatVersion = 2;
constexpr uint32_t kFrameFooterMagic = 0x444e4532;  // "2END"
constexpr size_t kFrameHeaderSize = 8;
constexpr size_t kFrameFooterSize = 16;

/// Binary writer for checkpoints. The payload is buffered in memory;
/// Finish() frames it (header + CRC32 footer) and publishes the file
/// atomically (tmp -> fsync -> rename, see util::WriteFileAtomic), so a
/// crash mid-save never leaves a half-written file under the final path.
/// A destroyed, unfinished writer leaves no trace on disk.
class BinaryWriter {
 public:
  /// `fault_point` names the failpoint hit on each write attempt (see
  /// util/fault.h); call sites pick a stable name per artifact kind.
  explicit BinaryWriter(std::string path,
                        std::string fault_point = "serialize/write");

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Buffered writers cannot fail before Finish(); kept for call-site
  /// compatibility with the v1 streaming writer.
  bool ok() const { return true; }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  void WriteFloatVector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  /// Frames the payload and writes the file atomically. Call exactly once.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t size) {
    payload_.append(static_cast<const char*>(data), size);
  }

  std::string path_;
  std::string fault_point_;
  std::string payload_;
  bool finished_ = false;
};

/// Counterpart reader. The whole file is loaded and its frame verified up
/// front (magic, version, payload size, CRC32): a corrupt or truncated file
/// flips status() to kDataLoss before any accessor runs, so parsers never
/// see even one garbage byte. Accessors report logical over-reads through
/// ok(), as in v1.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  bool ok() const { return status_.ok(); }
  /// OK, kNotFound (no such file), or kDataLoss (bad frame / over-read).
  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }

  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  float ReadF32() {
    float v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  std::string ReadString() {
    uint64_t size = ReadU64();
    if (!ok() || size > Remaining()) {
      Fail();
      return "";
    }
    std::string s(size, '\0');
    ReadRaw(s.data(), size);
    return s;
  }

  std::vector<float> ReadFloatVector() {
    uint64_t size = ReadU64();
    if (!ok() || size * sizeof(float) > Remaining()) {
      Fail();
      return {};
    }
    std::vector<float> v(size);
    ReadRaw(v.data(), size * sizeof(float));
    return v;
  }

 private:
  size_t Remaining() const { return payload_.size() - pos_; }

  void Fail() {
    if (status_.ok()) {
      status_ = Status::DataLoss("read past end of payload in " + path_);
    }
  }

  void ReadRaw(void* data, size_t size) {
    if (!ok() || size > Remaining()) {
      Fail();
      std::memset(data, 0, size);
      return;
    }
    std::memcpy(data, payload_.data() + pos_, size);
    pos_ += size;
  }

  std::string path_;
  std::string payload_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_SERIALIZE_H_
