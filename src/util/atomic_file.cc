#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "obs/manifest.h"
#include "util/logging.h"

namespace infuserki::util {
namespace {

Status WriteOnceAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  auto fail = [&](const std::string& what) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(what + " " + tmp + ": " + std::strerror(saved));
  };
  size_t offset = 0;
  while (offset < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + offset,
                        contents.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("short write to");
    }
    offset += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("fsync of");
  if (::close(fd) != 0) {
    fd = -1;
    int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("close of " + tmp + ": " +
                            std::strerror(saved));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + ": " +
                            ec.message());
  }
  // Durability of the rename itself: fsync the containing directory.
  // Best-effort — a failure here cannot tear the file.
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& fault_point,
                       const RetryOptions& retry) {
  return RetryWithBackoff(
      [&]() -> Status {
        RETURN_IF_ERROR(FAULT_POINT(fault_point));
        return WriteOnceAtomic(path, contents);
      },
      retry, path);
}

Status AtomicFileWriter::Commit() {
  CHECK(!committed_) << "AtomicFileWriter::Commit() called twice for "
                     << path_;
  committed_ = true;
  return WriteFileAtomic(path_, buffer_.str(), fault_point_);
}

Status QuarantineFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("nothing to quarantine at " + path);
  }
  const std::string quarantined = path + ".corrupt";
  std::filesystem::rename(path, quarantined, ec);
  if (ec) {
    return Status::Internal("cannot quarantine " + path + ": " +
                            ec.message());
  }
  LOG_WARNING << "quarantined unusable file: " << path << " -> "
              << quarantined;
  obs::Lineage::Get().Record("quarantine: " + path);
  return Status::OK();
}

}  // namespace infuserki::util
