#include "util/serialize.h"

#include <fstream>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace infuserki::util {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t PeekU32(const char* data) {
  uint32_t v;
  std::memcpy(&v, data, sizeof(v));
  return v;
}

uint64_t PeekU64(const char* data) {
  uint64_t v;
  std::memcpy(&v, data, sizeof(v));
  return v;
}

}  // namespace

BinaryWriter::BinaryWriter(std::string path, std::string fault_point)
    : path_(std::move(path)), fault_point_(std::move(fault_point)) {}

Status BinaryWriter::Finish() {
  CHECK(!finished_) << "BinaryWriter::Finish() called twice for " << path_;
  finished_ = true;
  std::string file;
  file.reserve(kFrameHeaderSize + payload_.size() + kFrameFooterSize);
  AppendU32(&file, kFrameFileMagic);
  AppendU32(&file, kFrameFormatVersion);
  file += payload_;
  AppendU64(&file, payload_.size());
  AppendU32(&file, Crc32(payload_));
  AppendU32(&file, kFrameFooterMagic);
  return WriteFileAtomic(path_, file, fault_point_);
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    status_ = Status::NotFound("cannot open " + path);
    return;
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    status_ = Status::DataLoss("read error on " + path);
    return;
  }
  if (file.size() < kFrameHeaderSize + kFrameFooterSize) {
    status_ = Status::DataLoss("file too short to be framed: " + path);
    return;
  }
  if (PeekU32(file.data()) != kFrameFileMagic) {
    status_ = Status::DataLoss("bad frame magic in " + path);
    return;
  }
  if (PeekU32(file.data() + 4) != kFrameFormatVersion) {
    status_ = Status::DataLoss("unsupported frame version in " + path);
    return;
  }
  const char* footer =
      file.data() + file.size() - kFrameFooterSize;
  if (PeekU32(footer + 12) != kFrameFooterMagic) {
    status_ = Status::DataLoss("bad frame footer in " + path);
    return;
  }
  const uint64_t payload_size = PeekU64(footer);
  if (payload_size !=
      file.size() - kFrameHeaderSize - kFrameFooterSize) {
    status_ = Status::DataLoss("frame size mismatch in " + path);
    return;
  }
  const uint32_t stored_crc = PeekU32(footer + 8);
  payload_ = file.substr(kFrameHeaderSize, payload_size);
  if (Crc32(payload_) != stored_crc) {
    payload_.clear();
    status_ = Status::DataLoss("checksum mismatch in " + path);
    return;
  }
}

}  // namespace infuserki::util
