#ifndef INFUSERKI_UTIL_ATOMIC_FILE_H_
#define INFUSERKI_UTIL_ATOMIC_FILE_H_

#include <sstream>
#include <string>
#include <string_view>

#include "util/fault.h"
#include "util/status.h"

namespace infuserki::util {

/// Publishes `contents` at `path` atomically: the bytes are written to
/// `path.tmp`, flushed and fsync'd, then renamed over `path`, so readers
/// only ever observe the old file or the complete new one — never a torn
/// write. The named failpoint is hit once per attempt, and transient
/// failures (injected or real kInternal I/O errors) are retried with
/// exponential backoff.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& fault_point = "io/atomic_write",
                       const RetryOptions& retry = {});

/// Buffered convenience wrapper around WriteFileAtomic for call sites that
/// build output incrementally: stream into `stream()`, then Commit() once.
/// Nothing touches the filesystem until Commit(); a destroyed, uncommitted
/// writer leaves no trace on disk.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path,
                            std::string fault_point = "io/atomic_write")
      : path_(std::move(path)), fault_point_(std::move(fault_point)) {}

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ostream& stream() { return buffer_; }
  const std::string& path() const { return path_; }

  /// Writes the buffered bytes via WriteFileAtomic. Call at most once.
  Status Commit();

 private:
  std::string path_;
  std::string fault_point_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// Moves an unusable file aside to `path + ".corrupt"` (overwriting any
/// previous quarantine of the same path) so it can be inspected post-mortem
/// without being picked up by loaders again. Records the event in the obs
/// run lineage. Returns NotFound if `path` does not exist.
Status QuarantineFile(const std::string& path);

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_ATOMIC_FILE_H_
