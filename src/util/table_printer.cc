#include "util/table_printer.h"

#include <algorithm>

#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::util {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  return "\"" + ReplaceAll(cell, "\"", "\"\"") + "\"";
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  // Result tables are run artifacts like any checkpoint or manifest:
  // published atomically so a crash mid-write never leaves a torn CSV.
  AtomicFileWriter writer(path, "table/write_csv");
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) writer.stream() << ",";
      writer.stream() << CsvEscape(row[c]);
    }
    writer.stream() << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return writer.Commit();
}

}  // namespace infuserki::util
