#ifndef INFUSERKI_UTIL_RNG_H_
#define INFUSERKI_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace infuserki::util {

/// Deterministic random source. Every stochastic component in the library
/// takes an explicit Rng (or a seed) so experiments are reproducible; there
/// is no global generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal scaled by `stddev` around `mean`.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Returns a new independent generator derived from this one's stream.
  Rng Fork();

  /// Serializes the full engine state (the exact mt19937_64 stream
  /// position), so a restored generator continues the identical sequence.
  /// Used by training-state checkpoints for bit-exact resume.
  std::string SaveState() const;

  /// Restores a state captured by SaveState(). The input is parsed and
  /// validated before the engine is touched; on error the generator is
  /// left unchanged.
  Status RestoreState(const std::string& state);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Uniformly samples one element. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CHECK(!items.empty()) << "Choice() from empty vector";
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Samples `k` distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_RNG_H_
