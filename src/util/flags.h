#ifndef INFUSERKI_UTIL_FLAGS_H_
#define INFUSERKI_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace infuserki::util {

/// Minimal `--key=value` command-line parser for bench/example binaries.
///
/// Unrecognized positional arguments are ignored; `--flag` without a value
/// is treated as `--flag=true`.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_FLAGS_H_
