#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/mutex.h"

namespace infuserki::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Small sequential id per logging thread: far more readable in interleaved
/// logs than the opaque std::thread::id hash.
int ThreadLogId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Wall-clock "HH:MM:SS.mmm" prefix timestamp.
std::string FormatNow() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm tm_buf;
  localtime_r(&seconds, &tm_buf);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
  return buf;
}

// Serializes writes so multi-threaded log lines do not interleave.
// Locking contract: magic-static first touch; the mutex is the only
// post-init state and is held for the duration of each stderr write. A
// global leaf in the lock hierarchy (DESIGN.md §13): logging is allowed
// while holding any other lock, and nothing is acquired under it.
Mutex& LogMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << FormatNow() << " T"
          << ThreadLogId() << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    MutexLock lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace infuserki::util
