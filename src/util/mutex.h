// Annotated mutex primitives (DESIGN.md §13).
//
// `util::Mutex` / `util::MutexLock` / `util::CondVar` are thin, zero-overhead
// wrappers over std::mutex / std::lock_guard / std::condition_variable whose
// only job is to carry Clang Thread Safety Analysis capabilities
// (util/thread_annotations.h). Everything multithreaded in this repo locks
// through these types; raw std primitives are banned outside this header by
// the `raw-mutex` invariant-linter rule, so the `tsa` preset can prove every
// GUARDED_BY / REQUIRES contract at compile time.
//
// Condition waits are written as explicit loops at the call site —
//   while (!predicate) cv_.Wait(mu_);
// — rather than predicate lambdas, because the analysis treats a lambda body
// as a separate function that does not inherit the caller's held locks.
#ifndef INFUSERKI_UTIL_MUTEX_H_
#define INFUSERKI_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace infuserki::util {

class CondVar;

// A std::mutex that the thread-safety analysis can track as a capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; replaces std::lock_guard / std::unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to util::Mutex. All waits REQUIRE the mutex so
// the analysis knows the guarded predicate is read under the lock; the
// wait itself releases and reacquires through std::condition_variable, which
// is invisible to the analysis (the capability is continuously "held" from
// its point of view, matching the caller-observable contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  // Returns true if the deadline passed without a notification.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool timed_out = cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    lock.release();
    return timed_out;
  }

  // Returns true if `rel_time` elapsed without a notification.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + rel_time);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_MUTEX_H_
