// Portable Clang Thread Safety Analysis annotations (DESIGN.md §13).
//
// These macros attach compile-time locking contracts to data and functions:
// `GUARDED_BY(mu_)` on a member means every access must hold `mu_`;
// `REQUIRES(mu_)` on a function means callers must already hold it;
// `EXCLUDES(mu_)` means callers must NOT hold it (the function acquires it
// itself). Under Clang with `-Wthread-safety` (the `tsa` preset) violations
// are hard compile errors; under any other compiler every macro expands to
// nothing, so the annotations cost nothing on the tier-1 GCC build.
//
// Only `util::Mutex` / `util::MutexLock` / `util::CondVar` (util/mutex.h)
// may declare capabilities; raw std::mutex is banned outside that wrapper by
// the `raw-mutex` invariant-linter rule.
#ifndef INFUSERKI_UTIL_THREAD_ANNOTATIONS_H_
#define INFUSERKI_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define INFUSERKI_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define INFUSERKI_TSA_ATTRIBUTE(x)  // no-op outside Clang
#endif

// A type that models a capability (a lock). Argument names the capability
// kind, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) INFUSERKI_TSA_ATTRIBUTE(capability(x))

// An RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY INFUSERKI_TSA_ATTRIBUTE(scoped_lockable)

// Data members: all reads and writes must hold the named capability.
#define GUARDED_BY(x) INFUSERKI_TSA_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) INFUSERKI_TSA_ATTRIBUTE(pt_guarded_by(x))

// Functions: the caller must hold (REQUIRES) / must not hold (EXCLUDES)
// the named capabilities on entry.
#define REQUIRES(...) \
  INFUSERKI_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  INFUSERKI_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) INFUSERKI_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Functions that acquire / release capabilities as a side effect.
#define ACQUIRE(...) INFUSERKI_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  INFUSERKI_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) INFUSERKI_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  INFUSERKI_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  INFUSERKI_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (e.g. after an adopt).
#define ASSERT_CAPABILITY(x) INFUSERKI_TSA_ATTRIBUTE(assert_capability(x))

// A function that returns a reference to the named capability.
#define RETURN_CAPABILITY(x) INFUSERKI_TSA_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  INFUSERKI_TSA_ATTRIBUTE(no_thread_safety_analysis)

#endif  // INFUSERKI_UTIL_THREAD_ANNOTATIONS_H_
