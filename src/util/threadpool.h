#ifndef INFUSERKI_UTIL_THREADPOOL_H_
#define INFUSERKI_UTIL_THREADPOOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::util {

/// Fixed-size worker pool used to parallelize matmul-shaped loops.
///
/// Thread-safe. Destruction joins all workers after draining the queue.
/// Publishes obs metrics: threadpool/tasks_{scheduled,completed} counters,
/// threadpool/queue_depth{,_max} gauges, and queue-wait / task-run-time
/// histograms (shared across all pool instances in the process).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> fn) EXCLUDES(mu_);

  /// Blocks until all scheduled tasks have finished.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_us = 0;  // obs::NowMicros() at Schedule() time
  };

  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::queue<Task> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // immutable after construction
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

/// Returns the process-wide shared pool (lazily created, never destroyed,
/// per the static-storage-duration rules). Sized to hardware concurrency
/// unless the INFUSERKI_NUM_THREADS environment variable (read once, at
/// first touch) overrides it — used by the TSan race gate to force real
/// interleaving on single-core hosts and by deployments to pin pool width.
ThreadPool& GlobalThreadPool();

/// True when the calling thread is one of the global pool's workers. Used
/// to run nested parallel loops inline instead of deadlocking on the pool's
/// global quiescence wait.
bool OnGlobalPoolWorker();

/// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on the
/// global pool. Runs inline when `n` is small, only one thread exists, or
/// the caller is itself a pool worker (nested parallelism).
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Runs `fn(i)` for every i in [0, n) on the global pool, one task per
/// index, and blocks until all of THESE tasks finish (a private completion
/// group — unlike ThreadPool::Wait it does not wait for unrelated tasks
/// and is safe to call concurrently from several threads). Intended for
/// coarse-grained fan-out (e.g. one MCQ evaluation per task) whose bodies
/// may themselves call ParallelFor; those nested loops run inline on the
/// worker. Runs inline when parallelism is unavailable.
void ParallelForEach(size_t n, const std::function<void(size_t)>& fn);

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_THREADPOOL_H_
