#include "util/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::util {
namespace {

/// Parses the `@N` / `@N+` suffix of fail/crash modes.
bool ParseNth(const std::string& text, uint64_t* n, bool* from) {
  if (text.empty()) return false;
  std::string digits = text;
  *from = false;
  if (digits.back() == '+') {
    *from = true;
    digits.pop_back();
  }
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value == 0) return false;
  *n = value;
  return true;
}

}  // namespace

FaultRegistry& FaultRegistry::Get() {
  // Locking contract: construction is a magic static (thread-safe first
  // touch, INFUSERKI_FAULTS parsed exactly once); all post-init access to
  // `points_` (Configure/Clear/Hit/hits) holds `mu_`. `active_` is an
  // atomic fast-path flag so unarmed hot paths never take the lock.
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("INFUSERKI_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    Status status = Configure(env);
    if (!status.ok()) {
      LOG_WARNING << "INFUSERKI_FAULTS: " << status;
    } else {
      LOG_INFO << "fault injection armed from INFUSERKI_FAULTS: " << env;
    }
  }
}

Status FaultRegistry::Configure(const std::string& spec) {
  MutexLock lock(mu_);
  for (const std::string& raw : Split(spec, ";,")) {
    std::string entry = Trim(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry missing '=': " +
                                     entry);
    }
    std::string name = entry.substr(0, eq);
    std::string mode = entry.substr(eq + 1);
    if (mode == "off") {
      points_.erase(name);
      continue;
    }
    Point point;
    if (StartsWith(mode, "fail@")) {
      bool from = false;
      if (!ParseNth(mode.substr(5), &point.n, &from)) {
        return Status::InvalidArgument("bad fail@ count in: " + entry);
      }
      point.mode = from ? Mode::kFailFrom : Mode::kFailNth;
    } else if (StartsWith(mode, "crash@")) {
      bool from = false;
      if (!ParseNth(mode.substr(6), &point.n, &from) || from) {
        return Status::InvalidArgument("bad crash@ count in: " + entry);
      }
      point.mode = Mode::kCrashNth;
    } else if (StartsWith(mode, "prob:")) {
      std::vector<std::string> parts = Split(mode.substr(5), ":");
      if (parts.empty() || parts.size() > 2) {
        return Status::InvalidArgument("bad prob: spec in: " + entry);
      }
      char* end = nullptr;
      point.probability = std::strtod(parts[0].c_str(), &end);
      if (end == parts[0].c_str() || point.probability < 0.0 ||
          point.probability > 1.0) {
        return Status::InvalidArgument("bad probability in: " + entry);
      }
      uint64_t seed = 0;
      if (parts.size() == 2) {
        seed = static_cast<uint64_t>(std::strtoull(parts[1].c_str(),
                                                   nullptr, 10));
      }
      point.mode = Mode::kProbabilistic;
      point.stream.seed(seed);
    } else {
      return Status::InvalidArgument("unknown fault mode: " + entry);
    }
    points_[name] = std::move(point);
  }
  active_.store(!points_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultRegistry::Clear() {
  MutexLock lock(mu_);
  points_.clear();
  active_.store(false, std::memory_order_relaxed);
}

Status FaultRegistry::Hit(const std::string& point) {
  if (!active()) return Status::OK();
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  Point& p = it->second;
  ++p.hit_count;
  bool fire = false;
  switch (p.mode) {
    case Mode::kFailNth:
      fire = p.hit_count == p.n;
      break;
    case Mode::kFailFrom:
      fire = p.hit_count >= p.n;
      break;
    case Mode::kProbabilistic: {
      std::bernoulli_distribution dist(p.probability);
      fire = dist(p.stream);
      break;
    }
    case Mode::kCrashNth:
      if (p.hit_count == p.n) {
        LOG_ERROR << "failpoint " << point << ": injected crash on hit "
                  << p.hit_count << " (exit " << kFaultCrashExitCode << ")";
        std::_Exit(kFaultCrashExitCode);
      }
      break;
  }
  if (fire) {
    LOG_WARNING << "failpoint " << point << ": injected failure on hit "
                << p.hit_count;
    return Status::Internal("injected fault at " + point + " (hit " +
                            std::to_string(p.hit_count) + ")");
  }
  return Status::OK();
}

uint64_t FaultRegistry::hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hit_count;
}

Status RetryWithBackoff(const std::function<Status()>& fn,
                        const RetryOptions& options,
                        const std::string& what) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = options.deadline != Clock::time_point{};
  Status status;
  double delay_ms = static_cast<double>(options.base_delay_ms);
  for (int attempt = 1;; ++attempt) {
    status = fn();
    if (status.ok() || status.code() != StatusCode::kInternal ||
        attempt >= options.max_attempts) {
      return status;
    }
    if (bounded) {
      Clock::time_point resume =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 delay_ms));
      if (resume >= options.deadline) {
        LOG_WARNING << "transient failure"
                    << (what.empty() ? "" : " (" + what + ")")
                    << ": retry budget exhausted by deadline after attempt "
                    << attempt << "/" << options.max_attempts << ": "
                    << status;
        return status;
      }
    }
    LOG_WARNING << "transient failure" << (what.empty() ? "" : " (" + what +
                                                              ")")
                << ", attempt " << attempt << "/" << options.max_attempts
                << ": " << status << "; retrying in " << delay_ms << "ms";
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    delay_ms *= options.multiplier;
  }
}

RetryOptions BoundDeadline(RetryOptions options,
                           std::chrono::steady_clock::time_point deadline) {
  using Clock = std::chrono::steady_clock;
  if (deadline == Clock::time_point{}) return options;
  if (options.deadline == Clock::time_point{} ||
      deadline < options.deadline) {
    options.deadline = deadline;
  }
  return options;
}

}  // namespace infuserki::util
