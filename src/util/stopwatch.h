#ifndef INFUSERKI_UTIL_STOPWATCH_H_
#define INFUSERKI_UTIL_STOPWATCH_H_

#include <chrono>

namespace infuserki::util {

/// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since the last Lap() (or construction/Reset()), and starts the
  /// next lap. Lets one stopwatch time a sequence of phases without the
  /// subtract-the-previous-total bookkeeping.
  double Lap() {
    Clock::time_point now = Clock::now();
    double seconds = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return seconds;
  }

  void Reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_STOPWATCH_H_
