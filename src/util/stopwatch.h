#ifndef INFUSERKI_UTIL_STOPWATCH_H_
#define INFUSERKI_UTIL_STOPWATCH_H_

#include <chrono>

namespace infuserki::util {

/// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace infuserki::util

#endif  // INFUSERKI_UTIL_STOPWATCH_H_
