#include "util/threadpool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace infuserki::util {
namespace {

/// Process-wide pool metrics, shared by every ThreadPool instance. Resolved
/// once; the update paths below are relaxed atomics.
struct PoolMetrics {
  obs::Counter* scheduled;
  obs::Counter* completed;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_max;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* task_seconds;
};

PoolMetrics& Metrics() {
  // Locking contract: resolved once under the magic-static guard; the
  // pointers are immutable afterwards and every metric update is a relaxed
  // atomic on the (lock-free) metric objects themselves.
  static PoolMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new PoolMetrics{
        registry.GetCounter("threadpool/tasks_scheduled"),
        registry.GetCounter("threadpool/tasks_completed"),
        registry.GetGauge("threadpool/queue_depth"),
        registry.GetGauge("threadpool/queue_depth_max"),
        registry.GetHistogram("threadpool/queue_wait_seconds"),
        registry.GetHistogram("threadpool/task_seconds")};
  }();
  return *metrics;
}

/// Set for the lifetime of each global-pool worker thread; lets nested
/// parallel loops detect they are already on a worker and run inline
/// rather than scheduling-and-waiting (which would deadlock once every
/// worker blocks in a wait).
thread_local bool t_on_global_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  Metrics();  // registers the pool metrics even if no task is ever queued
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  PoolMetrics& metrics = Metrics();
  size_t depth;
  {
    MutexLock lock(mu_);
    queue_.push(Task{std::move(fn), obs::NowMicros()});
    ++in_flight_;
    depth = queue_.size();
  }
  metrics.scheduled->Increment();
  metrics.queue_depth->Set(static_cast<double>(depth));
  metrics.queue_depth_max->UpdateMax(static_cast<double>(depth));
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  t_on_global_pool_worker = true;
  PoolMetrics& metrics = Metrics();
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    int64_t start_us = obs::NowMicros();
    metrics.queue_wait_seconds->Record(
        static_cast<double>(start_us - task.enqueue_us) * 1e-6);
    task.fn();
    metrics.task_seconds->Record(
        static_cast<double>(obs::NowMicros() - start_us) * 1e-6);
    metrics.completed->Increment();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  // Locking contract: magic-static first touch; all post-init mutable pool
  // state (queue_, in_flight_, shutting_down_) is GUARDED_BY(ThreadPool::mu_)
  // — compiler-enforced under the tsa preset (DESIGN.md §13) — and workers_
  // is immutable after construction.
  static ThreadPool* pool = [] {
    // INFUSERKI_NUM_THREADS overrides hardware concurrency — lets the TSan
    // race gate force real interleaving on single-core hosts (where the
    // parallel loops would otherwise run inline) and lets deployments pin
    // the pool width.
    size_t num_threads = 0;  // 0 -> hardware concurrency
    const char* env = std::getenv("INFUSERKI_NUM_THREADS");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') num_threads = parsed;
    }
    return new ThreadPool(num_threads);
  }();
  return *pool;
}

bool OnGlobalPoolWorker() { return t_on_global_pool_worker; }

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  ThreadPool& pool = GlobalThreadPool();
  size_t num_workers = pool.num_threads();
  if (n <= grain || num_workers <= 1 || t_on_global_pool_worker) {
    fn(0, n);
    return;
  }
  size_t num_chunks = std::min(num_workers, (n + grain - 1) / grain);
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    pool.Schedule([begin, end, &fn] { fn(begin, end); });
  }
  pool.Wait();
}

void ParallelForEach(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ThreadPool& pool = GlobalThreadPool();
  if (n == 1 || pool.num_threads() <= 1 || t_on_global_pool_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Private completion group: waits only for the tasks scheduled here, so
  // concurrent callers (and the pool's global Wait) do not interfere.
  struct Group {
    Mutex mu;
    CondVar done;
    size_t remaining GUARDED_BY(mu) = 0;
  };
  auto group = std::make_shared<Group>();
  {
    MutexLock lock(group->mu);
    group->remaining = n;
  }
  for (size_t i = 0; i < n; ++i) {
    pool.Schedule([i, group, &fn] {
      fn(i);
      MutexLock lock(group->mu);
      if (--group->remaining == 0) group->done.NotifyAll();
    });
  }
  MutexLock lock(group->mu);
  while (group->remaining != 0) group->done.Wait(group->mu);
}

}  // namespace infuserki::util
