#include "util/threadpool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace infuserki::util {
namespace {

/// Process-wide pool metrics, shared by every ThreadPool instance. Resolved
/// once; the update paths below are relaxed atomics.
struct PoolMetrics {
  obs::Counter* scheduled;
  obs::Counter* completed;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_max;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* task_seconds;
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new PoolMetrics{
        registry.GetCounter("threadpool/tasks_scheduled"),
        registry.GetCounter("threadpool/tasks_completed"),
        registry.GetGauge("threadpool/queue_depth"),
        registry.GetGauge("threadpool/queue_depth_max"),
        registry.GetHistogram("threadpool/queue_wait_seconds"),
        registry.GetHistogram("threadpool/task_seconds")};
  }();
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  Metrics();  // registers the pool metrics even if no task is ever queued
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  PoolMetrics& metrics = Metrics();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(Task{std::move(fn), obs::NowMicros()});
    ++in_flight_;
    depth = queue_.size();
  }
  metrics.scheduled->Increment();
  metrics.queue_depth->Set(static_cast<double>(depth));
  metrics.queue_depth_max->UpdateMax(static_cast<double>(depth));
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = Metrics();
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    int64_t start_us = obs::NowMicros();
    metrics.queue_wait_seconds->Record(
        static_cast<double>(start_us - task.enqueue_us) * 1e-6);
    task.fn();
    metrics.task_seconds->Record(
        static_cast<double>(obs::NowMicros() - start_us) * 1e-6);
    metrics.completed->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  ThreadPool& pool = GlobalThreadPool();
  size_t num_workers = pool.num_threads();
  if (n <= grain || num_workers <= 1) {
    fn(0, n);
    return;
  }
  size_t num_chunks = std::min(num_workers, (n + grain - 1) / grain);
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    pool.Schedule([begin, end, &fn] { fn(begin, end); });
  }
  pool.Wait();
}

}  // namespace infuserki::util
