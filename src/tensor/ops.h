#ifndef INFUSERKI_TENSOR_OPS_H_
#define INFUSERKI_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace infuserki::tensor {

// Differentiable operators. All functions build autograd graph nodes when
// grad mode is on (see NoGradGuard) and some input requires grad.
//
// Broadcasting for the binary elementwise ops supports three cases:
//   * identical shapes,
//   * `b` is a scalar (one element),
//   * `b`'s shape is a suffix of `a`'s shape (e.g. bias [D] against [T, D]).

/// Elementwise a + b.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) a * b.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a + s elementwise.
Tensor AddScalar(const Tensor& a, float s);

/// a * s elementwise.
Tensor MulScalar(const Tensor& a, float s);

/// Matrix product [m, k] x [k, n] -> [m, n].
Tensor Matmul(const Tensor& a, const Tensor& b);

/// Matrix product with transposed rhs: [m, k] x [n, k]^T -> [m, n]. This is
/// the natural layout for weight matrices stored as [out, in].
Tensor MatmulNT(const Tensor& a, const Tensor& b);

/// 2-D transpose (copies).
Tensor Transpose(const Tensor& a);

/// Same data, new shape (NumElements must match).
Tensor Reshape(const Tensor& a, Shape shape);

// -- Nonlinearities --------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);
Tensor Silu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

/// Row-wise softmax over the last dimension of a 2-D tensor.
Tensor Softmax(const Tensor& a);

// -- Normalization ---------------------------------------------------------

/// RMSNorm over the last dimension: y = x / rms(x) * weight, rows of a 2-D
/// input normalized independently. `weight` has shape {D}.
Tensor RmsNorm(const Tensor& x, const Tensor& weight, float eps = 1e-5f);

/// LayerNorm over the last dimension with affine parameters {D}.
Tensor LayerNorm(const Tensor& x, const Tensor& weight, const Tensor& bias,
                 float eps = 1e-5f);

// -- Indexing --------------------------------------------------------------

/// Gathers rows `ids` of `table` [V, D] -> [ids.size(), D]. Backward
/// scatter-adds into the table rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Selects rows of a 2-D tensor -> [rows.size(), D].
Tensor GatherRows(const Tensor& a, const std::vector<int>& rows);

/// Concatenates two 1-D tensors.
Tensor Concat1d(const Tensor& a, const Tensor& b);

/// Concatenates two 2-D tensors along rows (same column count).
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// Contiguous row slice of a 2-D tensor: rows [start, start + count) ->
/// [count, D]. Backward scatter-adds into the sliced rows. This is the
/// ragged-batch unpacking primitive: a packed [sum_T, D] batch is cut back
/// into per-row [T_r, D] views for per-row attention.
Tensor SliceRows(const Tensor& a, size_t start, size_t count);

// -- Reductions ------------------------------------------------------------

/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& a);

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& a);

/// Column means of a 2-D tensor [n, d] -> {d}. This is the paper's
/// Mean(H_P^l) over the sequence dimension (Eq. 4).
Tensor MeanAxis0(const Tensor& a);

// -- Losses ----------------------------------------------------------------

/// Token-averaged cross entropy of logits [T, V] against integer targets.
/// Positions whose target equals `ignore_index` contribute nothing.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index = -1);

/// Mean binary cross entropy with logits (numerically stable).
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

// -- Attention -------------------------------------------------------------

/// Fused causal multi-head self-attention.
///
/// q has shape [Tq, D]; k and v have shape [Tk, D] with
/// Tk == prefix_len + Tq. The first `prefix_len` key/value rows form an
/// always-visible prefix (used by prefix tuning); beyond the prefix the mask
/// is causal: query i attends to keys j with j < prefix_len + i + 1.
/// `num_heads` must divide D.
Tensor CausalSelfAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                           size_t num_heads, size_t prefix_len = 0);

/// Ragged batched causal attention (DESIGN.md §11): one kernel call for a
/// whole batch of independent sequences. `q` packs every row's query chunk
/// as [sum(row_lens), D]; `keys[r]` / `values[r]` hold row r's FULL key /
/// value rows (cached prefix followed by the row's new rows, shape
/// [prefix_r + row_lens[r], D]). Each output row block is computed with
/// arithmetic identical to CausalSelfAttention(q_r, keys[r], values[r],
/// num_heads, prefix_r) — same scan order, same softmax — so the packed
/// result is, row for row, bit-identical to per-sequence kernel calls.
/// Rows fan out over the global thread pool. Inference-only: requires grad
/// recording to be off (no backward pass is defined).
Tensor CausalSelfAttentionRagged(const Tensor& q,
                                 const std::vector<Tensor>& keys,
                                 const std::vector<Tensor>& values,
                                 const std::vector<size_t>& row_lens,
                                 size_t num_heads);

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_OPS_H_
