#ifndef INFUSERKI_TENSOR_OPTIMIZER_H_
#define INFUSERKI_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"
#include "util/status.h"

namespace infuserki::tensor {

/// Rescales gradients of `params` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

/// Optimizer base: holds the parameter list and zeroes gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Decoupled weight decay Adam (Loshchilov & Hutter, 2018) — the optimizer
/// used in the paper's experiments (§4.1).
class AdamW : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
  };

  AdamW(std::vector<Tensor> params, Options options);

  void Step() override;

  /// Appends the full optimizer state — parameter values, first/second
  /// moments, and the bias-correction step counter — to `writer`,
  /// positionally (parameter i of the writing optimizer restores into
  /// parameter i of the reading one). Hyperparameters are not serialized;
  /// the learning rate is re-derived by the caller's schedule.
  void Serialize(util::BinaryWriter* writer) const;

  /// Restores state written by Serialize() into this optimizer's parameters
  /// (writing through the shared tensor storage, i.e. into the model) and
  /// moments. Transactional: everything is read and shape-checked against
  /// the current parameter list before any value is committed, so a failed
  /// load leaves parameters and moments untouched.
  util::Status Deserialize(util::BinaryReader* reader);

  /// Learning-rate override for warmup/decay schedules.
  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

 private:
  Options options_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Plain SGD with optional momentum; used by tests and a couple of
/// baselines' inner loops.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_OPTIMIZER_H_
