#ifndef INFUSERKI_TENSOR_CHECKPOINT_H_
#define INFUSERKI_TENSOR_CHECKPOINT_H_

#include <string>
#include <vector>

#include "tensor/nn.h"
#include "util/serialize.h"
#include "util/status.h"

namespace infuserki::tensor {

/// Appends `params` (names, shapes, data) to an open binary stream.
void WriteParameters(const std::vector<NamedParameter>& params,
                     util::BinaryWriter* writer);

/// Reads a parameter block written by WriteParameters into `params` in
/// place. Strict: every stored name must match a parameter of identical
/// shape and the counts must agree.
util::Status ReadParametersInto(std::vector<NamedParameter> params,
                                util::BinaryReader* reader);

/// Whole-file convenience wrappers.
util::Status SaveParameters(const std::vector<NamedParameter>& params,
                            const std::string& path);
util::Status LoadParameters(std::vector<NamedParameter> params,
                            const std::string& path);

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_CHECKPOINT_H_
