#ifndef INFUSERKI_TENSOR_CHECKPOINT_H_
#define INFUSERKI_TENSOR_CHECKPOINT_H_

#include <string>
#include <vector>

#include "tensor/nn.h"
#include "util/serialize.h"
#include "util/status.h"

namespace infuserki::tensor {

/// Borrowing contract: a `std::vector<NamedParameter>` here is a cheap
/// *view* of the model's parameters — each NamedParameter::tensor is a
/// shared handle onto storage the model owns (Module::NamedParameters()
/// materializes a fresh vector of such handles per call). Readers write
/// through the handles in place; nothing ever takes ownership, so the
/// functions below take the vector by const reference.

/// Appends `params` (names, shapes, data) to an open binary stream.
void WriteParameters(const std::vector<NamedParameter>& params,
                     util::BinaryWriter* writer);

/// Reads a parameter block written by WriteParameters into `params`' shared
/// tensor storage. Strict: every stored name must match a parameter of
/// identical shape and the counts must agree. No tensor is modified unless
/// its stored counterpart fully decodes.
util::Status ReadParametersInto(const std::vector<NamedParameter>& params,
                                util::BinaryReader* reader);

/// Whole-file convenience wrappers over the framed v2 format: SaveParameters
/// publishes atomically (failpoint "ckpt/write"); LoadParameters rejects any
/// truncated or bit-flipped file with kDataLoss before parsing (see
/// util/serialize.h).
util::Status SaveParameters(const std::vector<NamedParameter>& params,
                            const std::string& path);
util::Status LoadParameters(const std::vector<NamedParameter>& params,
                            const std::string& path);

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_CHECKPOINT_H_
