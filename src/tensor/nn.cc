#include "tensor/nn.h"

#include <cmath>

namespace infuserki::tensor {

std::vector<NamedParameter> Module::NamedParameters() const {
  std::vector<NamedParameter> out = own_params_;
  for (const auto& [prefix, child] : children_) {
    for (NamedParameter& p : child->NamedParameters()) {
      out.push_back({prefix + "." + std::move(p.name), p.tensor});
    }
  }
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const NamedParameter& p : NamedParameters()) out.push_back(p.tensor);
  return out;
}

void Module::SetTrainable(bool trainable) {
  for (NamedParameter& p : NamedParameters()) {
    p.tensor.set_requires_grad(trainable);
  }
}

size_t Module::NumParameters() const {
  size_t n = 0;
  for (const NamedParameter& p : NamedParameters()) n += p.tensor.size();
  return n;
}

void Module::RegisterParameter(std::string name, Tensor tensor) {
  CHECK(tensor.defined());
  own_params_.push_back({std::move(name), std::move(tensor)});
}

void Module::RegisterModule(std::string name, Module* module) {
  CHECK(module != nullptr);
  children_.emplace_back(std::move(name), module);
}

Linear::Linear(size_t in_features, size_t out_features, util::Rng* rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  weight_ = Tensor::RandUniform({out_features, in_features}, rng, -bound,
                                bound, /*requires_grad=*/true);
  RegisterParameter("weight", weight_);
  if (with_bias) {
    bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
    RegisterParameter("bias", bias_);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CHECK_EQ(x.rank(), size_t{2});
  CHECK_EQ(x.dim(1), in_features_);
  Tensor y = MatmulNT(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  if (lora_ != nullptr) {
    Tensor delta = MatmulNT(MatmulNT(x, lora_->a), lora_->b);
    y = Add(y, MulScalar(delta, lora_->scale));
  }
  return y;
}

float Linear::QuantizeWeights(size_t block_size) {
  CHECK_GT(block_size, size_t{0});
  float* w = weight_.data();
  size_t n = weight_.size();
  double total_err = 0.0;
  for (size_t begin = 0; begin < n; begin += block_size) {
    size_t end = std::min(begin + block_size, n);
    float absmax = 0.0f;
    for (size_t i = begin; i < end; ++i) {
      absmax = std::max(absmax, std::fabs(w[i]));
    }
    // Symmetric int4: levels -7..7 (level -8 unused, like NF4's asymmetric
    // variant this keeps zero exactly representable).
    float scale = absmax > 0.0f ? absmax / 7.0f : 1.0f;
    for (size_t i = begin; i < end; ++i) {
      float q = std::round(w[i] / scale);
      q = std::min(7.0f, std::max(-7.0f, q));
      float dq = q * scale;
      total_err += std::fabs(dq - w[i]);
      w[i] = dq;
    }
  }
  return static_cast<float>(total_err / static_cast<double>(n));
}

Embedding::Embedding(size_t num_embeddings, size_t dim, util::Rng* rng,
                     float init_stddev)
    : num_embeddings_(num_embeddings), dim_(dim) {
  table_ = Tensor::Randn({num_embeddings, dim}, rng, init_stddev,
                         /*requires_grad=*/true);
  RegisterParameter("table", table_);
}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return EmbeddingLookup(table_, ids);
}

Mlp::Mlp(size_t in_features, size_t hidden, size_t out_features,
         util::Rng* rng, Activation activation)
    : activation_(activation),
      fc1_(in_features, hidden, rng),
      fc2_(hidden, out_features, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = fc1_.Forward(x);
  switch (activation_) {
    case Activation::kRelu:
      h = Relu(h);
      break;
    case Activation::kTanh:
      h = Tanh(h);
      break;
    case Activation::kGelu:
      h = Gelu(h);
      break;
    case Activation::kSilu:
      h = Silu(h);
      break;
  }
  return fc2_.Forward(h);
}

std::shared_ptr<LoraDelta> MakeLoraDelta(size_t in_features,
                                         size_t out_features, size_t rank,
                                         float scale, util::Rng* rng) {
  auto delta = std::make_shared<LoraDelta>();
  float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  delta->a = Tensor::RandUniform({rank, in_features}, rng, -bound, bound,
                                 /*requires_grad=*/true);
  delta->b = Tensor::Zeros({out_features, rank}, /*requires_grad=*/true);
  delta->scale = scale;
  return delta;
}

}  // namespace infuserki::tensor
