#include "tensor/optimizer.h"

#include <cmath>
#include <cstring>
#include <string>

namespace infuserki::tensor {

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double sum_sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.grad()) sum_sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(sum_sq));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const Tensor& p : params) {
      // Tensor handles share storage; the const handle still exposes the
      // gradient buffer through impl().
      auto& grad = p.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) CHECK(p.defined());
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

AdamW::AdamW(std::vector<Tensor> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void AdamW::Step() {
  ++step_;
  float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;  // untouched this step
    float* w = p.data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < p.size(); ++j) {
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g[j];
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g[j] * g[j];
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      // Decoupled weight decay: applied to the weight directly, not the
      // gradient (AdamW's defining property).
      w[j] -= options_.lr *
              (m_hat / (std::sqrt(v_hat) + options_.eps) +
               options_.weight_decay * w[j]);
    }
  }
}

void AdamW::Serialize(util::BinaryWriter* writer) const {
  writer->WriteU64(params_.size());
  writer->WriteU64(static_cast<uint64_t>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    writer->WriteFloatVector(params_[i].vec());
    writer->WriteFloatVector(m_[i]);
    writer->WriteFloatVector(v_[i]);
  }
}

util::Status AdamW::Deserialize(util::BinaryReader* reader) {
  const uint64_t count = reader->ReadU64();
  const uint64_t step = reader->ReadU64();
  if (!reader->ok()) {
    return util::Status::DataLoss("truncated optimizer state");
  }
  if (count != params_.size()) {
    return util::Status::InvalidArgument(
        "optimizer state has " + std::to_string(count) +
        " parameters, this optimizer has " +
        std::to_string(params_.size()));
  }
  // Stage everything before committing so a bad blob cannot leave the
  // optimizer (or the model sharing the parameter storage) half-restored.
  std::vector<std::vector<float>> weights(count), m(count), v(count);
  for (uint64_t i = 0; i < count; ++i) {
    weights[i] = reader->ReadFloatVector();
    m[i] = reader->ReadFloatVector();
    v[i] = reader->ReadFloatVector();
    if (!reader->ok()) {
      return util::Status::DataLoss("truncated optimizer state");
    }
    if (weights[i].size() != params_[i].size() ||
        m[i].size() != params_[i].size() ||
        v[i].size() != params_[i].size()) {
      return util::Status::InvalidArgument(
          "optimizer state size mismatch for parameter " +
          std::to_string(i));
    }
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(params_[i].data(), weights[i].data(),
                weights[i].size() * sizeof(float));
    m_[i] = std::move(m[i]);
    v_[i] = std::move(v[i]);
  }
  step_ = static_cast<int64_t>(step);
  return util::Status::OK();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(params_[i].size(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;
    float* w = p.data();
    const float* g = p.grad().data();
    if (momentum_ == 0.0f) {
      for (size_t j = 0; j < p.size(); ++j) w[j] -= lr_ * g[j];
    } else {
      float* vel = velocity_[i].data();
      for (size_t j = 0; j < p.size(); ++j) {
        vel[j] = momentum_ * vel[j] + g[j];
        w[j] -= lr_ * vel[j];
      }
    }
  }
}

}  // namespace infuserki::tensor
