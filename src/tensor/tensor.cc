#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace infuserki::tensor {

size_t NumElements(const Shape& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  CHECK(!shape.empty()) << "rank-0 tensors are not supported";
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->data.assign(NumElements(shape), value);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(Shape shape, std::vector<float> data,
                        bool requires_grad) {
  CHECK(!shape.empty()) << "rank-0 tensors are not supported";
  CHECK_EQ(NumElements(shape), data.size())
      << "shape " << ShapeToString(shape) << " does not match data size";
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

Tensor Tensor::Randn(Shape shape, util::Rng* rng, float stddev,
                     bool requires_grad) {
  CHECK(rng != nullptr);
  std::vector<float> data(NumElements(shape));
  for (float& v : data) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return FromData(std::move(shape), std::move(data), requires_grad);
}

Tensor Tensor::RandUniform(Shape shape, util::Rng* rng, float lo, float hi,
                           bool requires_grad) {
  CHECK(rng != nullptr);
  std::vector<float> data(NumElements(shape));
  for (float& v : data) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return FromData(std::move(shape), std::move(data), requires_grad);
}

void Tensor::Backward() {
  CHECK(defined());
  CHECK_EQ(size(), size_t{1}) << "Backward() requires a scalar loss";
  CHECK(requires_grad()) << "Backward() on a tensor with no grad history";

  // Topological order via iterative post-order DFS over parents.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent =
          frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->MutableGrad()[0] = 1.0f;
  // Reverse topological order: node gradients are complete before their
  // backward functions scatter into parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn();
    }
  }
}

void Tensor::ZeroGrad() const {
  CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  CHECK(defined());
  return FromData(impl_->shape, impl_->data, /*requires_grad=*/false);
}

Tensor Tensor::MakeOpResult(
    Shape shape, std::vector<float> data, std::vector<Tensor> parents,
    const std::function<void(internal::TensorImpl*)>& make_backward) {
  Tensor result = FromData(std::move(shape), std::move(data));
  bool needs_grad = false;
  if (GradEnabled()) {
    for (const Tensor& parent : parents) {
      if (parent.defined() && parent.requires_grad()) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    result.impl_->requires_grad = true;
    result.impl_->parents.reserve(parents.size());
    for (const Tensor& parent : parents) {
      if (parent.defined()) result.impl_->parents.push_back(parent.impl());
    }
    make_backward(result.impl_.get());
  }
  return result;
}

}  // namespace infuserki::tensor
