#ifndef INFUSERKI_TENSOR_NN_H_
#define INFUSERKI_TENSOR_NN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace infuserki::tensor {

/// A named trainable tensor, as exposed by Module::NamedParameters().
struct NamedParameter {
  std::string name;
  Tensor tensor;
};

/// Base class for parameterized components. Subclasses register their
/// parameters and child modules in their constructors; NamedParameters()
/// then walks the tree producing "child.param"-style names used by
/// checkpoints and optimizers.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, prefixed with the
  /// registration path.
  std::vector<NamedParameter> NamedParameters() const;

  /// Convenience: the tensors only.
  std::vector<Tensor> Parameters() const;

  /// Flips requires_grad on every parameter (freeze = false).
  void SetTrainable(bool trainable);

  /// Total number of parameter scalars.
  size_t NumParameters() const;

 protected:
  void RegisterParameter(std::string name, Tensor tensor);
  void RegisterModule(std::string name, Module* module);

 private:
  std::vector<NamedParameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

/// Low-rank (LoRA) delta attached to a Linear: y += scale * x A^T B^T.
struct LoraDelta {
  Tensor a;  // [rank, in_features]
  Tensor b;  // [out_features, rank]
  float scale = 1.0f;
};

/// Fully-connected layer storing weights as [out_features, in_features].
///
/// Supports two post-hoc modifications used by the PEFT baselines:
///   * AttachLora()/DetachLora() adds a trainable low-rank delta while the
///     base weight stays frozen (LoRA);
///   * QuantizeWeights() replaces the base weight by its blockwise-int4
///     quantize-dequantize image (QLoRA's frozen 4-bit base).
class Linear : public Module {
 public:
  /// Kaiming-uniform initialized weight, zero bias (if with_bias).
  Linear(size_t in_features, size_t out_features, util::Rng* rng,
         bool with_bias = true);

  /// y = x W^T (+ bias) (+ LoRA delta). x: [T, in] -> [T, out].
  Tensor Forward(const Tensor& x) const;

  void AttachLora(std::shared_ptr<LoraDelta> delta) {
    lora_ = std::move(delta);
  }
  void DetachLora() { lora_.reset(); }
  bool has_lora() const { return lora_ != nullptr; }

  /// In-place blockwise absmax int4 quantize-dequantize of the weight.
  /// Returns the mean absolute quantization error (for tests/diagnostics).
  float QuantizeWeights(size_t block_size = 32);

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out] or undefined
  std::shared_ptr<LoraDelta> lora_;
};

/// Token-or-position embedding table.
class Embedding : public Module {
 public:
  Embedding(size_t num_embeddings, size_t dim, util::Rng* rng,
            float init_stddev = 0.02f);

  /// Rows for `ids` -> [ids.size(), dim].
  Tensor Forward(const std::vector<int>& ids) const;

  const Tensor& table() const { return table_; }
  size_t num_embeddings() const { return num_embeddings_; }
  size_t dim() const { return dim_; }

 private:
  size_t num_embeddings_;
  size_t dim_;
  Tensor table_;
};

/// Two-layer MLP with a configurable hidden activation and sigmoid-free
/// output (caller applies the loss/nonlinearity). Used by the Infuser
/// (Eq. 4) and the RC projection heads (Eq. 9).
class Mlp : public Module {
 public:
  enum class Activation { kRelu, kTanh, kGelu, kSilu };

  Mlp(size_t in_features, size_t hidden, size_t out_features, util::Rng* rng,
      Activation activation = Activation::kTanh);

  Tensor Forward(const Tensor& x) const;

 private:
  Activation activation_;
  Linear fc1_;
  Linear fc2_;
};

/// Helper shared by LoRA-style initializers: A ~ kaiming, B = 0 so the
/// delta starts as a no-op.
std::shared_ptr<LoraDelta> MakeLoraDelta(size_t in_features,
                                         size_t out_features, size_t rank,
                                         float scale, util::Rng* rng);

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_NN_H_
