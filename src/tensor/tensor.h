#ifndef INFUSERKI_TENSOR_TENSOR_H_
#define INFUSERKI_TENSOR_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace infuserki::tensor {

/// Dense row-major shape; rank 0 is disallowed (scalars are shape {1}).
using Shape = std::vector<size_t>;

/// Number of elements in `shape`.
size_t NumElements(const Shape& shape);

/// "[2, 3]"-style rendering for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor;

namespace internal {

/// Reference-counted tensor storage plus autograd bookkeeping.
///
/// A TensorImpl is a node in a dynamically built computation graph: `parents`
/// holds the inputs of the op that produced this node and `backward_fn`
/// scatters this node's gradient into the parents' gradients. Leaf tensors
/// (parameters, constants) have no parents.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // lazily allocated by MutableGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;

  float* MutableGrad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
    return grad.data();
  }
};

}  // namespace internal

/// Whether newly created ops record the autograd graph on this thread.
bool GradEnabled();

/// RAII scope that disables graph recording (inference / evaluation mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Value-semantic handle to a tensor node. Copies share storage (like
/// torch.Tensor); a default-constructed Tensor is "undefined" and usable
/// only for defined() checks.
class Tensor {
 public:
  Tensor() = default;

  // -- Construction -------------------------------------------------------

  /// Allocates a zero-filled tensor.
  static Tensor Zeros(Shape shape, bool requires_grad = false);

  /// Allocates a tensor filled with `value`.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);

  /// Wraps existing data; `data.size()` must equal NumElements(shape).
  static Tensor FromData(Shape shape, std::vector<float> data,
                         bool requires_grad = false);

  /// Scalar convenience (shape {1}).
  static Tensor Scalar(float value, bool requires_grad = false);

  /// I.i.d. normal entries.
  static Tensor Randn(Shape shape, util::Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);

  /// I.i.d. uniform entries in [lo, hi).
  static Tensor RandUniform(Shape shape, util::Rng* rng, float lo, float hi,
                            bool requires_grad = false);

  // -- Accessors -----------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  size_t size() const { return impl_->data.size(); }
  size_t dim(size_t i) const { return impl_->shape[i]; }
  size_t rank() const { return impl_->shape.size(); }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  const std::vector<float>& vec() const { return impl_->data; }

  /// Gradient buffer; undefined before the first Backward() that reaches
  /// this node. Empty vector means "no gradient accumulated yet".
  const std::vector<float>& grad() const { return impl_->grad; }

  bool requires_grad() const { return impl_->requires_grad; }

  /// Toggles gradient tracking on a leaf tensor (used to freeze / unfreeze
  /// parameters). Must not be called on op results.
  void set_requires_grad(bool value) {
    CHECK(impl_->parents.empty())
        << "set_requires_grad on non-leaf tensor";
    impl_->requires_grad = value;
  }

  /// Value of a single-element tensor.
  float item() const {
    CHECK_EQ(size(), size_t{1}) << "item() on non-scalar";
    return impl_->data[0];
  }

  /// Element accessors for 2-D tensors (row-major).
  float at(size_t r, size_t c) const {
    DCHECK_EQ(rank(), size_t{2});
    return impl_->data[r * dim(1) + c];
  }

  // -- Autograd ------------------------------------------------------------

  /// Runs reverse-mode accumulation from this scalar node. Seeds d(this)=1.
  void Backward();

  /// Clears this node's accumulated gradient. Const in the shared-storage
  /// sense (handles share state, like torch.Tensor).
  void ZeroGrad() const;

  /// Returns a graph-detached copy sharing no autograd history (data is
  /// copied so later in-place updates do not alias).
  Tensor Detach() const;

  /// Low-level: internal node access for op implementations.
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

  /// Creates an op result node. `backward_fn` must scatter `result.grad`
  /// into the parents; it is only attached when grad mode is on and some
  /// parent requires grad.
  static Tensor MakeOpResult(
      Shape shape, std::vector<float> data,
      std::vector<Tensor> parents,
      const std::function<void(internal::TensorImpl*)>& make_backward);

 private:
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TensorImpl> impl_;
};

}  // namespace infuserki::tensor

#endif  // INFUSERKI_TENSOR_TENSOR_H_
