#include "tensor/checkpoint.h"

#include <cstring>
#include <map>

namespace infuserki::tensor {
namespace {

constexpr uint32_t kMagic = 0x494b4331;  // "IKC1"

}  // namespace

void WriteParameters(const std::vector<NamedParameter>& params,
                     util::BinaryWriter* writer) {
  writer->WriteU32(kMagic);
  writer->WriteU64(params.size());
  for (const NamedParameter& p : params) {
    writer->WriteString(p.name);
    writer->WriteU64(p.tensor.rank());
    for (size_t i = 0; i < p.tensor.rank(); ++i) {
      writer->WriteU64(p.tensor.dim(i));
    }
    writer->WriteFloatVector(p.tensor.vec());
  }
}

util::Status ReadParametersInto(const std::vector<NamedParameter>& params,
                                util::BinaryReader* reader) {
  const std::string& path = reader->path();
  uint32_t magic = reader->ReadU32();
  if (!reader->ok() || magic != kMagic) {
    return util::Status::DataLoss("bad parameter-block magic in " + path);
  }
  uint64_t count = reader->ReadU64();
  if (!reader->ok()) return util::Status::DataLoss("truncated " + path);
  if (count != params.size()) {
    return util::Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  std::map<std::string, Tensor> by_name;
  for (const NamedParameter& p : params) {
    auto [it, inserted] = by_name.emplace(p.name, p.tensor);
    (void)it;
    if (!inserted) {
      return util::Status::InvalidArgument("duplicate parameter " + p.name);
    }
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name = reader->ReadString();
    uint64_t rank = reader->ReadU64();
    if (!reader->ok() || rank > 8) {
      return util::Status::DataLoss("truncated tensor header in " + path);
    }
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) shape[d] = reader->ReadU64();
    std::vector<float> data = reader->ReadFloatVector();
    if (!reader->ok()) {
      return util::Status::DataLoss("truncated tensor data in " + path);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::NotFound("checkpoint tensor " + name +
                                    " not present in model");
    }
    Tensor& target = it->second;
    if (target.shape() != shape || target.size() != data.size()) {
      return util::Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          ShapeToString(shape) + " vs model " +
          ShapeToString(target.shape()));
    }
    std::memcpy(target.data(), data.data(), data.size() * sizeof(float));
  }
  return util::Status::OK();
}

util::Status SaveParameters(const std::vector<NamedParameter>& params,
                            const std::string& path) {
  util::BinaryWriter writer(path, "ckpt/write");
  WriteParameters(params, &writer);
  return writer.Finish();
}

util::Status LoadParameters(const std::vector<NamedParameter>& params,
                            const std::string& path) {
  util::BinaryReader reader(path);
  // NotFound for a missing file, kDataLoss for a torn or corrupt frame.
  if (!reader.ok()) return reader.status();
  return ReadParametersInto(params, &reader);
}

}  // namespace infuserki::tensor
