#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/threadpool.h"

namespace infuserki::tensor {
namespace {

using internal::TensorImpl;

constexpr size_t kParallelGrain = 8;

// GEMMs below this many multiply-adds run inline: thread-pool dispatch
// (schedule + wait) costs more than the arithmetic itself. Partitioning
// only splits output rows across threads — each element's accumulation
// order is unchanged — so the inline/parallel choice never changes results.
constexpr size_t kGemmParallelMinWork = 1 << 15;

size_t GemmRowGrain(size_t m, size_t k, size_t n) {
  return (m * k * n < kGemmParallelMinWork) ? m : kParallelGrain;
}

/// Op counters for the hot kernels, resolved once per process. Each kernel
/// call costs two relaxed atomic adds — noise next to the O(m*k*n) work.
struct OpMetrics {
  obs::Counter* matmul_ops;      // forward Matmul/MatmulNT calls
  obs::Counter* gemm_calls;      // every GEMM kernel (incl. backward)
  obs::Counter* gemm_flops;      // 2*m*k*n per GEMM kernel call
  obs::Counter* softmax_ops;
  obs::Counter* softmax_rows;
  obs::Counter* attention_ops;   // forward CausalSelfAttention calls
  obs::Counter* attention_flops; // ~4*Tq*Tk*d per forward call
};

OpMetrics& Metrics() {
  static OpMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new OpMetrics{registry.GetCounter("tensor/matmul_ops"),
                         registry.GetCounter("tensor/gemm_calls"),
                         registry.GetCounter("tensor/gemm_flops"),
                         registry.GetCounter("tensor/softmax_ops"),
                         registry.GetCounter("tensor/softmax_rows"),
                         registry.GetCounter("tensor/attention_ops"),
                         registry.GetCounter("tensor/attention_flops")};
  }();
  return *metrics;
}

void CountGemm(size_t m, size_t k, size_t n) {
  OpMetrics& metrics = Metrics();
  metrics.gemm_calls->Increment();
  metrics.gemm_flops->Increment(2 * m * k * n);
}

// Returns true when `b` broadcasts against `a` as a suffix shape.
bool IsSuffixShape(const Shape& a, const Shape& b) {
  if (b.size() > a.size()) return false;
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[b.size() - 1 - i] != a[a.size() - 1 - i]) return false;
  }
  return true;
}

enum class BroadcastKind { kSame, kScalar, kSuffix };

BroadcastKind CheckBroadcast(const Tensor& a, const Tensor& b,
                             const char* op_name) {
  if (a.shape() == b.shape()) return BroadcastKind::kSame;
  if (b.size() == 1) return BroadcastKind::kScalar;
  CHECK(IsSuffixShape(a.shape(), b.shape()))
      << op_name << ": incompatible shapes " << ShapeToString(a.shape())
      << " vs " << ShapeToString(b.shape());
  return BroadcastKind::kSuffix;
}

// C[m,n] += A[m,k] * B[k,n]
void GemmAcc(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n) {
  CountGemm(m, k, n);
  util::ParallelFor(m, GemmRowGrain(m, k, n), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* c_row = c + i * n;
      const float* a_row = a + i * k;
      for (size_t p = 0; p < k; ++p) {
        float av = a_row[p];
        if (av == 0.0f) continue;
        const float* b_row = b + p * n;
        for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  });
}

// C[m,n] += A[m,k] * B[n,k]^T
void GemmNTAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  CountGemm(m, k, n);
  util::ParallelFor(m, GemmRowGrain(m, k, n), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (size_t j = 0; j < n; ++j) {
        const float* b_row = b + j * k;
        float acc = 0.0f;
        for (size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += acc;
      }
    }
  });
}

// C[k,n] += A[m,k]^T * B[m,n]
void GemmTNAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  CountGemm(m, k, n);
  util::ParallelFor(k, (m * k * n < kGemmParallelMinWork) ? k : kParallelGrain,
                    [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      float* c_row = c + p * n;
      for (size_t i = 0; i < m; ++i) {
        float av = a[i * k + p];
        if (av == 0.0f) continue;
        const float* b_row = b + i * n;
        for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  });
}

// Elementwise unary op with pointwise derivative computed from saved
// input and/or output values.
template <typename ForwardFn, typename BackwardFn>
Tensor UnaryOp(const Tensor& a, ForwardFn fwd, BackwardFn bwd) {
  std::vector<float> out(a.size());
  const float* in = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(in[i]);
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a}, [a, bwd](TensorImpl* result) {
        result->backward_fn = [a, bwd, result]() {
          if (!a.requires_grad()) return;
          float* agrad = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          const float* x = a.data();
          const float* y = result->data.data();
          for (size_t i = 0; i < result->data.size(); ++i) {
            agrad[i] += g[i] * bwd(x[i], y[i]);
          }
        };
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBroadcast(a, b, "Add");
  std::vector<float> out(a.vec());
  const float* bp = b.data();
  size_t bn = b.size();
  if (kind == BroadcastKind::kScalar) {
    for (float& v : out) v += bp[0];
  } else {
    for (size_t i = 0; i < out.size(); ++i) out[i] += bp[i % bn];
  }
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a, b}, [a, b](TensorImpl* result) {
        result->backward_fn = [a, b, result]() {
          const float* g = result->grad.data();
          size_t n = result->data.size();
          if (a.requires_grad()) {
            float* ag = a.impl()->MutableGrad();
            for (size_t i = 0; i < n; ++i) ag[i] += g[i];
          }
          if (b.requires_grad()) {
            float* bg = b.impl()->MutableGrad();
            size_t bn = b.size();
            for (size_t i = 0; i < n; ++i) bg[i % bn] += g[i];
          }
        };
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBroadcast(a, b, "Sub");
  std::vector<float> out(a.vec());
  const float* bp = b.data();
  size_t bn = b.size();
  if (kind == BroadcastKind::kScalar) {
    for (float& v : out) v -= bp[0];
  } else {
    for (size_t i = 0; i < out.size(); ++i) out[i] -= bp[i % bn];
  }
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a, b}, [a, b](TensorImpl* result) {
        result->backward_fn = [a, b, result]() {
          const float* g = result->grad.data();
          size_t n = result->data.size();
          if (a.requires_grad()) {
            float* ag = a.impl()->MutableGrad();
            for (size_t i = 0; i < n; ++i) ag[i] += g[i];
          }
          if (b.requires_grad()) {
            float* bg = b.impl()->MutableGrad();
            size_t bn = b.size();
            for (size_t i = 0; i < n; ++i) bg[i % bn] -= g[i];
          }
        };
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBroadcast(a, b, "Mul");
  std::vector<float> out(a.vec());
  const float* bp = b.data();
  size_t bn = b.size();
  if (kind == BroadcastKind::kScalar) {
    for (float& v : out) v *= bp[0];
  } else {
    for (size_t i = 0; i < out.size(); ++i) out[i] *= bp[i % bn];
  }
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a, b}, [a, b](TensorImpl* result) {
        result->backward_fn = [a, b, result]() {
          const float* g = result->grad.data();
          const float* ap = a.data();
          const float* bp = b.data();
          size_t n = result->data.size();
          size_t bn = b.size();
          if (a.requires_grad()) {
            float* ag = a.impl()->MutableGrad();
            for (size_t i = 0; i < n; ++i) ag[i] += g[i] * bp[i % bn];
          }
          if (b.requires_grad()) {
            float* bg = b.impl()->MutableGrad();
            for (size_t i = 0; i < n; ++i) bg[i % bn] += g[i] * ap[i];
          }
        };
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out(a.vec());
  for (float& v : out) v += s;
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a}, [a](TensorImpl* result) {
        result->backward_fn = [a, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t i = 0; i < result->data.size(); ++i) ag[i] += g[i];
        };
      });
}

Tensor MulScalar(const Tensor& a, float s) {
  std::vector<float> out(a.vec());
  for (float& v : out) v *= s;
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a}, [a, s](TensorImpl* result) {
        result->backward_fn = [a, s, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t i = 0; i < result->data.size(); ++i) ag[i] += g[i] * s;
        };
      });
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), size_t{2});
  CHECK_EQ(b.rank(), size_t{2});
  CHECK_EQ(a.dim(1), b.dim(0)) << "Matmul: " << ShapeToString(a.shape())
                               << " x " << ShapeToString(b.shape());
  size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Metrics().matmul_ops->Increment();
  std::vector<float> out(m * n, 0.0f);
  GemmAcc(a.data(), b.data(), out.data(), m, k, n);
  return Tensor::MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl* result) {
        result->backward_fn = [a, b, m, k, n, result]() {
          const float* g = result->grad.data();
          // dA = dC * B^T ; dB = A^T * dC
          if (a.requires_grad()) {
            GemmNTAcc(g, b.data(), a.impl()->MutableGrad(), m, n, k);
          }
          if (b.requires_grad()) {
            GemmTNAcc(a.data(), g, b.impl()->MutableGrad(), m, k, n);
          }
        };
      });
}

Tensor MatmulNT(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), size_t{2});
  CHECK_EQ(b.rank(), size_t{2});
  CHECK_EQ(a.dim(1), b.dim(1)) << "MatmulNT: " << ShapeToString(a.shape())
                               << " x " << ShapeToString(b.shape()) << "^T";
  size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Metrics().matmul_ops->Increment();
  std::vector<float> out(m * n, 0.0f);
  GemmNTAcc(a.data(), b.data(), out.data(), m, k, n);
  return Tensor::MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl* result) {
        result->backward_fn = [a, b, m, k, n, result]() {
          const float* g = result->grad.data();
          // C = A B^T : dA = dC * B ; dB = dC^T * A
          if (a.requires_grad()) {
            GemmAcc(g, b.data(), a.impl()->MutableGrad(), m, n, k);
          }
          if (b.requires_grad()) {
            GemmTNAcc(g, a.data(), b.impl()->MutableGrad(), m, n, k);
          }
        };
      });
}

Tensor Transpose(const Tensor& a) {
  CHECK_EQ(a.rank(), size_t{2});
  size_t m = a.dim(0), n = a.dim(1);
  std::vector<float> out(m * n);
  const float* in = a.data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j * m + i] = in[i * n + j];
  }
  return Tensor::MakeOpResult(
      {n, m}, std::move(out), {a}, [a, m, n](TensorImpl* result) {
        result->backward_fn = [a, m, n, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t j = 0; j < n; ++j) {
            for (size_t i = 0; i < m; ++i) ag[i * n + j] += g[j * m + i];
          }
        };
      });
}

Tensor Reshape(const Tensor& a, Shape shape) {
  CHECK_EQ(NumElements(shape), a.size());
  return Tensor::MakeOpResult(
      std::move(shape), a.vec(), {a}, [a](TensorImpl* result) {
        result->backward_fn = [a, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t i = 0; i < result->data.size(); ++i) ag[i] += g[i];
        };
      });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kInvSqrt2 = 0.7071067811865475f;
  constexpr float kInvSqrt2Pi = 0.3989422804014327f;
  return UnaryOp(
      a,
      [](float x) {
        return 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
      },
      [](float x, float) {
        float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
        float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
        return cdf + x * pdf;
      });
}

Tensor Silu(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) { return x / (1.0f + std::exp(-x)); },
      [](float x, float) {
        float s = 1.0f / (1.0f + std::exp(-x));
        return s * (1.0f + x * (1.0f - s));
      });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Softmax(const Tensor& a) {
  CHECK_EQ(a.rank(), size_t{2});
  size_t rows = a.dim(0), cols = a.dim(1);
  Metrics().softmax_ops->Increment();
  Metrics().softmax_rows->Increment(rows);
  std::vector<float> out(a.size());
  const float* in = a.data();
  for (size_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float* y = out.data() + r * cols;
    float mx = x[0];
    for (size_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      y[c] = std::exp(x[c] - mx);
      sum += y[c];
    }
    float inv = 1.0f / sum;
    for (size_t c = 0; c < cols; ++c) y[c] *= inv;
  }
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {a}, [a, rows, cols](TensorImpl* result) {
        result->backward_fn = [a, rows, cols, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          const float* y = result->data.data();
          for (size_t r = 0; r < rows; ++r) {
            const float* gr = g + r * cols;
            const float* yr = y + r * cols;
            float dot = 0.0f;
            for (size_t c = 0; c < cols; ++c) dot += gr[c] * yr[c];
            float* agr = ag + r * cols;
            for (size_t c = 0; c < cols; ++c) {
              agr[c] += yr[c] * (gr[c] - dot);
            }
          }
        };
      });
}

Tensor RmsNorm(const Tensor& x, const Tensor& weight, float eps) {
  CHECK_EQ(x.rank(), size_t{2});
  CHECK_EQ(weight.rank(), size_t{1});
  size_t rows = x.dim(0), cols = x.dim(1);
  CHECK_EQ(weight.dim(0), cols);
  std::vector<float> out(x.size());
  auto inv_rms = std::make_shared<std::vector<float>>(rows);
  const float* in = x.data();
  const float* w = weight.data();
  for (size_t r = 0; r < rows; ++r) {
    const float* xr = in + r * cols;
    float ss = 0.0f;
    for (size_t c = 0; c < cols; ++c) ss += xr[c] * xr[c];
    float inv = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    (*inv_rms)[r] = inv;
    float* yr = out.data() + r * cols;
    for (size_t c = 0; c < cols; ++c) yr[c] = xr[c] * inv * w[c];
  }
  return Tensor::MakeOpResult(
      x.shape(), std::move(out), {x, weight},
      [x, weight, rows, cols, inv_rms](TensorImpl* result) {
        result->backward_fn = [x, weight, rows, cols, inv_rms, result]() {
          const float* g = result->grad.data();
          const float* in = x.data();
          const float* w = weight.data();
          float* wg = weight.requires_grad() ? weight.impl()->MutableGrad()
                                             : nullptr;
          float* xg = x.requires_grad() ? x.impl()->MutableGrad() : nullptr;
          for (size_t r = 0; r < rows; ++r) {
            const float* xr = in + r * cols;
            const float* gr = g + r * cols;
            float inv = (*inv_rms)[r];
            if (wg != nullptr) {
              for (size_t c = 0; c < cols; ++c) {
                wg[c] += gr[c] * xr[c] * inv;
              }
            }
            if (xg != nullptr) {
              // dxh = g * w ; dx = inv * (dxh - xh * mean(dxh * xh))
              float dot = 0.0f;
              for (size_t c = 0; c < cols; ++c) {
                dot += gr[c] * w[c] * xr[c] * inv;
              }
              dot /= static_cast<float>(cols);
              float* xgr = xg + r * cols;
              for (size_t c = 0; c < cols; ++c) {
                float xh = xr[c] * inv;
                xgr[c] += inv * (gr[c] * w[c] - xh * dot);
              }
            }
          }
        };
      });
}

Tensor LayerNorm(const Tensor& x, const Tensor& weight, const Tensor& bias,
                 float eps) {
  CHECK_EQ(x.rank(), size_t{2});
  size_t rows = x.dim(0), cols = x.dim(1);
  CHECK_EQ(weight.size(), cols);
  CHECK_EQ(bias.size(), cols);
  std::vector<float> out(x.size());
  auto saved = std::make_shared<std::vector<float>>(rows * 2);  // mean, inv
  const float* in = x.data();
  const float* w = weight.data();
  const float* b = bias.data();
  for (size_t r = 0; r < rows; ++r) {
    const float* xr = in + r * cols;
    float mean = 0.0f;
    for (size_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      float d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    float inv = 1.0f / std::sqrt(var + eps);
    (*saved)[2 * r] = mean;
    (*saved)[2 * r + 1] = inv;
    float* yr = out.data() + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      yr[c] = (xr[c] - mean) * inv * w[c] + b[c];
    }
  }
  return Tensor::MakeOpResult(
      x.shape(), std::move(out), {x, weight, bias},
      [x, weight, bias, rows, cols, saved](TensorImpl* result) {
        result->backward_fn = [x, weight, bias, rows, cols, saved,
                               result]() {
          const float* g = result->grad.data();
          const float* in = x.data();
          const float* w = weight.data();
          float* wg = weight.requires_grad() ? weight.impl()->MutableGrad()
                                             : nullptr;
          float* bg =
              bias.requires_grad() ? bias.impl()->MutableGrad() : nullptr;
          float* xg = x.requires_grad() ? x.impl()->MutableGrad() : nullptr;
          for (size_t r = 0; r < rows; ++r) {
            const float* xr = in + r * cols;
            const float* gr = g + r * cols;
            float mean = (*saved)[2 * r];
            float inv = (*saved)[2 * r + 1];
            if (bg != nullptr) {
              for (size_t c = 0; c < cols; ++c) bg[c] += gr[c];
            }
            if (wg != nullptr) {
              for (size_t c = 0; c < cols; ++c) {
                wg[c] += gr[c] * (xr[c] - mean) * inv;
              }
            }
            if (xg != nullptr) {
              float sum_dxh = 0.0f, sum_dxh_xh = 0.0f;
              for (size_t c = 0; c < cols; ++c) {
                float xh = (xr[c] - mean) * inv;
                float dxh = gr[c] * w[c];
                sum_dxh += dxh;
                sum_dxh_xh += dxh * xh;
              }
              float n = static_cast<float>(cols);
              float* xgr = xg + r * cols;
              for (size_t c = 0; c < cols; ++c) {
                float xh = (xr[c] - mean) * inv;
                float dxh = gr[c] * w[c];
                xgr[c] +=
                    inv * (dxh - sum_dxh / n - xh * sum_dxh_xh / n);
              }
            }
          }
        };
      });
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  CHECK_EQ(table.rank(), size_t{2});
  CHECK(!ids.empty());
  size_t vocab = table.dim(0), d = table.dim(1);
  std::vector<float> out(ids.size() * d);
  const float* tp = table.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    CHECK_GE(ids[i], 0);
    CHECK_LT(static_cast<size_t>(ids[i]), vocab);
    std::memcpy(out.data() + i * d, tp + static_cast<size_t>(ids[i]) * d,
                d * sizeof(float));
  }
  auto ids_copy = std::make_shared<std::vector<int>>(ids);
  return Tensor::MakeOpResult(
      {ids.size(), d}, std::move(out), {table},
      [table, ids_copy, d](TensorImpl* result) {
        result->backward_fn = [table, ids_copy, d, result]() {
          if (!table.requires_grad()) return;
          float* tg = table.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t i = 0; i < ids_copy->size(); ++i) {
            float* row = tg + static_cast<size_t>((*ids_copy)[i]) * d;
            const float* gr = g + i * d;
            for (size_t c = 0; c < d; ++c) row[c] += gr[c];
          }
        };
      });
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& rows) {
  CHECK_EQ(a.rank(), size_t{2});
  CHECK(!rows.empty());
  size_t n = a.dim(0), d = a.dim(1);
  std::vector<float> out(rows.size() * d);
  const float* in = a.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    CHECK_GE(rows[i], 0);
    CHECK_LT(static_cast<size_t>(rows[i]), n);
    std::memcpy(out.data() + i * d, in + static_cast<size_t>(rows[i]) * d,
                d * sizeof(float));
  }
  auto rows_copy = std::make_shared<std::vector<int>>(rows);
  return Tensor::MakeOpResult(
      {rows.size(), d}, std::move(out), {a},
      [a, rows_copy, d](TensorImpl* result) {
        result->backward_fn = [a, rows_copy, d, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t i = 0; i < rows_copy->size(); ++i) {
            float* row = ag + static_cast<size_t>((*rows_copy)[i]) * d;
            const float* gr = g + i * d;
            for (size_t c = 0; c < d; ++c) row[c] += gr[c];
          }
        };
      });
}

Tensor Concat1d(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), size_t{1});
  CHECK_EQ(b.rank(), size_t{1});
  std::vector<float> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.vec().begin(), a.vec().end());
  out.insert(out.end(), b.vec().begin(), b.vec().end());
  size_t na = a.size();
  return Tensor::MakeOpResult(
      {a.size() + b.size()}, std::move(out), {a, b},
      [a, b, na](TensorImpl* result) {
        result->backward_fn = [a, b, na, result]() {
          const float* g = result->grad.data();
          if (a.requires_grad()) {
            float* ag = a.impl()->MutableGrad();
            for (size_t i = 0; i < na; ++i) ag[i] += g[i];
          }
          if (b.requires_grad()) {
            float* bg = b.impl()->MutableGrad();
            for (size_t i = 0; i < b.size(); ++i) bg[i] += g[na + i];
          }
        };
      });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), size_t{2});
  CHECK_EQ(b.rank(), size_t{2});
  CHECK_EQ(a.dim(1), b.dim(1));
  std::vector<float> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.vec().begin(), a.vec().end());
  out.insert(out.end(), b.vec().begin(), b.vec().end());
  size_t na = a.size();
  return Tensor::MakeOpResult(
      {a.dim(0) + b.dim(0), a.dim(1)}, std::move(out), {a, b},
      [a, b, na](TensorImpl* result) {
        result->backward_fn = [a, b, na, result]() {
          const float* g = result->grad.data();
          if (a.requires_grad()) {
            float* ag = a.impl()->MutableGrad();
            for (size_t i = 0; i < na; ++i) ag[i] += g[i];
          }
          if (b.requires_grad()) {
            float* bg = b.impl()->MutableGrad();
            for (size_t i = 0; i < b.size(); ++i) bg[i] += g[na + i];
          }
        };
      });
}

Tensor SliceRows(const Tensor& a, size_t start, size_t count) {
  CHECK_EQ(a.rank(), size_t{2});
  CHECK_GT(count, size_t{0});
  CHECK_LE(start + count, a.dim(0));
  size_t cols = a.dim(1);
  const float* src = a.data() + start * cols;
  std::vector<float> out(src, src + count * cols);
  size_t offset = start * cols;
  size_t n = count * cols;
  return Tensor::MakeOpResult(
      {count, cols}, std::move(out), {a},
      [a, offset, n](TensorImpl* result) {
        result->backward_fn = [a, offset, n, result]() {
          if (!a.requires_grad()) return;
          const float* g = result->grad.data();
          float* ag = a.impl()->MutableGrad();
          for (size_t i = 0; i < n; ++i) ag[offset + i] += g[i];
        };
      });
}

Tensor MeanAll(const Tensor& a) {
  float sum = 0.0f;
  for (float v : a.vec()) sum += v;
  float inv = 1.0f / static_cast<float>(a.size());
  return Tensor::MakeOpResult(
      {1}, {sum * inv}, {a}, [a, inv](TensorImpl* result) {
        result->backward_fn = [a, inv, result]() {
          if (!a.requires_grad()) return;
          float g = result->grad[0] * inv;
          float* ag = a.impl()->MutableGrad();
          for (size_t i = 0; i < a.size(); ++i) ag[i] += g;
        };
      });
}

Tensor SumAll(const Tensor& a) {
  float sum = 0.0f;
  for (float v : a.vec()) sum += v;
  return Tensor::MakeOpResult({1}, {sum}, {a}, [a](TensorImpl* result) {
    result->backward_fn = [a, result]() {
      if (!a.requires_grad()) return;
      float g = result->grad[0];
      float* ag = a.impl()->MutableGrad();
      for (size_t i = 0; i < a.size(); ++i) ag[i] += g;
    };
  });
}

Tensor MeanAxis0(const Tensor& a) {
  CHECK_EQ(a.rank(), size_t{2});
  size_t rows = a.dim(0), cols = a.dim(1);
  std::vector<float> out(cols, 0.0f);
  const float* in = a.data();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) out[c] += in[r * cols + c];
  }
  float inv = 1.0f / static_cast<float>(rows);
  for (float& v : out) v *= inv;
  return Tensor::MakeOpResult(
      {cols}, std::move(out), {a}, [a, rows, cols, inv](TensorImpl* result) {
        result->backward_fn = [a, rows, cols, inv, result]() {
          if (!a.requires_grad()) return;
          float* ag = a.impl()->MutableGrad();
          const float* g = result->grad.data();
          for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < cols; ++c) ag[r * cols + c] += g[c] * inv;
          }
        };
      });
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index) {
  CHECK_EQ(logits.rank(), size_t{2});
  size_t rows = logits.dim(0), cols = logits.dim(1);
  CHECK_EQ(targets.size(), rows);
  auto probs = std::make_shared<std::vector<float>>(logits.size());
  const float* in = logits.data();
  double loss = 0.0;
  size_t valid = 0;
  for (size_t r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float* p = probs->data() + r * cols;
    float mx = x[0];
    for (size_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      p[c] = std::exp(x[c] - mx);
      sum += p[c];
    }
    float inv = 1.0f / sum;
    for (size_t c = 0; c < cols; ++c) p[c] *= inv;
    int t = targets[r];
    if (t == ignore_index) continue;
    CHECK_GE(t, 0);
    CHECK_LT(static_cast<size_t>(t), cols);
    loss -= std::log(std::max(p[t], 1e-12f));
    ++valid;
  }
  CHECK_GT(valid, size_t{0}) << "CrossEntropy: no valid targets";
  float mean_loss = static_cast<float>(loss / static_cast<double>(valid));
  auto targets_copy = std::make_shared<std::vector<int>>(targets);
  return Tensor::MakeOpResult(
      {1}, {mean_loss}, {logits},
      [logits, targets_copy, probs, rows, cols, valid,
       ignore_index](TensorImpl* result) {
        result->backward_fn = [logits, targets_copy, probs, rows, cols,
                               valid, ignore_index, result]() {
          if (!logits.requires_grad()) return;
          float g = result->grad[0] / static_cast<float>(valid);
          float* lg = logits.impl()->MutableGrad();
          for (size_t r = 0; r < rows; ++r) {
            int t = (*targets_copy)[r];
            if (t == ignore_index) continue;
            const float* p = probs->data() + r * cols;
            float* row = lg + r * cols;
            for (size_t c = 0; c < cols; ++c) row[c] += g * p[c];
            row[static_cast<size_t>(t)] -= g;
          }
        };
      });
}

Tensor BceWithLogits(const Tensor& logits,
                     const std::vector<float>& targets) {
  CHECK_EQ(logits.size(), targets.size());
  const float* z = logits.data();
  double loss = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    // max(z,0) - z*t + log(1 + exp(-|z|)): stable for both signs.
    float zi = z[i];
    loss += std::max(zi, 0.0f) - zi * targets[i] +
            std::log1p(std::exp(-std::fabs(zi)));
  }
  float inv = 1.0f / static_cast<float>(targets.size());
  auto targets_copy = std::make_shared<std::vector<float>>(targets);
  return Tensor::MakeOpResult(
      {1}, {static_cast<float>(loss) * inv}, {logits},
      [logits, targets_copy, inv](TensorImpl* result) {
        result->backward_fn = [logits, targets_copy, inv, result]() {
          if (!logits.requires_grad()) return;
          float g = result->grad[0] * inv;
          float* lg = logits.impl()->MutableGrad();
          const float* z = logits.data();
          for (size_t i = 0; i < targets_copy->size(); ++i) {
            float s = 1.0f / (1.0f + std::exp(-z[i]));
            lg[i] += g * (s - (*targets_copy)[i]);
          }
        };
      });
}

Tensor CausalSelfAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                           size_t num_heads, size_t prefix_len) {
  CHECK_EQ(q.rank(), size_t{2});
  CHECK_EQ(k.rank(), size_t{2});
  CHECK_EQ(v.rank(), size_t{2});
  size_t tq = q.dim(0), d = q.dim(1);
  size_t tk = k.dim(0);
  CHECK_EQ(k.dim(1), d);
  CHECK_EQ(v.dim(1), d);
  CHECK_EQ(tk, prefix_len + tq)
      << "key length must be prefix_len + query length";
  CHECK_GT(num_heads, size_t{0});
  CHECK_EQ(d % num_heads, size_t{0});
  size_t dh = d / num_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Metrics().attention_ops->Increment();
  Metrics().attention_flops->Increment(4 * tq * tk * d);

  // attn holds the per-head post-softmax matrices, [H][Tq][Tk] flattened.
  auto attn = std::make_shared<std::vector<float>>(num_heads * tq * tk, 0.0f);
  std::vector<float> out(tq * d, 0.0f);
  const float* qp = q.data();
  const float* kp = k.data();
  const float* vp = v.data();

  util::ParallelFor(num_heads, 1, [&](size_t hbegin, size_t hend) {
    for (size_t h = hbegin; h < hend; ++h) {
      size_t off = h * dh;
      float* ah = attn->data() + h * tq * tk;
      for (size_t i = 0; i < tq; ++i) {
        size_t limit = prefix_len + i + 1;  // keys visible to query i
        float* arow = ah + i * tk;
        const float* qrow = qp + i * d + off;
        float mx = -1e30f;
        for (size_t j = 0; j < limit; ++j) {
          const float* krow = kp + j * d + off;
          float s = 0.0f;
          for (size_t c = 0; c < dh; ++c) s += qrow[c] * krow[c];
          s *= scale;
          arow[j] = s;
          mx = std::max(mx, s);
        }
        float sum = 0.0f;
        for (size_t j = 0; j < limit; ++j) {
          arow[j] = std::exp(arow[j] - mx);
          sum += arow[j];
        }
        float inv = 1.0f / sum;
        for (size_t j = 0; j < limit; ++j) arow[j] *= inv;
        // Masked entries stay exactly zero.
        float* orow = out.data() + i * d + off;
        for (size_t j = 0; j < limit; ++j) {
          float a = arow[j];
          if (a == 0.0f) continue;
          const float* vrow = vp + j * d + off;
          for (size_t c = 0; c < dh; ++c) orow[c] += a * vrow[c];
        }
      }
    }
  });

  return Tensor::MakeOpResult(
      {tq, d}, std::move(out), {q, k, v},
      [q, k, v, num_heads, prefix_len, tq, tk, d, dh, scale,
       attn](TensorImpl* result) {
        result->backward_fn = [q, k, v, num_heads, prefix_len, tq, tk, d, dh,
                               scale, attn, result]() {
          const float* g = result->grad.data();
          const float* qp = q.data();
          const float* kp = k.data();
          const float* vp = v.data();
          float* qg = q.requires_grad() ? q.impl()->MutableGrad() : nullptr;
          float* kg = k.requires_grad() ? k.impl()->MutableGrad() : nullptr;
          float* vg = v.requires_grad() ? v.impl()->MutableGrad() : nullptr;
          // Heads write to disjoint column ranges of the gradients, so the
          // per-head loop is safe to run in parallel.
          util::ParallelFor(num_heads, 1, [&](size_t hbegin, size_t hend) {
            std::vector<float> da(tk);  // dA for one query row
            std::vector<float> ds(tk);  // dS for one query row
            for (size_t h = hbegin; h < hend; ++h) {
              size_t off = h * dh;
              const float* ah = attn->data() + h * tq * tk;
              for (size_t i = 0; i < tq; ++i) {
                size_t limit = prefix_len + i + 1;
                const float* arow = ah + i * tk;
                const float* grow = g + i * d + off;
                // dA_j = dO . V_j ; dV_j += A_j * dO
                for (size_t j = 0; j < limit; ++j) {
                  const float* vrow = vp + j * d + off;
                  float acc = 0.0f;
                  for (size_t c = 0; c < dh; ++c) acc += grow[c] * vrow[c];
                  da[j] = acc;
                  if (vg != nullptr && arow[j] != 0.0f) {
                    float* vgrow = vg + j * d + off;
                    float a = arow[j];
                    for (size_t c = 0; c < dh; ++c) vgrow[c] += a * grow[c];
                  }
                }
                // Softmax backward within the visible window.
                float dot = 0.0f;
                for (size_t j = 0; j < limit; ++j) dot += da[j] * arow[j];
                for (size_t j = 0; j < limit; ++j) {
                  ds[j] = arow[j] * (da[j] - dot) * scale;
                }
                // dQ_i += sum_j dS_ij K_j ; dK_j += dS_ij Q_i
                const float* qrow = qp + i * d + off;
                float* qgrow = qg != nullptr ? qg + i * d + off : nullptr;
                for (size_t j = 0; j < limit; ++j) {
                  float s = ds[j];
                  if (s == 0.0f) continue;
                  const float* krow = kp + j * d + off;
                  if (qgrow != nullptr) {
                    for (size_t c = 0; c < dh; ++c) qgrow[c] += s * krow[c];
                  }
                  if (kg != nullptr) {
                    float* kgrow = kg + j * d + off;
                    for (size_t c = 0; c < dh; ++c) kgrow[c] += s * qrow[c];
                  }
                }
              }
            }
          });
        };
      });
}

Tensor CausalSelfAttentionRagged(const Tensor& q,
                                 const std::vector<Tensor>& keys,
                                 const std::vector<Tensor>& values,
                                 const std::vector<size_t>& row_lens,
                                 size_t num_heads) {
  CHECK(!GradEnabled())
      << "CausalSelfAttentionRagged is inference-only (no backward)";
  CHECK_EQ(q.rank(), size_t{2});
  CHECK_EQ(keys.size(), row_lens.size());
  CHECK_EQ(values.size(), row_lens.size());
  size_t d = q.dim(1);
  CHECK_GT(num_heads, size_t{0});
  CHECK_EQ(d % num_heads, size_t{0});
  size_t dh = d / num_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  std::vector<size_t> row_offsets(row_lens.size());
  size_t total = 0;
  for (size_t r = 0; r < row_lens.size(); ++r) {
    CHECK_GT(row_lens[r], size_t{0});
    CHECK_EQ(keys[r].dim(1), d);
    CHECK_EQ(values[r].dim(1), d);
    CHECK_GE(keys[r].dim(0), row_lens[r])
        << "key rows must cover the row's new tokens";
    CHECK_EQ(keys[r].dim(0), values[r].dim(0));
    row_offsets[r] = total;
    total += row_lens[r];
  }
  CHECK_EQ(q.dim(0), total);

  std::vector<float> out(total * d, 0.0f);
  const float* qp_all = q.data();
  auto attend_row = [&](size_t r) {
    size_t tq = row_lens[r];
    size_t tk = keys[r].dim(0);
    size_t prefix_len = tk - tq;
    Metrics().attention_ops->Increment();
    Metrics().attention_flops->Increment(4 * tq * tk * d);
    const float* qp = qp_all + row_offsets[r] * d;
    const float* kp = keys[r].data();
    const float* vp = values[r].data();
    float* op = out.data() + row_offsets[r] * d;
    // Identical loop structure (and therefore accumulation order) to
    // CausalSelfAttention: per head, per query row, scan visible keys
    // ascending, max-shifted softmax, then the weighted value sum.
    std::vector<float> arow(tk);
    for (size_t h = 0; h < num_heads; ++h) {
      size_t off = h * dh;
      for (size_t i = 0; i < tq; ++i) {
        size_t limit = prefix_len + i + 1;  // keys visible to query i
        const float* qrow = qp + i * d + off;
        float mx = -1e30f;
        for (size_t j = 0; j < limit; ++j) {
          const float* krow = kp + j * d + off;
          float s = 0.0f;
          for (size_t c = 0; c < dh; ++c) s += qrow[c] * krow[c];
          s *= scale;
          arow[j] = s;
          mx = std::max(mx, s);
        }
        float sum = 0.0f;
        for (size_t j = 0; j < limit; ++j) {
          arow[j] = std::exp(arow[j] - mx);
          sum += arow[j];
        }
        float inv = 1.0f / sum;
        for (size_t j = 0; j < limit; ++j) arow[j] *= inv;
        float* orow = op + i * d + off;
        for (size_t j = 0; j < limit; ++j) {
          float a = arow[j];
          if (a == 0.0f) continue;
          const float* vrow = vp + j * d + off;
          for (size_t c = 0; c < dh; ++c) orow[c] += a * vrow[c];
        }
      }
    }
  };
  // Small batches run the rows inline: dispatching one pool task per row
  // costs more than the attention arithmetic itself at toy dims. Rows are
  // independent (disjoint output blocks), so inline-vs-pool never changes
  // the per-row accumulation order or the result.
  size_t total_work = 0;
  for (size_t r = 0; r < row_lens.size(); ++r) {
    total_work += 4 * row_lens[r] * keys[r].dim(0) * d;
  }
  if (row_lens.size() == 1 || total_work < kGemmParallelMinWork) {
    for (size_t r = 0; r < row_lens.size(); ++r) attend_row(r);
  } else {
    util::ParallelForEach(row_lens.size(), attend_row);
  }
  return Tensor::FromData({total, d}, std::move(out));
}

}  // namespace infuserki::tensor
