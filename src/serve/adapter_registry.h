#ifndef INFUSERKI_SERVE_ADAPTER_REGISTRY_H_
#define INFUSERKI_SERVE_ADAPTER_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/serve_adapter.h"
#include "util/fault.h"
#include "util/status.h"

namespace infuserki::serve {

/// One published adapter-set version. `sequence` is the registry's
/// monotonically increasing version number and doubles as the PrefixCache
/// generation tag (0 is reserved for the base model, so an
/// AdapterVersion{} default — no adapter — means "serve the base").
struct AdapterVersion {
  uint64_t sequence = 0;
  std::string path;  // checkpoint file the version was loaded from
  std::shared_ptr<const model::PositionWiseAdapter> adapter;
};

/// Versioned on-disk registry of position-wise adapter checkpoints — the
/// knowledge artifact lifecycle behind zero-downtime integration
/// (DESIGN.md §12).
///
/// Layout: one `adapter_<seq>.bin` per published version in `dir`,
/// CRC32-framed (serialize format v2) and published atomically
/// (tmp -> fsync -> rename), so a crash mid-publish never leaves a
/// half-written version and readers never race a writer.
///
/// Rollback state machine: LoadLatest() walks the versions newest-first.
/// Each candidate load runs under the `serve/adapter_load` fault point
/// with retry (transient kInternal failures back off and re-attempt); a
/// candidate that still fails — corrupt frame, bad payload, or exhausted
/// retries — is quarantined to `<file>.corrupt` and the walk rolls back to
/// the next older version, counting `serve/swap_rollbacks`. A corrupt
/// checkpoint therefore never reaches the serving path, and the newest
/// GOOD version always wins. Only when every version fails does LoadLatest
/// return an error (callers keep serving whatever version they already
/// hold).
///
/// Thread-compatible, deliberately lock-free (DESIGN.md §13): publishers
/// and loaders run on one control thread (the serving scheduler never
/// touches the registry), so there is no mutex to annotate — the published
/// AdapterVersion objects are immutable and cross the thread boundary via
/// InferenceServer::SwapAdapters, whose mu_ carries the happens-before
/// edge. Concurrent use of one AdapterRegistry instance from two control
/// threads is a contract violation, not a supported mode.
class AdapterRegistry {
 public:
  /// `retry` bounds the per-candidate load retry loop.
  explicit AdapterRegistry(std::string dir, util::RetryOptions retry = {});

  const std::string& dir() const { return dir_; }

  /// Serializes `adapter` as the next version (max existing sequence + 1)
  /// and publishes it atomically. The returned version carries `adapter`
  /// itself — publishers may swap it in directly without a read-back,
  /// though loading it back is the bit-exactness check the tests use.
  util::StatusOr<AdapterVersion> Publish(
      std::shared_ptr<const model::PositionWiseAdapter> adapter);

  /// Loads the newest version that passes frame + payload validation,
  /// quarantining and rolling past any that do not (see class comment).
  util::StatusOr<AdapterVersion> LoadLatest();

  /// Loads one specific version (same fault point, retry, and quarantine
  /// treatment as LoadLatest, but no rollback to older versions).
  util::StatusOr<AdapterVersion> Load(uint64_t sequence);

  /// Published (non-quarantined) sequences, ascending. Empty on a missing
  /// or empty directory.
  std::vector<uint64_t> ListSequences() const;

  /// Checkpoint path for `sequence` under this registry's directory.
  std::string VersionPath(uint64_t sequence) const;

 private:
  /// One guarded load attempt loop for `path`; no quarantine.
  util::StatusOr<AdapterVersion> LoadAttempt(uint64_t sequence,
                                             const std::string& path);

  std::string dir_;
  util::RetryOptions retry_;
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_ADAPTER_REGISTRY_H_
