#ifndef INFUSERKI_SERVE_ADMISSION_H_
#define INFUSERKI_SERVE_ADMISSION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace infuserki::serve {

/// Priority tier of a request. Tiers are served in strict priority order:
/// a queued kHigh request is always admitted before any queued kNormal
/// request, regardless of tenant weights (which only arbitrate *within* a
/// tier). kLow is the first tier rejected under brownout (DESIGN.md §14).
enum class Priority : int {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
inline constexpr int kPriorityTiers = 3;

/// Human-readable tier name ("high" / "normal" / "low").
const char* PriorityName(Priority priority);

/// Per-tenant admission policy. The defaults are permissive: weight 1 (an
/// equal WDRR share), no per-tenant queue cap, no rate limit.
struct TenantPolicy {
  /// Weighted deficit-round-robin share within a priority tier. A tenant
  /// with weight 3 drains three queued requests for every one of a
  /// weight-1 tenant when both are backlogged. Clamped to >= 0.01.
  double weight = 1.0;
  /// Max requests this tenant may have queued (across all tiers,
  /// including a deferred entry). 0 means bounded only by the global
  /// queue capacity. Overflow sheds *this tenant's* request — the
  /// offender pays, not the queue at large.
  size_t queue_cap = 0;
  /// Token-bucket refill rate, requests/second. 0 means unlimited.
  double rate_qps = 0.0;
  /// Token-bucket depth (burst allowance). <= 0 defaults to
  /// max(1, rate_qps).
  double burst = 0.0;
};

/// Configuration for the AdmissionController: per-tenant policies plus the
/// WDRR quantum. The global queue capacity stays on ServeOptions (it is a
/// server-wide resource bound, not a tenant policy).
struct AdmissionOptions {
  /// Policy applied to tenants with no entry in `tenants` (including the
  /// anonymous "" tenant, bucketed as "default").
  TenantPolicy default_policy;
  /// Per-tenant policy overrides, keyed by Request::tenant_id.
  std::map<std::string, TenantPolicy> tenants;
  /// Deficit credit added per WDRR visit per unit weight. Larger values
  /// make scheduling burstier per tenant; 1.0 alternates at request
  /// granularity.
  double quantum = 1.0;
};

/// Why an offered request was shed (kNone = admitted). Each reason maps to
/// a dedicated `serve/shed_*` counter (DESIGN.md §14) so operators can
/// tell a full queue from a misbehaving tenant from a brownout.
enum class ShedReason {
  kNone = 0,
  kQueueFull,
  kTenantCap,
  kRateLimited,
  kBrownout,
  kDeadlineInfeasible,
};

/// Metric-suffix name for a shed reason ("queue_full", "tenant_cap", ...).
const char* ShedReasonName(ShedReason reason);

/// Multi-tenant admission queue: strict priority across tiers, weighted
/// deficit round robin across tenants within a tier, per-tenant queue caps
/// and token-bucket rate limits so shedding targets the offender.
///
/// PASSIVE data structure: it has no lock of its own. The owning
/// InferenceServer guards every call with its scheduler mutex, exactly as
/// it guarded the FIFO deque this class replaces (DESIGN.md §13 —
/// `InferenceServer::mu_`). Keeping the controller lock-free keeps the
/// lock hierarchy flat and makes it directly unit-testable.
///
/// Time is always passed in explicitly (token-bucket refill), so tests are
/// deterministic without sleeping.
class AdmissionController {
 public:
  /// Base class for queued payloads. The server's Job derives from this;
  /// tests use their own trivial subclass.
  struct Item {
    virtual ~Item() = default;
  };

  /// One queued request: the payload plus the (tenant, tier) key the
  /// scheduler bookkeeping needs after popping it.
  struct Entry {
    std::unique_ptr<Item> item;
    std::string tenant;
    Priority priority = Priority::kNormal;
  };

  /// Admission decision. `retry_after_s` is a client backoff hint,
  /// populated (> 0) for rate-limit sheds — the exact bucket refill time;
  /// the server fills in estimator-based hints for the other reasons.
  struct Verdict {
    ShedReason reason = ShedReason::kNone;
    double retry_after_s = 0.0;
  };

  /// `queue_capacity` bounds the total queued entries across all tenants
  /// and tiers (the ServeOptions::queue_capacity bound).
  AdmissionController(AdmissionOptions options, size_t queue_capacity);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admission decision for one offered request, in shed-precedence order:
  /// global queue capacity, per-tenant cap, brownout tier rejection
  /// (level >= kBrownoutRejectLowLevel sheds Priority::kLow), then the
  /// token bucket (checked last so a shed request never burns a token).
  /// Does NOT enqueue — call Push() on an admitting verdict.
  Verdict Offer(const std::string& tenant, Priority priority,
                std::chrono::steady_clock::time_point now,
                int brownout_level);

  /// Enqueues an entry previously admitted by Offer().
  void Push(Entry entry);

  /// Dequeues the next entry to admit: a deferred entry first, else
  /// strict-priority tiers arbitrated by WDRR. Returns false when empty.
  bool PopNext(Entry* out);

  /// Returns a popped entry the scheduler could not admit (step-budget
  /// deferral): the very next PopNext() returns it again, ahead of
  /// everything else, preserving the FIFO-deferral contract of the old
  /// queue. The WDRR deficit already charged for it stands — the tenant
  /// does get served, just one scheduler iteration later.
  void Defer(Entry entry);

  /// Removes and returns every queued entry (shutdown orphan drain).
  std::vector<Entry> DrainAll();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// Queued entries for one tenant (across tiers, including deferred).
  size_t tenant_depth(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantPolicy policy;
    std::array<std::deque<Entry>, kPriorityTiers> tiers;
    // WDRR credit per tier; reset when the tenant's tier queue drains so
    // an idle tenant cannot bank an unbounded burst allowance.
    std::array<double, kPriorityTiers> deficit{};
    double bucket_tokens = 0.0;
    bool bucket_primed = false;
    std::chrono::steady_clock::time_point bucket_refill{};
    size_t depth = 0;
  };

  /// Canonical bucket name for a tenant id ("" -> "default").
  static std::string Normalize(const std::string& tenant);
  TenantState& StateFor(const std::string& tenant);

  const AdmissionOptions options_;
  const size_t capacity_;
  size_t size_ = 0;
  std::map<std::string, TenantState> tenants_;
  // Round-robin ring per tier: tenant names with a nonempty queue in that
  // tier, maintained eagerly (inserted on first push, erased on drain).
  std::array<std::deque<std::string>, kPriorityTiers> rings_;
  std::deque<Entry> deferred_;
};

/// Brownout degradation levels (DESIGN.md §14). Each level is cumulative:
/// level N applies every measure of the levels below it.
///   kBrownoutClampLevel       (1) clamp max_new_tokens to the configured
///                                 brownout ceiling
///   kBrownoutBypassCacheLevel (2) stop writing PrefixCache entries
///                                 (lookups still hit; no snapshot cost)
///   kBrownoutRejectLowLevel   (3) shed Priority::kLow at admission
inline constexpr int kBrownoutClampLevel = 1;
inline constexpr int kBrownoutBypassCacheLevel = 2;
inline constexpr int kBrownoutRejectLowLevel = 3;
inline constexpr int kBrownoutMaxLevel = 3;

/// Hysteresis thresholds for the brownout controller.
struct BrownoutOptions {
  /// Queue occupancy (size / capacity) at or above which a tick counts
  /// toward escalation.
  double enter_occupancy = 0.75;
  /// Occupancy strictly below which a tick counts toward de-escalation.
  /// Must be < enter_occupancy; the dead band between them is the
  /// hysteresis that prevents level flapping.
  double exit_occupancy = 0.25;
  /// Consecutive over-threshold ticks required to step one level up.
  int enter_ticks = 3;
  /// Consecutive under-threshold ticks required to step one level down.
  int exit_ticks = 5;
  /// max_new_tokens ceiling applied from kBrownoutClampLevel on.
  size_t clamp_max_new_tokens = 8;
  /// Base client backoff hint for brownout sheds, scaled by the level.
  double retry_after_s = 0.25;
};

/// Steps the brownout level up under sustained queue pressure and back
/// down with hysteresis. Tick() is called by exactly one thread (the
/// server's watchdog, once per watchdog interval); level() is a relaxed
/// atomic read from any thread (admission, scheduler, metrics).
class BrownoutController {
 public:
  explicit BrownoutController(BrownoutOptions options);

  /// Feeds one occupancy observation in [0, 1]; returns the (possibly
  /// changed) level. Escalates one level after `enter_ticks` consecutive
  /// observations >= enter_occupancy; de-escalates one level after
  /// `exit_ticks` consecutive observations < exit_occupancy; observations
  /// in the dead band reset both streaks. Single-caller (watchdog thread).
  int Tick(double occupancy);

  int level() const { return level_.load(std::memory_order_relaxed); }

 private:
  const BrownoutOptions options_;
  std::atomic<int> level_{0};
  // Streak counters, touched only by the ticking thread.
  int above_ = 0;
  int below_ = 0;
};

/// EWMA estimate of observed serving rates, used for deadline-infeasible
/// early rejection and retry-after hints (DESIGN.md §14). Written by the
/// scheduler thread (ObserveStep after each batched forward, and
/// ObserveRequest at delivery); read by any thread through relaxed
/// atomics — the estimate is advisory, never load-bearing for memory
/// ordering.
class RateEstimator {
 public:
  explicit RateEstimator(double alpha = 0.2);

  /// Records one batched step: `prefill_tokens` prompt tokens forwarded,
  /// `decode_tokens` single-token decode rows, over `seconds` of wall
  /// time. Pure-decode steps feed the decode rate; steps containing
  /// prefill attribute the residual (after subtracting the estimated
  /// decode cost) to the prefill rate.
  void ObserveStep(size_t prefill_tokens, size_t decode_tokens,
                   double seconds);

  /// Records one completed request's processing time (queue wait
  /// excluded) — the drain-estimate input for queue-full retry hints.
  void ObserveRequest(double seconds);

  /// Pre-loads both token rates (tokens/second), e.g. warm-starting a new
  /// server from a previous run's observations, or pinning known rates in
  /// tests. Subsequent observations blend the seed away.
  void SeedRates(double prefill_tokens_per_s, double decode_tokens_per_s);

  double prefill_tokens_per_s() const {
    return prefill_rate_.load(std::memory_order_relaxed);
  }
  double decode_tokens_per_s() const {
    return decode_rate_.load(std::memory_order_relaxed);
  }
  double request_seconds() const {
    return request_seconds_.load(std::memory_order_relaxed);
  }

  /// True once both token rates have been observed (or seeded).
  bool warmed() const;

  /// Minimum service-time estimate for a request: prefill of
  /// `prompt_tokens` plus `new_tokens` decode steps, at the current rates.
  /// Returns 0 while not warmed (no basis for a proof).
  double EstimateServiceSeconds(size_t prompt_tokens,
                                size_t new_tokens) const;

 private:
  void Blend(std::atomic<double>* cell, double sample);

  const double alpha_;
  std::atomic<double> prefill_rate_{0.0};
  std::atomic<double> decode_rate_{0.0};
  std::atomic<double> request_seconds_{0.0};
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_ADMISSION_H_
