#ifndef INFUSERKI_SERVE_SERVER_H_
#define INFUSERKI_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/transformer.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "serve/prefix_cache.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/status.h"

namespace infuserki::serve {

/// Tuning knobs for InferenceServer (see DESIGN.md §10).
struct ServeOptions {
  /// Decode worker threads.
  size_t num_workers = 2;
  /// Admission-queue capacity: Submit() on a full queue sheds the request
  /// with kResourceExhausted instead of queueing unbounded work.
  size_t queue_capacity = 16;
  /// KV-token budget for the prompt-prefix cache (0 disables caching).
  size_t kv_budget_tokens = 1024;
  /// Cap applied when a request leaves `max_new_tokens` at 0.
  size_t default_max_new_tokens = 16;
  /// Deadline applied when a request leaves `deadline` at zero; zero here
  /// too means requests without a deadline run unbounded.
  std::chrono::milliseconds default_deadline{0};
  /// Retry policy for fault-injectable steps (tokenize / prefill / decode
  /// step). The per-request deadline is threaded into `retry.deadline`
  /// before each use, so retries never outlive their request.
  util::RetryOptions retry;
  /// Background metrics exporter (period 0 disables it). When enabled the
  /// server owns the export thread, samples its queue depth into
  /// `serve/queue_depth_samples` on every tick (before any user on_tick),
  /// and stops the exporter — with a final flush — during Shutdown().
  obs::ExporterOptions exporter;
};

/// One inference request. `max_new_tokens` 0 and `deadline` 0 fall back to
/// the server-wide defaults.
struct Request {
  std::string prompt;
  size_t max_new_tokens = 0;
  std::chrono::milliseconds deadline{0};
};

/// Outcome of one request. `status` is OK for a served request (including
/// degraded ones); kResourceExhausted for shed requests; kDeadlineExceeded
/// when the deadline fired (tokens then holds the partial prefix decoded so
/// far); kCancelled / kUnavailable around shutdown; kInvalidArgument for
/// malformed input; other codes for permanent decode failures.
struct Response {
  util::Status status = util::Status::OK();
  std::vector<int> tokens;  // newly generated ids (no prompt, no <eos>)
  std::string text;         // decoded `tokens`
  bool prefix_hit = false;  // served from a cached prefill
  bool degraded = false;    // served by the cacheless fallback path
  int retries = 0;          // transient faults absorbed by backoff
  /// Process-unique request id; doubles as the async track id under which
  /// this request's lifecycle renders in the Chrome trace. Always set,
  /// including for shed and cancelled requests.
  uint64_t request_id = 0;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  /// Admission → first token of the delivered stream; 0 when no token was
  /// generated (shed, cancelled, empty decode).
  double ttft_seconds = 0.0;
};

/// Multi-threaded greedy-decode service over one TransformerLM.
///
/// Resilience contract (DESIGN.md §10): a bounded admission queue sheds
/// load instead of queueing unbounded work; every request carries a
/// deadline checked at token granularity (expiry returns the partial
/// decode, never wedges a worker); prefilled prompt prefixes are reused
/// across requests under an LRU KV-token budget; transient faults on the
/// tokenize / prefill / decode-step fault points are retried with backoff,
/// and a permanent mid-decode failure degrades the request to a cacheless
/// full-recompute path instead of failing it. Served token streams are
/// bit-exact with single-threaded GreedyDecode on both the cached and the
/// degraded path.
///
/// Submit() is thread-safe. The model and tokenizer must outlive the
/// server; workers only read them.
class InferenceServer {
 public:
  InferenceServer(const model::TransformerLM& lm,
                  const text::Tokenizer& tokenizer,
                  ServeOptions options = {});

  /// Drains the queue (cancelling queued requests) and joins workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request. The future resolves when the request completes,
  /// is shed (immediately, with kResourceExhausted), or is cancelled by
  /// shutdown; it never blocks forever.
  std::future<Response> Submit(Request request);

  /// Synchronous convenience wrapper around Submit().
  Response Run(Request request);

  /// Stops accepting work, cancels queued requests (kUnavailable), lets
  /// in-flight requests notice cancellation at the next token, and joins
  /// the workers. Idempotent; also run by the destructor.
  void Shutdown();

  /// Requests currently queued (excludes in-flight ones).
  size_t queue_depth() const;

  /// KV tokens currently held by the prefix cache.
  size_t cached_tokens() const { return cache_.cached_tokens(); }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    // Absolute deadline; the epoch default means none.
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point enqueued{};
    // Request-scoped trace handle, allocated at admission; every lifecycle
    // event for this request lands on its async track.
    obs::RequestTrace trace;
  };

  void WorkerLoop();
  void Process(Job* job);

  const model::TransformerLM& lm_;
  const text::Tokenizer& tokenizer_;
  const ServeOptions options_;
  PrefixCache cache_;
  std::unique_ptr<obs::MetricsExporter> exporter_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::unique_ptr<Job>> queue_;
  bool shutdown_started_ = false;
  // Read mid-decode for cooperative cancellation without taking mu_.
  std::atomic<bool> shutting_down_{false};
  std::vector<std::thread> workers_;
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_SERVER_H_
