#ifndef INFUSERKI_SERVE_SERVER_H_
#define INFUSERKI_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "model/batched_session.h"
#include "model/serve_adapter.h"
#include "model/transformer.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "serve/adapter_registry.h"
#include "serve/admission.h"
#include "serve/prefix_cache.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace infuserki::serve {

/// Tuning knobs for InferenceServer (see DESIGN.md §10/§11).
struct ServeOptions {
  /// In-flight rows the continuous-batching scheduler decodes together —
  /// the KV slot-pool size. 1 degenerates to sequential one-request-at-a-
  /// time decoding (the baseline bench_serve's sweep compares against).
  size_t max_batch_rows = 4;
  /// Per-step new-token budget for the ragged batched forward: admission
  /// of prefills stops once the tokens fed to one step (one per in-flight
  /// decode row plus each admitted prompt's length) would exceed this. A
  /// prompt that alone exceeds the budget still runs — solo.
  size_t max_batch_tokens = 256;
  /// Admission-queue capacity: Submit() on a full queue sheds the request
  /// with kResourceExhausted instead of queueing unbounded work.
  size_t queue_capacity = 16;
  /// KV-token budget for the prompt-prefix cache (0 disables caching).
  size_t kv_budget_tokens = 1024;
  /// Cap applied when a request leaves `max_new_tokens` at 0.
  size_t default_max_new_tokens = 16;
  /// Deadline applied when a request leaves `deadline` at zero; zero here
  /// too means requests without a deadline run unbounded.
  std::chrono::milliseconds default_deadline{0};
  /// Graceful-drain budget for Shutdown(): when > 0, shutdown lets
  /// already-admitted AND queued requests run to completion for up to this
  /// long before cancelling whatever remains, so a queue that fits the
  /// budget shuts down with zero cancellations. 0 keeps the original
  /// behavior (queued requests cancelled immediately, in-flight rows
  /// cancelled at the next token).
  std::chrono::milliseconds drain_deadline{0};
  /// Retry policy for fault-injectable steps (tokenize / prefill / decode
  /// step). The per-request deadline is merged into `retry.deadline` via
  /// util::BoundDeadline before each use (earliest bound wins), so retries
  /// never outlive the request NOR a server-wide retry deadline.
  util::RetryOptions retry;
  /// Background metrics exporter (period 0 disables it). When enabled the
  /// server owns the export thread, samples its queue depth into
  /// `serve/queue_depth_samples` on every tick (before any user on_tick),
  /// and stops the exporter — with a final flush — during Shutdown().
  obs::ExporterOptions exporter;
  /// Multi-tenant admission policy: per-tenant WDRR weights, queue caps,
  /// and token-bucket rate limits (DESIGN.md §14). The global bound is
  /// `queue_capacity` above.
  AdmissionOptions admission = {};
  /// Brownout hysteresis thresholds and degradation knobs (DESIGN.md §14).
  BrownoutOptions brownout = {};
  /// Deadline-infeasibility shedding: a request whose minimum service-time
  /// estimate (EWMA prefill/decode rates) exceeds `feasibility_margin`
  /// times its deadline budget is shed at admission with a `retry_after`
  /// hint instead of burning batch budget it provably cannot use. > 1
  /// demands a proof margin over the (noisy) estimate; 0 disables.
  double feasibility_margin = 4.0;
  /// Watchdog tick period: brownout evaluation and decode-loop heartbeat
  /// checks run once per interval. Must be > 0.
  std::chrono::milliseconds watchdog_interval{50};
  /// A decode loop whose heartbeat has not advanced for this long while
  /// work is pending is declared stalled: the watchdog fails the stuck
  /// batch with kUnavailable and the scheduler restarts its session with
  /// the queue intact (DESIGN.md §14). 0 disables stall detection
  /// (brownout ticks still run). Keep generous: a legitimate batched step
  /// under TSan can take tens of milliseconds.
  std::chrono::milliseconds watchdog_stall_timeout{2000};
};

/// Validates `options` (zero batch/queue sizes, negative deadlines,
/// exporter-less tick hooks, inverted brownout hysteresis, ...). The
/// server runs this at construction and fails fast: an invalid server
/// resolves every Submit() with the validation error instead of feeding
/// undefined scheduler behavior.
util::Status ValidateServeOptions(const ServeOptions& options);

/// One inference request. `max_new_tokens` 0 and `deadline` 0 fall back to
/// the server-wide defaults.
struct Request {
  std::string prompt;
  size_t max_new_tokens = 0;
  std::chrono::milliseconds deadline{0};
  /// Tenant this request bills against for fair admission (WDRR weight,
  /// queue cap, rate limit). Empty buckets under "default". The explicit
  /// initializer keeps brace-init call sites like `{prompt, 8}` clean
  /// under -Wmissing-field-initializers.
  std::string tenant_id = {};
  /// Priority tier: strict priority at admission, first-shed order under
  /// brownout (DESIGN.md §14).
  Priority priority = Priority::kNormal;
};

/// Outcome of one request. `status` is OK for a served request (including
/// degraded ones); kResourceExhausted for shed requests; kDeadlineExceeded
/// when the deadline fired (tokens then holds the partial prefix decoded so
/// far); kCancelled / kUnavailable around shutdown; kInvalidArgument for
/// malformed input; other codes for permanent decode failures.
struct Response {
  util::Status status = util::Status::OK();
  std::vector<int> tokens;  // newly generated ids (no prompt, no <eos>)
  std::string text;         // decoded `tokens`
  bool prefix_hit = false;  // served from a cached prefill
  bool degraded = false;    // served by the cacheless fallback path
  int retries = 0;          // transient faults absorbed by backoff
  /// Process-unique request id; doubles as the async track id under which
  /// this request's lifecycle renders in the Chrome trace. Always set,
  /// including for shed and cancelled requests.
  uint64_t request_id = 0;
  /// Adapter version the request was pinned to at admission (0 = base
  /// model): the whole token stream was decoded under exactly this version
  /// no matter how many swaps happened mid-flight (DESIGN.md §12).
  uint64_t adapter_sequence = 0;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  /// Admission → first token of the delivered stream; 0 when no token was
  /// generated (shed, cancelled, empty decode).
  double ttft_seconds = 0.0;
  /// Client backoff hint, seconds. Nonzero on every shed response
  /// (kResourceExhausted): the token-bucket refill time for rate-limit
  /// sheds, a queue-drain estimate for capacity sheds, the minimum
  /// service-time estimate for deadline-infeasible sheds. Also embedded in
  /// the status message (util::RetryAfterSeconds parses it back).
  double retry_after_seconds = 0.0;
};

/// Continuous-batching greedy-decode service over one TransformerLM.
///
/// A single scheduler thread owns a BatchedDecodeSession with
/// `max_batch_rows` KV slots and runs one loop: each iteration it admits
/// queued requests into free slots (prefills budgeted by
/// `max_batch_tokens`), picks every in-flight row's next token, retires
/// rows that finished / missed their deadline / were cancelled — without
/// stalling the rest — and forwards all surviving rows' new tokens in ONE
/// ragged batched step. Requests that lose their KV state to a permanent
/// fault are handed to a dedicated fallback thread for cacheless
/// full-recompute decoding, so a degraded request never blocks the batch.
///
/// Resilience contract (DESIGN.md §10): a bounded admission queue sheds
/// load instead of queueing unbounded work; every request carries a
/// deadline checked at token granularity (expiry returns the partial
/// decode, never wedges the scheduler); prefilled prompt prefixes are
/// shared across concurrent requests under an LRU KV-token budget;
/// transient faults on the tokenize / prefill / decode-step fault points
/// are retried with backoff, and a permanent mid-decode failure degrades
/// the request to the fallback path instead of failing it. Served token
/// streams are bit-exact with single-threaded GreedyDecode on both the
/// batched and the degraded path.
///
/// Overload control (DESIGN.md §14): admission runs through per-tenant
/// WDRR queues with strict priority tiers, per-tenant caps and token
/// buckets, so one tenant's burst sheds that tenant, not the fleet; every
/// shed response carries a nonzero retry-after hint. A request that
/// provably cannot meet its deadline (EWMA service-rate estimate) is shed
/// at admission. Under sustained queue pressure a brownout controller
/// steps through documented degradation levels with hysteresis, and a
/// watchdog thread heartbeats the decode loop — a stalled step fails its
/// batch with kUnavailable and the scheduler restarts without dropping
/// queued work (fault point `serve/decode_stall`).
///
/// Hot swap (DESIGN.md §12): SwapAdapters() publishes a new adapter
/// version with epoch/RCU semantics — each request pins the active version
/// at admission (a shared_ptr that keeps the weights alive) and decodes
/// every token under it; new admissions pick up the new version
/// immediately. The decode loop is never stalled: a step serving two
/// generations simply runs one packed forward per generation, so a swap
/// under full load drops zero requests. PrefixCache entries carry the
/// generation that prefilled them; the swap invalidates exactly the
/// replaced generation's prefixes (base-model prefixes survive).
///
/// Submit() is thread-safe, as is SwapAdapters(). The model and tokenizer
/// must outlive the server; the scheduler only reads them.
class InferenceServer {
 public:
  InferenceServer(const model::TransformerLM& lm,
                  const text::Tokenizer& tokenizer,
                  ServeOptions options = {});

  /// Drains the queue (cancelling queued requests) and joins the scheduler
  /// and fallback threads.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request. The future resolves when the request completes,
  /// is shed (immediately, with kResourceExhausted), or is cancelled by
  /// shutdown; it never blocks forever.
  std::future<Response> Submit(Request request) EXCLUDES(mu_);

  /// Synchronous convenience wrapper around Submit().
  Response Run(Request request);

  /// Stops accepting work and joins the scheduler and fallback threads.
  /// With `drain_deadline` 0: queued requests are cancelled immediately
  /// (kUnavailable) and in-flight rows notice cancellation at the next
  /// token. With a drain budget, admitted and queued work keeps running
  /// and only what is still unfinished at the deadline is cancelled.
  /// Idempotent; also run by the destructor.
  void Shutdown() EXCLUDES(mu_);

  /// Atomically replaces the adapter set served to NEW admissions.
  /// In-flight requests finish on the version they pinned at admission;
  /// the PrefixCache switches to the new generation and drops the replaced
  /// one's prefixes. Pass a default AdapterVersion{} (null adapter) to
  /// swap back to the base model. Callable any time, including under full
  /// load and before/after Shutdown().
  void SwapAdapters(AdapterVersion version) EXCLUDES(mu_);

  /// Sequence of the version new admissions currently pin (0 = base).
  uint64_t active_adapter_sequence() const EXCLUDES(mu_);

  /// Requests currently queued (excludes in-flight ones).
  size_t queue_depth() const EXCLUDES(mu_);

  /// KV tokens currently held by the prefix cache.
  size_t cached_tokens() const { return cache_.cached_tokens(); }

  /// Construction-time validation result (ValidateServeOptions). A non-OK
  /// server never starts its threads; every Submit() resolves immediately
  /// with this status. Immutable after construction.
  const util::Status& init_status() const { return init_status_; }

  /// Current brownout degradation level (0 = normal; DESIGN.md §14).
  int brownout_level() const { return brownout_.level(); }

  /// Pre-loads the service-rate estimate behind deadline-infeasibility
  /// shedding (tokens/second), e.g. warm-starting a fresh server from a
  /// previous run's observed rates. Live observations blend the seed away.
  void SeedRateEstimate(double prefill_tokens_per_s,
                        double decode_tokens_per_s) {
    estimator_.SeedRates(prefill_tokens_per_s, decode_tokens_per_s);
  }

 private:
  struct Job : AdmissionController::Item {
    Request request;
    std::promise<Response> promise;
    // Absolute deadline; the epoch default means none.
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point enqueued{};
    // Request-scoped trace handle, allocated at admission; every lifecycle
    // event for this request lands on its async track.
    obs::RequestTrace trace;
    // Admission work cached across budget deferrals: a job pushed back to
    // the queue head re-enters admission without re-firing the tokenize
    // fault point or losing its absorbed-retry count.
    bool tokenized = false;
    std::vector<int> prompt_ids;
    int carried_retries = 0;
  };

  /// One admitted request's in-flight state: its batch slot, decode
  /// progress, and the response being assembled. Owned by the scheduler
  /// until retirement (or by the fallback thread after degradation).
  struct Flight {
    std::unique_ptr<Job> job;
    Response response;
    util::Stopwatch watch;  // processing clock, started at admission
    std::vector<int> prompt_ids;
    size_t max_new = 0;
    std::vector<int> generated;
    std::vector<float> next_row;  // logits row scoring the next token
    bool prefilled = false;       // false → prompt not yet forwarded
    // Prompt-boundary snapshot shared with / destined for the PrefixCache.
    std::shared_ptr<const PrefixCache::Entry> cache_entry;
    // Adapter version pinned at admission (null = base model). The
    // shared_ptr keeps the weights alive for the flight's whole lifetime,
    // across any number of swaps (epoch pinning, DESIGN.md §12).
    std::shared_ptr<const AdapterVersion> version;
    size_t slot = 0;
    int64_t step_begin_us = 0;
    int64_t last_token_us = 0;
  };

  void SchedulerLoop() EXCLUDES(mu_);
  void FallbackLoop() EXCLUDES(mu_);

  /// Watchdog thread body: once per `watchdog_interval` it feeds queue
  /// occupancy to the brownout controller and checks the scheduler
  /// heartbeat; a heartbeat frozen for `watchdog_stall_timeout` while work
  /// is pending raises `serve/watchdog_stalls` and aborts the stuck batch
  /// (DESIGN.md §14).
  void WatchdogLoop() EXCLUDES(mu_);

  /// Admits a popped admission entry into `rows`. Returns false when the
  /// job was deferred (returned to the admission queue head) because its
  /// prefill does not fit the current step's token budget.
  bool AdmitOne(AdmissionController::Entry entry,
                model::BatchedDecodeSession* session,
                std::vector<std::unique_ptr<Flight>>* rows,
                size_t* step_tokens) EXCLUDES(mu_);

  /// Marks `flight` degraded and hands it to the fallback thread for
  /// cacheless full-recompute decoding.
  void DegradeToFallback(std::unique_ptr<Flight> flight) EXCLUDES(mu_);

  /// Cacheless full-recompute decode for a degraded request.
  void RunDegraded(Flight* flight);

  /// Terminal accounting: classifies `status` into the conservation
  /// counters, records per-outcome latency, closes the request's trace
  /// track, and resolves the promise.
  void Deliver(Flight* flight, util::Status status);

  /// TTFT / inter-token bookkeeping for the token just appended.
  void NoteToken(Flight* flight);

  /// Runs `step` under the request-deadline-bounded retry policy,
  /// accumulating retry counts into the flight's response.
  util::Status RetryStep(Flight* flight,
                         const std::function<util::Status()>& step,
                         const std::string& what);

  bool Expired(const Flight& flight) const {
    return flight.job->deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() >= flight.job->deadline;
  }

  /// True once work must be cancelled NOW: either an immediate shutdown,
  /// or a graceful drain whose deadline has passed (latches
  /// `shutting_down_` on first observation so every thread converges).
  bool HardCancel();

  /// Snapshot of the version new admissions pin (null = base model).
  std::shared_ptr<const AdapterVersion> CurrentVersion() const EXCLUDES(mu_);

  const model::TransformerLM& lm_;
  const text::Tokenizer& tokenizer_;
  const ServeOptions options_;
  PrefixCache cache_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  // ValidateServeOptions() result: written in the constructor before any
  // thread exists, read-only afterwards (safe unguarded).
  util::Status init_status_;
  // Brownout level machine: Tick() confined to the watchdog thread,
  // level() a relaxed atomic read from anywhere (admission, scheduler).
  BrownoutController brownout_;
  // EWMA service rates: written by the scheduler thread, read anywhere
  // through relaxed atomics (feasibility shedding, retry-after hints).
  RateEstimator estimator_;

  // Guards all queue/drain scheduler state below. Promises are resolved and
  // model steps run OUTSIDE it; PrefixCache::mu_ and the metrics registry
  // are never taken under it (DESIGN.md §13).
  mutable util::Mutex mu_;
  util::CondVar work_ready_;
  util::CondVar fallback_ready_;
  util::CondVar watchdog_cv_;
  // Tiered per-tenant WDRR admission queues — the passive replacement for
  // the old FIFO deque, guarded by the same lock (DESIGN.md §14).
  AdmissionController admission_ GUARDED_BY(mu_);
  std::deque<std::unique_ptr<Flight>> fallback_queue_ GUARDED_BY(mu_);
  bool shutdown_started_ GUARDED_BY(mu_) = false;
  bool watchdog_stop_ GUARDED_BY(mu_) = false;
  // Set after the scheduler thread is joined: from then on no new degraded
  // flights can arrive, so the fallback thread may exit once its queue is
  // empty — never before, or a flight degraded while the scheduler wound
  // down would orphan its promise.
  bool scheduler_done_ GUARDED_BY(mu_) = false;
  // Adapter version new admissions pin; null serves the base model.
  std::shared_ptr<const AdapterVersion> active_version_ GUARDED_BY(mu_);
  // Read mid-decode for cooperative cancellation without taking mu_.
  std::atomic<bool> shutting_down_{false};
  // Graceful drain: `drain_until_` is written before `draining_` is
  // released, and only read after an acquire load of `draining_`.
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point drain_until_{};
  // Scheduler liveness, read by the watchdog: the heartbeat advances once
  // per decode-loop iteration; inflight_rows_ mirrors the batch size so an
  // idle (legitimately sleeping) scheduler is never declared stalled.
  std::atomic<uint64_t> heartbeat_seq_{0};
  std::atomic<size_t> inflight_rows_{0};
  // Watchdog -> scheduler stall verdict: fail the in-flight batch with
  // kUnavailable and rebuild the decode session, keeping the queue intact.
  // Cleared by the scheduler once recovery completes.
  std::atomic<bool> stall_abort_{false};
  std::thread scheduler_;
  std::thread fallback_;
  std::thread watchdog_;
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_SERVER_H_
