#include "serve/server.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/stopwatch.h"

namespace infuserki::serve {
namespace {

using Clock = std::chrono::steady_clock;

struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* completed;
  obs::Counter* shed;
  obs::Counter* deadline_misses;
  obs::Counter* failures;
  obs::Counter* degraded;
  obs::Counter* retries;
  obs::Counter* prefix_hits;
  obs::Counter* prefix_misses;
  obs::Counter* cancelled;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_max;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* request_seconds;
  obs::Histogram* tokens_generated;
  obs::Histogram* ttft_seconds;
  obs::Histogram* inter_token_seconds;
  obs::Histogram* e2e_ok_seconds;
  obs::Histogram* e2e_deadline_seconds;
  obs::Histogram* e2e_error_seconds;
  obs::Histogram* queue_depth_samples;
};

ServeMetrics& Metrics() {
  // Magic-static resolution, relaxed-atomic updates afterwards (the
  // EngineMetrics idiom from decode_session.cc): workers publish without
  // the registry lock.
  static ServeMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new ServeMetrics{
        registry.GetCounter("serve/requests"),
        registry.GetCounter("serve/completed"),
        registry.GetCounter("serve/shed"),
        registry.GetCounter("serve/deadline_misses"),
        registry.GetCounter("serve/failures"),
        registry.GetCounter("serve/degraded"),
        registry.GetCounter("serve/retries"),
        registry.GetCounter("serve/prefix_hits"),
        registry.GetCounter("serve/prefix_misses"),
        registry.GetCounter("serve/cancelled"),
        registry.GetGauge("serve/queue_depth"),
        registry.GetGauge("serve/queue_depth_max"),
        registry.GetHistogram("serve/queue_wait_seconds"),
        registry.GetHistogram("serve/request_seconds"),
        registry.GetHistogram("serve/tokens_generated"),
        registry.GetHistogram("serve/ttft_seconds"),
        registry.GetHistogram("serve/inter_token_seconds"),
        registry.GetHistogram("serve/e2e_ok_seconds"),
        registry.GetHistogram("serve/e2e_deadline_seconds"),
        registry.GetHistogram("serve/e2e_error_seconds"),
        registry.GetHistogram("serve/queue_depth_samples")};
  }();
  return *metrics;
}

/// Argmax over one logits row with the exact first-max tie-break of
/// generation.cc's ArgmaxLastRow — bit-exactness with GreedyDecode depends
/// on scanning order and the strict `>` comparison.
int ArgmaxRow(const float* row, size_t vocab) {
  int best = 0;
  for (size_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

/// Copies the last row of a [T, V] logits tensor.
std::vector<float> LastRow(const tensor::Tensor& logits) {
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + (logits.dim(0) - 1) * vocab;
  return std::vector<float>(row, row + vocab);
}

}  // namespace

InferenceServer::InferenceServer(const model::TransformerLM& lm,
                                 const text::Tokenizer& tokenizer,
                                 ServeOptions options)
    : lm_(lm),
      tokenizer_(tokenizer),
      options_(std::move(options)),
      cache_(options_.kv_budget_tokens) {
  size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&InferenceServer::WorkerLoop, this);
  }
  if (options_.exporter.period.count() > 0) {
    // The server owns the export thread and chains its queue-depth
    // sampling ahead of any caller-provided tick hook.
    obs::ExporterOptions exporter_options = options_.exporter;
    std::function<void()> user_tick = std::move(exporter_options.on_tick);
    exporter_options.on_tick = [this, user_tick = std::move(user_tick)] {
      Metrics().queue_depth_samples->Record(
          static_cast<double>(queue_depth()));
      if (user_tick) user_tick();
    };
    exporter_ =
        std::make_unique<obs::MetricsExporter>(std::move(exporter_options));
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<Response> InferenceServer::Submit(Request request) {
  ServeMetrics& metrics = Metrics();
  metrics.requests->Increment();

  auto job = std::make_unique<Job>();
  std::chrono::milliseconds deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  job->request = std::move(request);
  job->enqueued = Clock::now();
  job->trace = obs::RequestTrace::Begin();
  if (deadline.count() > 0) job->deadline = job->enqueued + deadline;
  std::future<Response> future = job->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_started_) {
      metrics.cancelled->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status =
          util::Status::Unavailable("server is shutting down");
      job->trace.Mark("cancelled");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Load shedding: reject now instead of queueing unbounded work the
      // deadline will kill anyway.
      metrics.shed->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status = util::Status::ResourceExhausted(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) + " requests)");
      job->trace.Mark("shed");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(job));
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    metrics.queue_depth_max->UpdateMax(
        static_cast<double>(queue_.size()));
  }
  work_ready_.notify_one();
  return future;
}

Response InferenceServer::Run(Request request) {
  return Submit(std::move(request)).get();
}

void InferenceServer::Shutdown() {
  std::deque<std::unique_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_started_) {
      shutdown_started_ = true;
      shutting_down_.store(true, std::memory_order_relaxed);
      orphaned.swap(queue_);
      Metrics().queue_depth->Set(0.0);
    }
  }
  work_ready_.notify_all();
  for (std::unique_ptr<Job>& job : orphaned) {
    Metrics().cancelled->Increment();
    Response response;
    response.request_id = job->trace.id();
    response.status =
        util::Status::Unavailable("server shut down before execution");
    job->trace.Mark("cancelled");
    job->trace.End("serve/request");
    job->promise.set_value(std::move(response));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // After the last request resolved: one final flush so short-lived
  // servers still leave a complete record, then the thread stops.
  if (exporter_ != nullptr) exporter_->Stop();
}

size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void InferenceServer::WorkerLoop() {
  while (true) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_started_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // only reachable on shutdown
      job = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    Process(job.get());
  }
}

void InferenceServer::Process(Job* job) {
  OBS_SPAN("serve/request");
  tensor::NoGradGuard no_grad;
  ServeMetrics& metrics = Metrics();
  util::Stopwatch watch;
  Response response;
  response.request_id = job->trace.id();
  response.queue_seconds =
      std::chrono::duration<double>(Clock::now() - job->enqueued).count();
  metrics.queue_wait_seconds->Record(response.queue_seconds);
  job->trace.Phase("queue", job->trace.begin_us(), obs::NowMicros());

  const bool bounded = job->deadline != Clock::time_point{};
  auto expired = [&] { return bounded && Clock::now() >= job->deadline; };

  // Token-level SLO bookkeeping shared by the cached and degraded paths:
  // the first token of the (eventually delivered) stream stamps TTFT,
  // every later token records the inter-token gap.
  int64_t last_token_us = 0;
  auto note_token = [&](size_t stream_size) {
    int64_t now_us = obs::NowMicros();
    if (stream_size == 1) {
      response.ttft_seconds =
          std::chrono::duration<double>(Clock::now() - job->enqueued)
              .count();
    } else if (last_token_us != 0) {
      metrics.inter_token_seconds->Record(
          static_cast<double>(now_us - last_token_us) * 1e-6);
    }
    last_token_us = now_us;
  };

  // Single exit: classify the terminal status into the accounting
  // counters (requests == completed + shed + deadline_misses + cancelled
  // + failures holds at every quiescent point), record the per-outcome
  // latency, close the request's trace track, and resolve the promise.
  auto deliver = [&](util::Status status) {
    response.status = std::move(status);
    double processing = watch.ElapsedSeconds();
    response.total_seconds = response.queue_seconds + processing;
    metrics.request_seconds->Record(processing);
    if (response.ttft_seconds > 0.0) {
      metrics.ttft_seconds->Record(response.ttft_seconds);
    }
    switch (response.status.code()) {
      case util::StatusCode::kOk:
        metrics.tokens_generated->Record(
            static_cast<double>(response.tokens.size()));
        metrics.completed->Increment();
        metrics.e2e_ok_seconds->Record(response.total_seconds);
        break;
      case util::StatusCode::kDeadlineExceeded:
        metrics.deadline_misses->Increment();
        metrics.e2e_deadline_seconds->Record(response.total_seconds);
        job->trace.Mark("deadline");
        break;
      case util::StatusCode::kCancelled:
      case util::StatusCode::kUnavailable:
        metrics.cancelled->Increment();
        metrics.e2e_error_seconds->Record(response.total_seconds);
        job->trace.Mark("cancelled");
        break;
      default:
        metrics.failures->Increment();
        metrics.e2e_error_seconds->Record(response.total_seconds);
        job->trace.Mark("failure");
    }
    job->trace.End("serve/request");
    job->promise.set_value(std::move(response));
  };

  if (shutting_down_.load(std::memory_order_relaxed)) {
    deliver(util::Status::Cancelled("server shutting down"));
    return;
  }
  if (expired()) {
    deliver(util::Status::DeadlineExceeded("deadline expired in queue"));
    return;
  }

  // Per-request retry policy: the request deadline bounds the whole
  // backoff loop, so retries can never outlive the request they serve.
  util::RetryOptions retry = options_.retry;
  retry.deadline = job->deadline;
  auto retry_step = [&](const std::function<util::Status()>& step,
                        const std::string& what) {
    int attempts = 0;
    util::Status status = util::RetryWithBackoff(
        [&] {
          ++attempts;
          return step();
        },
        retry, what);
    if (attempts > 1) {
      metrics.retries->Increment(static_cast<uint64_t>(attempts - 1));
      response.retries += attempts - 1;
      job->trace.Mark("retry:" + what);
    }
    return status;
  };

  util::Status tokenize_status = retry_step(
      [] { return FAULT_POINT("serve/tokenize"); }, "serve tokenize");
  if (!tokenize_status.ok()) {
    deliver(std::move(tokenize_status));
    return;
  }
  const std::vector<int> prompt_ids =
      tokenizer_.EncodeWithSpecials(job->request.prompt, false);

  const size_t max_seq = lm_.config().max_seq_len;
  const size_t vocab = lm_.config().vocab_size;
  if (prompt_ids.size() >= max_seq) {
    deliver(util::Status::InvalidArgument(
        "prompt of " + std::to_string(prompt_ids.size()) +
        " tokens leaves no room under max_seq_len " +
        std::to_string(max_seq)));
    return;
  }
  size_t max_new = job->request.max_new_tokens > 0
                       ? job->request.max_new_tokens
                       : options_.default_max_new_tokens;
  max_new = std::min(max_new, max_seq - prompt_ids.size());
  if (max_new == 0) {
    deliver(util::Status::OK());
    return;
  }

  // --- Primary path: KV-cached incremental decode. -----------------------
  std::unique_ptr<PrefixCache::Entry> entry = cache_.Take(prompt_ids);
  if (entry != nullptr) {
    metrics.prefix_hits->Increment();
    response.prefix_hit = true;
    job->trace.Mark("prefix_hit");
  } else {
    metrics.prefix_misses->Increment();
    int64_t prefill_begin_us = obs::NowMicros();
    util::Status prefill_status = retry_step(
        [] { return FAULT_POINT("serve/prefill"); }, "serve prefill");
    if (prefill_status.ok()) {
      entry = std::make_unique<PrefixCache::Entry>();
      entry->prompt = prompt_ids;
      entry->session = std::make_unique<model::DecodeSession>(lm_);
      tensor::Tensor logits = entry->session->Prefill(prompt_ids);
      entry->mark = entry->session->Save();
      entry->last_row = LastRow(logits);
      job->trace.Phase("prefill", prefill_begin_us, obs::NowMicros());
    }
    // A permanent prefill fault leaves `entry` null: fall through to the
    // cacheless path below rather than failing the request.
  }

  std::vector<int> generated;
  bool poisoned = (entry == nullptr);
  if (entry != nullptr) {
    // Mirrors generation.cc DecodeIncremental token for token; the
    // cancellation / deadline probes only cut the loop short, they never
    // change which token is picked.
    std::vector<float> row = entry->last_row;
    int64_t step_begin_us = obs::NowMicros();
    while (true) {
      if (shutting_down_.load(std::memory_order_relaxed)) {
        deliver(util::Status::Cancelled("server shutting down"));
        return;  // cache entry dropped; the server is going away anyway
      }
      if (expired()) {
        entry->session->Rewind(entry->mark);
        if (cache_.Put(std::move(entry)) > 0) job->trace.Mark("cache_evict");
        response.tokens = std::move(generated);
        deliver(util::Status::DeadlineExceeded(
            "deadline expired after " +
            std::to_string(response.tokens.size()) + " tokens"));
        return;
      }
      int next = ArgmaxRow(row.data(), vocab);
      if (next == text::kEosId) break;
      generated.push_back(next);
      note_token(generated.size());
      job->trace.Phase("decode_step", step_begin_us, last_token_us);
      step_begin_us = last_token_us;
      if (generated.size() >= max_new) break;
      if (prompt_ids.size() + generated.size() >= max_seq) break;
      util::Status step_status = retry_step(
          [] { return FAULT_POINT("serve/decode_step"); }, "decode step");
      if (!step_status.ok()) {
        // Permanent mid-decode failure: the session's cache state is
        // suspect, so poison-discard it and restart on the cacheless
        // fallback instead of failing the request.
        poisoned = true;
        entry.reset();
        break;
      }
      row = LastRow(entry->session->Decode(next));
    }
    if (!poisoned) {
      entry->session->Rewind(entry->mark);
      if (cache_.Put(std::move(entry)) > 0) job->trace.Mark("cache_evict");
    }
  }

  // --- Degraded path: cacheless full-recompute fallback. ------------------
  // Mirrors generation.cc DecodeFullRecompute exactly, so the token stream
  // stays bit-identical to GreedyDecode even with the engine unavailable.
  if (poisoned) {
    metrics.degraded->Increment();
    response.degraded = true;
    response.prefix_hit = false;
    job->trace.Mark("degraded");
    generated.clear();
    // The delivered stream restarts from scratch, so TTFT and the
    // inter-token clock restart with it.
    response.ttft_seconds = 0.0;
    last_token_us = 0;
    int64_t step_begin_us = obs::NowMicros();
    std::vector<int> sequence = prompt_ids;
    for (size_t step = 0; step < max_new; ++step) {
      if (shutting_down_.load(std::memory_order_relaxed)) {
        deliver(util::Status::Cancelled("server shutting down"));
        return;
      }
      if (expired()) {
        response.tokens = std::move(generated);
        deliver(util::Status::DeadlineExceeded(
            "deadline expired after " +
            std::to_string(response.tokens.size()) +
            " tokens (degraded path)"));
        return;
      }
      if (sequence.size() >= max_seq) break;
      tensor::Tensor logits = lm_.Logits(sequence);
      int next = ArgmaxRow(
          logits.data() + (logits.dim(0) - 1) * vocab, vocab);
      if (next == text::kEosId) break;
      generated.push_back(next);
      sequence.push_back(next);
      note_token(generated.size());
      job->trace.Phase("decode_step", step_begin_us, last_token_us);
      step_begin_us = last_token_us;
    }
  }

  response.tokens = std::move(generated);
  util::StatusOr<std::string> text = tokenizer_.Decode(response.tokens);
  if (!text.ok()) {
    deliver(text.status());
    return;
  }
  response.text = std::move(*text);
  deliver(util::Status::OK());
}

}  // namespace infuserki::serve
