#include "serve/server.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/stopwatch.h"

namespace infuserki::serve {
namespace {

using Clock = std::chrono::steady_clock;

struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* completed;
  obs::Counter* shed;
  obs::Counter* deadline_misses;
  obs::Counter* failures;
  obs::Counter* degraded;
  obs::Counter* retries;
  obs::Counter* prefix_hits;
  obs::Counter* prefix_misses;
  obs::Counter* cancelled;
  obs::Counter* admitted;
  obs::Counter* shed_queue_full;
  obs::Counter* shed_tenant_cap;
  obs::Counter* shed_rate_limited;
  obs::Counter* shed_brownout;
  obs::Counter* shed_infeasible;
  obs::Counter* brownout_transitions;
  obs::Counter* watchdog_stalls;
  obs::Counter* watchdog_recoveries;
  obs::Counter* swap_applied;
  obs::Counter* swap_prefix_invalidations;
  obs::Gauge* swap_active_sequence;
  obs::Gauge* brownout_level;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_max;
  obs::Gauge* batch_size;
  obs::Histogram* batch_occupancy;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* request_seconds;
  obs::Histogram* tokens_generated;
  obs::Histogram* ttft_seconds;
  obs::Histogram* inter_token_seconds;
  obs::Histogram* e2e_ok_seconds;
  obs::Histogram* e2e_deadline_seconds;
  obs::Histogram* e2e_error_seconds;
  obs::Histogram* queue_depth_samples;
  obs::Histogram* brownout_level_samples;
};

ServeMetrics& Metrics() {
  // Magic-static resolution, relaxed-atomic updates afterwards (the
  // EngineMetrics idiom from decode_session.cc): the scheduler and
  // fallback threads publish without the registry lock.
  static ServeMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new ServeMetrics{
        registry.GetCounter("serve/requests"),
        registry.GetCounter("serve/completed"),
        registry.GetCounter("serve/shed"),
        registry.GetCounter("serve/deadline_misses"),
        registry.GetCounter("serve/failures"),
        registry.GetCounter("serve/degraded"),
        registry.GetCounter("serve/retries"),
        registry.GetCounter("serve/prefix_hits"),
        registry.GetCounter("serve/prefix_misses"),
        registry.GetCounter("serve/cancelled"),
        registry.GetCounter("serve/admitted"),
        registry.GetCounter("serve/shed_queue_full"),
        registry.GetCounter("serve/shed_tenant_cap"),
        registry.GetCounter("serve/shed_rate_limited"),
        registry.GetCounter("serve/shed_brownout"),
        registry.GetCounter("serve/shed_infeasible"),
        registry.GetCounter("serve/brownout_transitions"),
        registry.GetCounter("serve/watchdog_stalls"),
        registry.GetCounter("serve/watchdog_recoveries"),
        registry.GetCounter("serve/swap_applied"),
        registry.GetCounter("serve/swap_prefix_invalidations"),
        registry.GetGauge("serve/swap_active_sequence"),
        registry.GetGauge("serve/brownout_level"),
        registry.GetGauge("serve/queue_depth"),
        registry.GetGauge("serve/queue_depth_max"),
        registry.GetGauge("serve/batch_size"),
        registry.GetHistogram("serve/batch_occupancy"),
        registry.GetHistogram("serve/queue_wait_seconds"),
        registry.GetHistogram("serve/request_seconds"),
        registry.GetHistogram("serve/tokens_generated"),
        registry.GetHistogram("serve/ttft_seconds"),
        registry.GetHistogram("serve/inter_token_seconds"),
        registry.GetHistogram("serve/e2e_ok_seconds"),
        registry.GetHistogram("serve/e2e_deadline_seconds"),
        registry.GetHistogram("serve/e2e_error_seconds"),
        registry.GetHistogram("serve/queue_depth_samples"),
        registry.GetHistogram("serve/brownout_level_samples")};
  }();
  return *metrics;
}

/// Argmax over one logits row with the exact first-max tie-break of
/// generation.cc's ArgmaxLastRow — bit-exactness with GreedyDecode depends
/// on scanning order and the strict `>` comparison.
int ArgmaxRow(const float* row, size_t vocab) {
  int best = 0;
  for (size_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

/// Copies the last row of a [T, V] logits tensor.
std::vector<float> LastRow(const tensor::Tensor& logits) {
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + (logits.dim(0) - 1) * vocab;
  return std::vector<float>(row, row + vocab);
}

/// Maps a tenant id onto the metric-name alphabet (and empty onto
/// "default") so arbitrary client strings cannot mint malformed or
/// colliding-by-accident metric names.
std::string SanitizeTenant(const std::string& tenant) {
  std::string name = tenant.empty() ? "default" : tenant;
  for (char& c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
              c == '-';
    if (!ok) c = '_';
  }
  return name;
}

struct TenantCounters {
  obs::Counter* admitted;
  obs::Counter* shed;
};

/// Resolves the per-tenant admit/shed counters under the documented
/// `serve/tenant/<tenant>/...` prefix (DESIGN.md §6). Takes the registry
/// lock — callers must resolve BEFORE acquiring the server's mu_ (§13).
TenantCounters TenantCountersFor(const std::string& tenant) {
  obs::Registry& registry = obs::Registry::Get();
  std::string name = SanitizeTenant(tenant);
  return {registry.GetCounter("serve/tenant/" + name + "/admitted"),
          registry.GetCounter("serve/tenant/" + name + "/shed")};
}

/// Pre-tokenization prompt-size estimate for feasibility shedding. The
/// word-level tokenizer emits roughly one id per whitespace-separated word
/// (plus specials), so a split count is accurate enough for an admission
/// estimate without paying (or fault-injecting) real tokenization.
size_t EstimatePromptTokens(const std::string& prompt) {
  size_t tokens = 1;  // slack for special tokens
  bool in_word = false;
  for (char c : prompt) {
    bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (!space && !in_word) ++tokens;
    in_word = !space;
  }
  return tokens;
}

obs::Counter* ShedReasonCounter(ServeMetrics& metrics, ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return metrics.shed_queue_full;
    case ShedReason::kTenantCap:
      return metrics.shed_tenant_cap;
    case ShedReason::kRateLimited:
      return metrics.shed_rate_limited;
    case ShedReason::kBrownout:
      return metrics.shed_brownout;
    case ShedReason::kDeadlineInfeasible:
      return metrics.shed_infeasible;
    case ShedReason::kNone:
      break;
  }
  return metrics.shed_queue_full;  // unreachable; keeps the switch total
}

}  // namespace

util::Status ValidateServeOptions(const ServeOptions& options) {
  auto invalid = [](std::string msg) {
    return util::Status::InvalidArgument(std::move(msg));
  };
  if (options.max_batch_rows == 0) {
    return invalid("ServeOptions::max_batch_rows must be >= 1");
  }
  if (options.max_batch_tokens == 0) {
    return invalid("ServeOptions::max_batch_tokens must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return invalid(
        "ServeOptions::queue_capacity must be >= 1 (0 would shed every "
        "request)");
  }
  if (options.default_deadline.count() < 0) {
    return invalid("ServeOptions::default_deadline must be >= 0");
  }
  if (options.drain_deadline.count() < 0) {
    return invalid("ServeOptions::drain_deadline must be >= 0");
  }
  if (options.retry.max_attempts < 1) {
    return invalid("ServeOptions::retry.max_attempts must be >= 1");
  }
  if (options.retry.base_delay_ms < 0) {
    return invalid("ServeOptions::retry.base_delay_ms must be >= 0");
  }
  if (options.retry.multiplier < 1.0) {
    return invalid("ServeOptions::retry.multiplier must be >= 1");
  }
  if (options.exporter.period.count() < 0) {
    return invalid("ServeOptions::exporter.period must be >= 0");
  }
  if (options.exporter.period.count() > 0 &&
      options.exporter.window_seconds <= 0.0) {
    return invalid(
        "ServeOptions::exporter.window_seconds must be > 0 when the "
        "exporter runs");
  }
  if (options.exporter.period.count() == 0 && options.exporter.on_tick) {
    return invalid(
        "ServeOptions::exporter.on_tick is set but exporter.period is 0: "
        "the tick (and its window sampling) would never run");
  }
  if (options.admission.quantum <= 0.0) {
    return invalid("ServeOptions::admission.quantum must be > 0");
  }
  auto check_policy = [&](const std::string& who,
                          const TenantPolicy& policy) {
    if (policy.weight <= 0.0) {
      return invalid("ServeOptions::admission " + who +
                     ": weight must be > 0");
    }
    if (policy.rate_qps < 0.0) {
      return invalid("ServeOptions::admission " + who +
                     ": rate_qps must be >= 0");
    }
    if (policy.burst < 0.0) {
      return invalid("ServeOptions::admission " + who +
                     ": burst must be >= 0");
    }
    return util::Status::OK();
  };
  RETURN_IF_ERROR(
      check_policy("default_policy", options.admission.default_policy));
  for (const auto& [name, policy] : options.admission.tenants) {
    RETURN_IF_ERROR(check_policy("tenant \"" + name + "\"", policy));
  }
  if (options.brownout.enter_occupancy <= options.brownout.exit_occupancy) {
    return invalid(
        "ServeOptions::brownout hysteresis inverted: enter_occupancy must "
        "exceed exit_occupancy");
  }
  if (options.brownout.enter_ticks < 1 || options.brownout.exit_ticks < 1) {
    return invalid(
        "ServeOptions::brownout enter_ticks/exit_ticks must be >= 1");
  }
  if (options.brownout.clamp_max_new_tokens == 0) {
    return invalid(
        "ServeOptions::brownout.clamp_max_new_tokens must be >= 1");
  }
  if (options.brownout.retry_after_s <= 0.0) {
    return invalid("ServeOptions::brownout.retry_after_s must be > 0");
  }
  if (options.feasibility_margin < 0.0) {
    return invalid("ServeOptions::feasibility_margin must be >= 0");
  }
  if (options.watchdog_interval.count() <= 0) {
    return invalid("ServeOptions::watchdog_interval must be > 0");
  }
  if (options.watchdog_stall_timeout.count() < 0) {
    return invalid("ServeOptions::watchdog_stall_timeout must be >= 0");
  }
  return util::Status::OK();
}

InferenceServer::InferenceServer(const model::TransformerLM& lm,
                                 const text::Tokenizer& tokenizer,
                                 ServeOptions options)
    : lm_(lm),
      tokenizer_(tokenizer),
      options_(std::move(options)),
      cache_(options_.kv_budget_tokens),
      brownout_(options_.brownout),
      admission_(options_.admission, options_.queue_capacity) {
  init_status_ = ValidateServeOptions(options_);
  if (!init_status_.ok()) {
    // Fail fast: no threads, no exporter. Every Submit() resolves with
    // init_status_ and Shutdown() degenerates to a no-op.
    LOG_WARNING << "InferenceServer not started: " << init_status_;
    return;
  }
  scheduler_ = std::thread(&InferenceServer::SchedulerLoop, this);
  fallback_ = std::thread(&InferenceServer::FallbackLoop, this);
  watchdog_ = std::thread(&InferenceServer::WatchdogLoop, this);
  if (options_.exporter.period.count() > 0) {
    // The server owns the export thread and chains its queue-depth
    // sampling ahead of any caller-provided tick hook.
    obs::ExporterOptions exporter_options = options_.exporter;
    std::function<void()> user_tick = std::move(exporter_options.on_tick);
    exporter_options.on_tick = [this, user_tick = std::move(user_tick)] {
      Metrics().queue_depth_samples->Record(
          static_cast<double>(queue_depth()));
      if (user_tick) user_tick();
    };
    exporter_ =
        std::make_unique<obs::MetricsExporter>(std::move(exporter_options));
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<Response> InferenceServer::Submit(Request request) {
  ServeMetrics& metrics = Metrics();
  metrics.requests->Increment();
  // Per-tenant counters resolve through the registry lock, which is never
  // taken under mu_ (DESIGN.md §13) — so resolve them up front.
  TenantCounters tenant = TenantCountersFor(request.tenant_id);

  auto job = std::make_unique<Job>();
  std::chrono::milliseconds deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  job->enqueued = Clock::now();
  job->trace = obs::RequestTrace::Begin();
  if (deadline.count() > 0) job->deadline = job->enqueued + deadline;
  std::future<Response> future = job->promise.get_future();

  // Deadline-infeasibility check (outside the lock — it reads only
  // relaxed-atomic rates): a request whose minimum service-time estimate
  // exceeds `feasibility_margin` times its budget provably cannot finish,
  // so shed it now with the estimate as its retry hint. Zero margin (or a
  // cold estimator, or no deadline) disables the proof.
  double infeasible_estimate_s = 0.0;
  if (options_.feasibility_margin > 0.0 && deadline.count() > 0) {
    double budget_s =
        std::chrono::duration<double>(deadline).count();
    double estimate_s = estimator_.EstimateServiceSeconds(
        EstimatePromptTokens(request.prompt), 1);
    if (estimate_s > budget_s * options_.feasibility_margin) {
      infeasible_estimate_s = estimate_s;
    }
  }
  std::string tenant_id = request.tenant_id;
  Priority priority = request.priority;
  job->request = std::move(request);

  ShedReason reason = ShedReason::kNone;
  double hint_s = 0.0;
  {
    util::MutexLock lock(mu_);
    if (!init_status_.ok()) {
      // Invalid construction: the scheduler never started, so resolve
      // here — a hung future would be strictly worse than a crisp error.
      metrics.failures->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status = init_status_;
      job->trace.Mark("failure");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    if (shutdown_started_) {
      metrics.cancelled->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status =
          util::Status::Unavailable("server is shutting down");
      job->trace.Mark("cancelled");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    if (infeasible_estimate_s > 0.0) {
      reason = ShedReason::kDeadlineInfeasible;
      hint_s = infeasible_estimate_s;
    } else {
      AdmissionController::Verdict verdict = admission_.Offer(
          tenant_id, priority, job->enqueued, brownout_.level());
      reason = verdict.reason;
      if (reason == ShedReason::kNone) {
        admission_.Push(AdmissionController::Entry{std::move(job),
                                                   tenant_id, priority});
        metrics.queue_depth->Set(static_cast<double>(admission_.size()));
        metrics.queue_depth_max->UpdateMax(
            static_cast<double>(admission_.size()));
      } else {
        hint_s = verdict.retry_after_s;
      }
    }
  }
  if (reason != ShedReason::kNone) {
    // Targeted load shedding: reject now — and tell the client when a
    // retry has a chance. Rate-limit sheds carry the exact bucket refill
    // time; capacity sheds a queue-drain estimate; brownout sheds the
    // level-scaled backoff; infeasible sheds the service-time estimate.
    switch (reason) {
      case ShedReason::kBrownout:
        hint_s = options_.brownout.retry_after_s *
                 static_cast<double>(std::max(1, brownout_.level()));
        break;
      case ShedReason::kQueueFull:
      case ShedReason::kTenantCap: {
        double drain_s = estimator_.request_seconds();
        hint_s = drain_s > 0.0 ? drain_s : 0.05;
        break;
      }
      default:
        break;  // rate-limited / infeasible: hint already set
    }
    hint_s = std::max(hint_s, 0.001);
    metrics.shed->Increment();
    ShedReasonCounter(metrics, reason)->Increment();
    tenant.shed->Increment();
    Response response;
    response.request_id = job->trace.id();
    response.retry_after_seconds = hint_s;
    response.status = util::WithRetryAfter(
        util::Status::ResourceExhausted(
            std::string("shed (") + ShedReasonName(reason) + "), tenant " +
            SanitizeTenant(tenant_id)),
        hint_s);
    job->trace.Mark("shed");
    job->trace.End("serve/request");
    job->promise.set_value(std::move(response));
    return future;
  }
  tenant.admitted->Increment();
  metrics.admitted->Increment();
  work_ready_.NotifyOne();
  return future;
}

Response InferenceServer::Run(Request request) {
  return Submit(std::move(request)).get();
}

void InferenceServer::Shutdown() {
  std::vector<AdmissionController::Entry> orphaned;
  {
    util::MutexLock lock(mu_);
    if (!shutdown_started_) {
      shutdown_started_ = true;
      if (options_.drain_deadline.count() > 0) {
        // Graceful drain: leave the queue alone — the scheduler keeps
        // admitting and decoding until queue and batch are empty or the
        // drain deadline passes (HardCancel() latches the hard stop).
        drain_until_ = Clock::now() + options_.drain_deadline;
        draining_.store(true, std::memory_order_release);
      } else {
        shutting_down_.store(true, std::memory_order_relaxed);
        orphaned = admission_.DrainAll();
        Metrics().queue_depth->Set(0.0);
      }
    }
  }
  work_ready_.NotifyAll();
  fallback_ready_.NotifyAll();
  for (AdmissionController::Entry& entry : orphaned) {
    std::unique_ptr<Job> job(static_cast<Job*>(entry.item.release()));
    Metrics().cancelled->Increment();
    Response response;
    response.request_id = job->trace.id();
    response.status =
        util::Status::Unavailable("server shut down before execution");
    job->trace.Mark("cancelled");
    job->trace.End("serve/request");
    job->promise.set_value(std::move(response));
  }
  if (scheduler_.joinable()) scheduler_.join();
  {
    // The scheduler may have handed degraded rows to the fallback thread
    // on its way out; only now that it is joined can the fallback thread
    // safely exit on an empty queue (see scheduler_done_).
    util::MutexLock lock(mu_);
    scheduler_done_ = true;
  }
  fallback_ready_.NotifyAll();
  if (fallback_.joinable()) fallback_.join();
  {
    util::MutexLock lock(mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.NotifyAll();
  if (watchdog_.joinable()) watchdog_.join();
  // After the last request resolved: one final flush so short-lived
  // servers still leave a complete record, then the thread stops.
  if (exporter_ != nullptr) exporter_->Stop();
}

bool InferenceServer::HardCancel() {
  if (shutting_down_.load(std::memory_order_relaxed)) return true;
  if (draining_.load(std::memory_order_acquire) &&
      Clock::now() >= drain_until_) {
    // Drain budget exhausted: latch the hard stop so every thread (and
    // every subsequent HardCancel check) converges on cancellation.
    shutting_down_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void InferenceServer::SwapAdapters(AdapterVersion version) {
  std::shared_ptr<const AdapterVersion> next;
  if (version.adapter != nullptr) {
    next = std::make_shared<const AdapterVersion>(std::move(version));
  }
  uint64_t new_sequence = next != nullptr ? next->sequence : 0;
  uint64_t old_sequence = 0;
  {
    util::MutexLock lock(mu_);
    old_sequence = active_version_ != nullptr ? active_version_->sequence : 0;
    active_version_ = std::move(next);
  }
  ServeMetrics& metrics = Metrics();
  metrics.swap_applied->Increment();
  metrics.swap_active_sequence->Set(static_cast<double>(new_sequence));
  // Admissions must see the new generation before the replaced one's
  // prefixes vanish, so a concurrent lookup can never resurrect the old
  // version's K/V pages under the new generation.
  cache_.SetActiveGeneration(new_sequence);
  if (old_sequence != 0 && old_sequence != new_sequence) {
    size_t invalidated = cache_.InvalidateGeneration(old_sequence);
    if (invalidated > 0) {
      metrics.swap_prefix_invalidations->Increment(invalidated);
    }
  }
}

uint64_t InferenceServer::active_adapter_sequence() const {
  util::MutexLock lock(mu_);
  return active_version_ != nullptr ? active_version_->sequence : 0;
}

std::shared_ptr<const AdapterVersion> InferenceServer::CurrentVersion()
    const {
  util::MutexLock lock(mu_);
  return active_version_;
}

size_t InferenceServer::queue_depth() const {
  util::MutexLock lock(mu_);
  return admission_.size();
}

void InferenceServer::NoteToken(Flight* flight) {
  int64_t now_us = obs::NowMicros();
  if (flight->generated.size() == 1) {
    flight->response.ttft_seconds =
        std::chrono::duration<double>(Clock::now() - flight->job->enqueued)
            .count();
  } else if (flight->last_token_us != 0) {
    Metrics().inter_token_seconds->Record(
        static_cast<double>(now_us - flight->last_token_us) * 1e-6);
  }
  flight->last_token_us = now_us;
}

void InferenceServer::Deliver(Flight* flight, util::Status status) {
  ServeMetrics& metrics = Metrics();
  Response& response = flight->response;
  response.status = std::move(status);
  double processing = flight->watch.ElapsedSeconds();
  response.total_seconds = response.queue_seconds + processing;
  metrics.request_seconds->Record(processing);
  if (response.ttft_seconds > 0.0) {
    metrics.ttft_seconds->Record(response.ttft_seconds);
  }
  // Single exit: classify the terminal status into the accounting
  // counters (requests == completed + shed + deadline_misses + cancelled
  // + failures holds at every quiescent point), record the per-outcome
  // latency, close the request's trace track, and resolve the promise.
  switch (response.status.code()) {
    case util::StatusCode::kOk:
      metrics.tokens_generated->Record(
          static_cast<double>(response.tokens.size()));
      metrics.completed->Increment();
      metrics.e2e_ok_seconds->Record(response.total_seconds);
      // Completed processing times feed the queue-drain estimate behind
      // capacity-shed retry hints.
      estimator_.ObserveRequest(processing);
      break;
    case util::StatusCode::kDeadlineExceeded:
      metrics.deadline_misses->Increment();
      metrics.e2e_deadline_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("deadline");
      break;
    case util::StatusCode::kCancelled:
    case util::StatusCode::kUnavailable:
      metrics.cancelled->Increment();
      metrics.e2e_error_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("cancelled");
      break;
    default:
      metrics.failures->Increment();
      metrics.e2e_error_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("failure");
  }
  flight->job->trace.End("serve/request");
  flight->job->promise.set_value(std::move(response));
}

util::Status InferenceServer::RetryStep(
    Flight* flight, const std::function<util::Status()>& step,
    const std::string& what) {
  // Per-request retry policy: the request deadline is MERGED into any
  // configured server-wide retry deadline (earliest bound wins), so the
  // backoff loop can outlive neither the request it serves nor the
  // server's own policy. A plain assignment here once let a no-deadline
  // request erase the configured bound — hence BoundDeadline.
  util::RetryOptions retry =
      util::BoundDeadline(options_.retry, flight->job->deadline);
  int attempts = 0;
  util::Status status = util::RetryWithBackoff(
      [&] {
        ++attempts;
        return step();
      },
      retry, what);
  if (attempts > 1) {
    Metrics().retries->Increment(static_cast<uint64_t>(attempts - 1));
    flight->response.retries += attempts - 1;
    flight->job->trace.Mark("retry:" + what);
  }
  return status;
}

bool InferenceServer::AdmitOne(AdmissionController::Entry entry,
                               model::BatchedDecodeSession* session,
                               std::vector<std::unique_ptr<Flight>>* rows,
                               size_t* step_tokens) {
  ServeMetrics& metrics = Metrics();
  auto flight = std::make_unique<Flight>();
  // The admission queue stores jobs behind the polymorphic Item base; the
  // server is the only pusher, so the downcast is exact.
  flight->job.reset(static_cast<Job*>(entry.item.release()));
  Job* j = flight->job.get();
  flight->response.request_id = j->trace.id();
  flight->response.retries = j->carried_retries;
  // Queue-side stats are recorded exactly once per request — on every
  // admission outcome except deferral (a deferred job re-enters admission
  // later and its continued wait still counts as queue time).
  auto note_queue = [&] {
    flight->response.queue_seconds =
        std::chrono::duration<double>(Clock::now() - j->enqueued).count();
    metrics.queue_wait_seconds->Record(flight->response.queue_seconds);
    j->trace.Phase("queue", j->trace.begin_us(), obs::NowMicros());
  };

  if (HardCancel()) {
    note_queue();
    Deliver(flight.get(), util::Status::Cancelled("server shutting down"));
    return true;
  }
  if (Expired(*flight)) {
    note_queue();
    Deliver(flight.get(),
            util::Status::DeadlineExceeded("deadline expired in queue"));
    return true;
  }

  // Tokenization (and its fault point) runs once per request, cached in
  // the job across budget deferrals so a deferred job neither re-fires the
  // fault point nor loses its absorbed-retry count.
  if (!j->tokenized) {
    util::Status tokenize_status = RetryStep(
        flight.get(), [] { return FAULT_POINT("serve/tokenize"); },
        "serve tokenize");
    if (!tokenize_status.ok()) {
      note_queue();
      Deliver(flight.get(), std::move(tokenize_status));
      return true;
    }
    j->prompt_ids =
        tokenizer_.EncodeWithSpecials(j->request.prompt, false);
    j->tokenized = true;
  }

  const size_t max_seq = lm_.config().max_seq_len;
  if (j->prompt_ids.size() >= max_seq) {
    note_queue();
    Deliver(flight.get(),
            util::Status::InvalidArgument(
                "prompt of " + std::to_string(j->prompt_ids.size()) +
                " tokens leaves no room under max_seq_len " +
                std::to_string(max_seq)));
    return true;
  }
  size_t max_new = j->request.max_new_tokens > 0
                       ? j->request.max_new_tokens
                       : options_.default_max_new_tokens;
  max_new = std::min(max_new, max_seq - j->prompt_ids.size());
  if (brownout_.level() >= kBrownoutClampLevel && max_new > 0) {
    // Brownout level 1+: clamp the decode budget so each admitted request
    // costs a bounded number of steps (DESIGN.md §14). Applied at
    // admission — an already-admitted row keeps its original budget.
    size_t clamp =
        std::max<size_t>(1, options_.brownout.clamp_max_new_tokens);
    if (max_new > clamp) {
      max_new = clamp;
      j->trace.Mark("brownout_clamp");
    }
  }
  if (max_new == 0) {
    note_queue();
    Deliver(flight.get(), util::Status::OK());
    return true;
  }

  // Pin the active adapter version: every token of this request decodes
  // under it, no matter how many swaps land mid-flight (a deferred job
  // re-pins at its eventual admission — "admitted under" means entering
  // the batch, not entering the queue).
  flight->version = CurrentVersion();
  const uint64_t generation =
      flight->version != nullptr ? flight->version->sequence : 0;
  flight->response.adapter_sequence = generation;

  // Step-token budget: a prefix hit joins the decode wave (1 token this
  // step), a miss must prefill its whole prompt. A prompt that does not
  // fit next to the current batch is deferred — unless the batch is empty,
  // in which case it runs solo (it is < max_seq_len, so it always can).
  // Lookups carry the pinned generation: a prefix prefilled under another
  // adapter version embeds that version's deltas and must never seed this
  // request's slot.
  std::shared_ptr<const PrefixCache::Entry> cached =
      cache_.Lookup(j->prompt_ids, generation);
  size_t need = cached != nullptr ? 1 : j->prompt_ids.size();
  if (!rows->empty() && *step_tokens + need > options_.max_batch_tokens) {
    j->carried_retries = flight->response.retries;
    entry.item.reset(flight->job.release());
    {
      util::MutexLock lock(mu_);
      admission_.Defer(std::move(entry));
      metrics.queue_depth->Set(static_cast<double>(admission_.size()));
    }
    return false;
  }

  note_queue();
  flight->prompt_ids = j->prompt_ids;
  flight->max_new = max_new;
  if (cached != nullptr) {
    metrics.prefix_hits->Increment();
    flight->response.prefix_hit = true;
    j->trace.Mark("prefix_hit");
    flight->slot = session->AcquireSlot();
    session->Restore(flight->slot, cached->pages);
    flight->next_row = cached->last_row;
    flight->prefilled = true;
    flight->cache_entry = std::move(cached);
  } else {
    metrics.prefix_misses->Increment();
    util::Status prefill_status = RetryStep(
        flight.get(), [] { return FAULT_POINT("serve/prefill"); },
        "serve prefill");
    if (!prefill_status.ok()) {
      // A permanent prefill fault degrades the request to the cacheless
      // fallback path rather than failing it — and without ever taking a
      // batch slot.
      DegradeToFallback(std::move(flight));
      return true;
    }
    flight->slot = session->AcquireSlot();
  }
  flight->step_begin_us = obs::NowMicros();
  rows->push_back(std::move(flight));
  return true;
}

void InferenceServer::DegradeToFallback(std::unique_ptr<Flight> flight) {
  Metrics().degraded->Increment();
  Flight* f = flight.get();
  f->response.degraded = true;
  f->response.prefix_hit = false;
  f->job->trace.Mark("degraded");
  // The delivered stream restarts from scratch, so TTFT and the
  // inter-token clock restart with it.
  f->generated.clear();
  f->response.ttft_seconds = 0.0;
  f->last_token_us = 0;
  f->cache_entry.reset();
  {
    util::MutexLock lock(mu_);
    fallback_queue_.push_back(std::move(flight));
  }
  fallback_ready_.NotifyOne();
}

void InferenceServer::SchedulerLoop() {
  tensor::NoGradGuard no_grad;
  ServeMetrics& metrics = Metrics();
  // The decode session lives behind a unique_ptr so watchdog recovery can
  // rebuild it from scratch after a stalled step (DESIGN.md §14).
  auto session = std::make_unique<model::BatchedDecodeSession>(
      lm_, std::max<size_t>(1, options_.max_batch_rows));
  std::vector<std::unique_ptr<Flight>> rows;
  const size_t max_seq = lm_.config().max_seq_len;
  const size_t vocab = lm_.config().vocab_size;

  // Parks a retiring row's prompt-boundary pages in the prefix cache.
  // Brownout level 2+ bypasses the write: lookups still serve existing
  // entries, but no new snapshots are taken or inserted under pressure.
  auto park = [&](Flight* f) {
    if (f->cache_entry == nullptr) return;
    if (brownout_.level() >= kBrownoutBypassCacheLevel) return;
    if (cache_.Insert(f->cache_entry) > 0) f->job->trace.Mark("cache_evict");
  };
  auto release = [&](std::unique_ptr<Flight>* slot_owner) {
    session->ReleaseSlot((*slot_owner)->slot);
    slot_owner->reset();
  };

  while (true) {
    // Heartbeat: advances once per loop iteration. The watchdog declares a
    // stall when it freezes while rows are in flight or work is queued.
    heartbeat_seq_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(mu_);
      if (rows.empty()) {
        while (!shutdown_started_ && admission_.empty()) {
          work_ready_.Wait(mu_);
        }
        if (shutdown_started_ && admission_.empty()) {
          // Clean exit: nothing in flight, nothing queued. On a graceful
          // drain this is the zero-cancellation path — every admitted and
          // queued request already delivered.
          inflight_rows_.store(0, std::memory_order_relaxed);
          return;
        }
      }
    }
    if (HardCancel()) {
      // Cancel in-flight rows (their partial streams are dropped — the
      // server is going away), then drain any jobs still queued (e.g. one
      // deferred back after Shutdown() swept the queue).
      for (std::unique_ptr<Flight>& flight : rows) {
        Deliver(flight.get(),
                util::Status::Cancelled("server shutting down"));
        session->ReleaseSlot(flight->slot);
      }
      rows.clear();
      inflight_rows_.store(0, std::memory_order_relaxed);
      std::vector<AdmissionController::Entry> orphaned;
      {
        util::MutexLock lock(mu_);
        orphaned = admission_.DrainAll();
      }
      for (AdmissionController::Entry& entry : orphaned) {
        std::unique_ptr<Job> job(static_cast<Job*>(entry.item.release()));
        metrics.cancelled->Increment();
        Response response;
        response.request_id = job->trace.id();
        response.status =
            util::Status::Unavailable("server shut down before execution");
        job->trace.Mark("cancelled");
        job->trace.End("serve/request");
        job->promise.set_value(std::move(response));
      }
      return;
    }
    if (stall_abort_.load(std::memory_order_relaxed)) {
      // Watchdog verdict: a step stalled (or the loop wedged past the
      // stall timeout). The stuck batch's KV state is unrecoverable — fail
      // every in-flight row with kUnavailable, rebuild the decode session,
      // and keep serving: the admission queue is untouched, so queued work
      // survives the restart (DESIGN.md §14 watchdog contract).
      for (std::unique_ptr<Flight>& flight : rows) {
        Deliver(flight.get(),
                util::Status::Unavailable(
                    "decode step stalled; batch failed by watchdog"));
      }
      rows.clear();
      session = std::make_unique<model::BatchedDecodeSession>(
          lm_, std::max<size_t>(1, options_.max_batch_rows));
      inflight_rows_.store(0, std::memory_order_relaxed);
      stall_abort_.store(false, std::memory_order_relaxed);
      metrics.watchdog_recoveries->Increment();
      continue;
    }

    // --- Admission: fill free slots from the tiered WDRR queues until the
    // step-token budget is spent. ----------------------------------------
    size_t step_tokens = rows.size();  // each in-flight row feeds 1 token
    while (rows.size() < session->max_rows()) {
      AdmissionController::Entry entry;
      {
        util::MutexLock lock(mu_);
        if (!admission_.PopNext(&entry)) break;
        metrics.queue_depth->Set(static_cast<double>(admission_.size()));
      }
      if (!AdmitOne(std::move(entry), session.get(), &rows, &step_tokens)) {
        break;
      }
    }
    inflight_rows_.store(rows.size(), std::memory_order_relaxed);
    if (rows.empty()) continue;

    // --- Token selection & retirement. Mirrors the sequential decode
    // loop per row; probes only cut a row short, they never change which
    // token is picked, so every stream stays bit-exact. ------------------
    std::vector<model::BatchedDecodeSession::RowInput> inputs;
    std::vector<size_t> input_flight;
    for (size_t i = 0; i < rows.size(); ++i) {
      Flight& f = *rows[i];
      if (HardCancel()) {
        Deliver(&f, util::Status::Cancelled("server shutting down"));
        release(&rows[i]);
        continue;
      }
      if (Expired(f)) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        Deliver(&f, util::Status::DeadlineExceeded(
                        "deadline expired after " +
                        std::to_string(f.response.tokens.size()) +
                        " tokens"));
        release(&rows[i]);
        continue;
      }
      const model::PositionWiseAdapter* adapter =
          f.version != nullptr ? f.version->adapter.get() : nullptr;
      if (!f.prefilled) {
        // Prompt not yet forwarded: this row's step input is the prefill.
        f.step_begin_us = obs::NowMicros();
        inputs.push_back(model::BatchedDecodeSession::RowInput{
            f.slot, f.prompt_ids, adapter});
        input_flight.push_back(i);
        continue;
      }
      int next = ArgmaxRow(f.next_row.data(), vocab);
      if (next == text::kEosId) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        util::StatusOr<std::string> text =
            tokenizer_.Decode(f.response.tokens);
        if (!text.ok()) {
          Deliver(&f, text.status());
        } else {
          f.response.text = std::move(*text);
          Deliver(&f, util::Status::OK());
        }
        release(&rows[i]);
        continue;
      }
      f.generated.push_back(next);
      NoteToken(&f);
      f.job->trace.Phase("decode_step", f.step_begin_us, f.last_token_us);
      f.step_begin_us = f.last_token_us;
      if (f.generated.size() >= f.max_new ||
          f.prompt_ids.size() + f.generated.size() >= max_seq) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        util::StatusOr<std::string> text =
            tokenizer_.Decode(f.response.tokens);
        if (!text.ok()) {
          Deliver(&f, text.status());
        } else {
          f.response.text = std::move(*text);
          Deliver(&f, util::Status::OK());
        }
        release(&rows[i]);
        continue;
      }
      util::Status step_status = RetryStep(
          &f, [] { return FAULT_POINT("serve/decode_step"); },
          "decode step");
      if (!step_status.ok()) {
        // Permanent mid-decode failure: this row's KV state is suspect, so
        // free its slot and restart it on the cacheless fallback thread —
        // the rest of the batch keeps decoding.
        session->ReleaseSlot(f.slot);
        DegradeToFallback(std::move(rows[i]));
        continue;
      }
      inputs.push_back(
          model::BatchedDecodeSession::RowInput{f.slot, {next}, adapter});
      input_flight.push_back(i);
    }

    // --- One ragged batched forward for every surviving row. ------------
    if (!inputs.empty()) {
      // Injectable wedge (`serve/decode_stall`): models a decode step that
      // never returns. The simulated stall MUST NOT hold mu_ — a real
      // stuck Step() would not — so Submit() and the watchdog's occupancy
      // reads keep working while the loop is wedged. It spins until the
      // watchdog raises the stall verdict (or shutdown), then re-enters
      // the loop top where recovery fails the batch. Skipping the real
      // Step here never duplicates tokens: stalled rows are terminated,
      // never resumed.
      if (!FAULT_POINT("serve/decode_stall").ok()) {
        while (!stall_abort_.load(std::memory_order_relaxed) &&
               !HardCancel()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // Sweep rows already retired this iteration before re-entering the
        // loop top, where recovery walks the surviving flights.
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [](const std::unique_ptr<Flight>& f) {
                                    return f == nullptr;
                                  }),
                   rows.end());
        continue;
      }
      metrics.batch_size->Set(static_cast<double>(inputs.size()));
      metrics.batch_occupancy->Record(
          static_cast<double>(inputs.size()) /
          static_cast<double>(session->max_rows()));
      size_t prefill_tokens = 0;
      size_t decode_tokens = 0;
      for (size_t j = 0; j < inputs.size(); ++j) {
        if (rows[input_flight[j]]->prefilled) {
          ++decode_tokens;
        } else {
          prefill_tokens += inputs[j].tokens.size();
        }
      }
      util::Stopwatch step_watch;
      std::vector<tensor::Tensor> logits = session->Step(inputs);
      estimator_.ObserveStep(prefill_tokens, decode_tokens,
                             step_watch.ElapsedSeconds());
      for (size_t j = 0; j < inputs.size(); ++j) {
        Flight& f = *rows[input_flight[j]];
        f.next_row = LastRow(logits[j]);
        if (!f.prefilled) {
          f.prefilled = true;
          // Freeze the prompt boundary for the prefix cache before any
          // decode rows are appended to the slot — unless a brownout is
          // bypassing cache writes (the snapshot would be dropped anyway).
          if (brownout_.level() < kBrownoutBypassCacheLevel) {
            auto entry = std::make_shared<PrefixCache::Entry>();
            entry->prompt = f.prompt_ids;
            entry->pages = session->Snapshot(f.slot);
            entry->last_row = f.next_row;
            entry->generation = f.response.adapter_sequence;
            f.cache_entry = std::move(entry);
          }
          int64_t now_us = obs::NowMicros();
          f.job->trace.Phase("prefill", f.step_begin_us, now_us);
          f.step_begin_us = now_us;
        }
      }
    }
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const std::unique_ptr<Flight>& f) {
                                return f == nullptr;
                              }),
               rows.end());
    inflight_rows_.store(rows.size(), std::memory_order_relaxed);
  }
}

void InferenceServer::WatchdogLoop() {
  ServeMetrics& metrics = Metrics();
  uint64_t last_seq = heartbeat_seq_.load(std::memory_order_relaxed);
  Clock::time_point last_progress = Clock::now();
  int last_level = brownout_.level();
  while (true) {
    size_t depth = 0;
    {
      util::MutexLock lock(mu_);
      if (!watchdog_stop_) watchdog_cv_.WaitFor(mu_, options_.watchdog_interval);
      if (watchdog_stop_) return;
      depth = admission_.size();
    }
    // --- Brownout: feed queue occupancy through the hysteresis machine
    // and surface the level (gauge for "now", histogram for occupancy-
    // over-time, transitions counter for flap detection). ----------------
    double occupancy =
        static_cast<double>(depth) /
        static_cast<double>(std::max<size_t>(1, options_.queue_capacity));
    int level = brownout_.Tick(occupancy);
    metrics.brownout_level->Set(static_cast<double>(level));
    metrics.brownout_level_samples->Record(static_cast<double>(level));
    if (level != last_level) {
      metrics.brownout_transitions->Increment();
      last_level = level;
    }
    // --- Stall detection: the scheduler heartbeat frozen while work is
    // pending (in-flight rows or queued requests). An idle scheduler
    // legitimately parks on its condvar and is never declared stalled. ----
    if (options_.watchdog_stall_timeout.count() <= 0) continue;
    uint64_t seq = heartbeat_seq_.load(std::memory_order_relaxed);
    bool busy = inflight_rows_.load(std::memory_order_relaxed) > 0 ||
                depth > 0;
    Clock::time_point now = Clock::now();
    if (seq != last_seq || !busy) {
      last_seq = seq;
      last_progress = now;
      continue;
    }
    if (now - last_progress >= options_.watchdog_stall_timeout &&
        !stall_abort_.load(std::memory_order_relaxed)) {
      metrics.watchdog_stalls->Increment();
      // Raise the verdict, then wake the scheduler in case it is parked:
      // the stuck batch is failed and the session rebuilt at its next
      // observation point (a wedge inside a real Step() is only
      // recoverable once Step returns — the documented contract).
      stall_abort_.store(true, std::memory_order_relaxed);
      work_ready_.NotifyAll();
      last_progress = now;  // restart the clock for a subsequent stall
    }
  }
}

void InferenceServer::FallbackLoop() {
  tensor::NoGradGuard no_grad;
  while (true) {
    std::unique_ptr<Flight> flight;
    {
      util::MutexLock lock(mu_);
      while (!scheduler_done_ && fallback_queue_.empty()) {
        fallback_ready_.Wait(mu_);
      }
      // Only exit once the scheduler has joined: until then it may still
      // degrade flights into this queue, and returning early would orphan
      // their promises. scheduler_done_ also implies drain is complete.
      if (fallback_queue_.empty()) return;
      flight = std::move(fallback_queue_.front());
      fallback_queue_.pop_front();
    }
    RunDegraded(flight.get());
  }
}

void InferenceServer::RunDegraded(Flight* f) {
  // Mirrors generation.cc DecodeFullRecompute exactly, so the token stream
  // stays bit-identical to GreedyDecode even with the engine unavailable.
  const size_t max_seq = lm_.config().max_seq_len;
  const size_t vocab = lm_.config().vocab_size;
  int64_t step_begin_us = obs::NowMicros();
  std::vector<int> sequence = f->prompt_ids;
  // Degraded rows still honor their pinned adapter version: the hook
  // applies the same position-wise deltas the batched path would have.
  model::PositionWiseAdapterHook hook(
      f->version != nullptr ? f->version->adapter.get() : nullptr);
  const model::ForwardOptions forward = hook.Options();
  for (size_t step = 0; step < f->max_new; ++step) {
    if (HardCancel()) {
      Deliver(f, util::Status::Cancelled("server shutting down"));
      return;
    }
    if (Expired(*f)) {
      f->response.tokens = std::move(f->generated);
      Deliver(f, util::Status::DeadlineExceeded(
                     "deadline expired after " +
                     std::to_string(f->response.tokens.size()) +
                     " tokens (degraded path)"));
      return;
    }
    if (sequence.size() >= max_seq) break;
    tensor::Tensor logits = lm_.Logits(sequence, forward);
    int next =
        ArgmaxRow(logits.data() + (logits.dim(0) - 1) * vocab, vocab);
    if (next == text::kEosId) break;
    f->generated.push_back(next);
    sequence.push_back(next);
    NoteToken(f);
    f->job->trace.Phase("decode_step", step_begin_us, f->last_token_us);
    step_begin_us = f->last_token_us;
  }
  f->response.tokens = std::move(f->generated);
  util::StatusOr<std::string> text = tokenizer_.Decode(f->response.tokens);
  if (!text.ok()) {
    Deliver(f, text.status());
    return;
  }
  f->response.text = std::move(*text);
  Deliver(f, util::Status::OK());
}

}  // namespace infuserki::serve
