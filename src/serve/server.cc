#include "serve/server.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/stopwatch.h"

namespace infuserki::serve {
namespace {

using Clock = std::chrono::steady_clock;

struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* completed;
  obs::Counter* shed;
  obs::Counter* deadline_misses;
  obs::Counter* failures;
  obs::Counter* degraded;
  obs::Counter* retries;
  obs::Counter* prefix_hits;
  obs::Counter* prefix_misses;
  obs::Counter* cancelled;
  obs::Counter* swap_applied;
  obs::Counter* swap_prefix_invalidations;
  obs::Gauge* swap_active_sequence;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_max;
  obs::Gauge* batch_size;
  obs::Histogram* batch_occupancy;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* request_seconds;
  obs::Histogram* tokens_generated;
  obs::Histogram* ttft_seconds;
  obs::Histogram* inter_token_seconds;
  obs::Histogram* e2e_ok_seconds;
  obs::Histogram* e2e_deadline_seconds;
  obs::Histogram* e2e_error_seconds;
  obs::Histogram* queue_depth_samples;
};

ServeMetrics& Metrics() {
  // Magic-static resolution, relaxed-atomic updates afterwards (the
  // EngineMetrics idiom from decode_session.cc): the scheduler and
  // fallback threads publish without the registry lock.
  static ServeMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new ServeMetrics{
        registry.GetCounter("serve/requests"),
        registry.GetCounter("serve/completed"),
        registry.GetCounter("serve/shed"),
        registry.GetCounter("serve/deadline_misses"),
        registry.GetCounter("serve/failures"),
        registry.GetCounter("serve/degraded"),
        registry.GetCounter("serve/retries"),
        registry.GetCounter("serve/prefix_hits"),
        registry.GetCounter("serve/prefix_misses"),
        registry.GetCounter("serve/cancelled"),
        registry.GetCounter("serve/swap_applied"),
        registry.GetCounter("serve/swap_prefix_invalidations"),
        registry.GetGauge("serve/swap_active_sequence"),
        registry.GetGauge("serve/queue_depth"),
        registry.GetGauge("serve/queue_depth_max"),
        registry.GetGauge("serve/batch_size"),
        registry.GetHistogram("serve/batch_occupancy"),
        registry.GetHistogram("serve/queue_wait_seconds"),
        registry.GetHistogram("serve/request_seconds"),
        registry.GetHistogram("serve/tokens_generated"),
        registry.GetHistogram("serve/ttft_seconds"),
        registry.GetHistogram("serve/inter_token_seconds"),
        registry.GetHistogram("serve/e2e_ok_seconds"),
        registry.GetHistogram("serve/e2e_deadline_seconds"),
        registry.GetHistogram("serve/e2e_error_seconds"),
        registry.GetHistogram("serve/queue_depth_samples")};
  }();
  return *metrics;
}

/// Argmax over one logits row with the exact first-max tie-break of
/// generation.cc's ArgmaxLastRow — bit-exactness with GreedyDecode depends
/// on scanning order and the strict `>` comparison.
int ArgmaxRow(const float* row, size_t vocab) {
  int best = 0;
  for (size_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

/// Copies the last row of a [T, V] logits tensor.
std::vector<float> LastRow(const tensor::Tensor& logits) {
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + (logits.dim(0) - 1) * vocab;
  return std::vector<float>(row, row + vocab);
}

}  // namespace

InferenceServer::InferenceServer(const model::TransformerLM& lm,
                                 const text::Tokenizer& tokenizer,
                                 ServeOptions options)
    : lm_(lm),
      tokenizer_(tokenizer),
      options_(std::move(options)),
      cache_(options_.kv_budget_tokens) {
  scheduler_ = std::thread(&InferenceServer::SchedulerLoop, this);
  fallback_ = std::thread(&InferenceServer::FallbackLoop, this);
  if (options_.exporter.period.count() > 0) {
    // The server owns the export thread and chains its queue-depth
    // sampling ahead of any caller-provided tick hook.
    obs::ExporterOptions exporter_options = options_.exporter;
    std::function<void()> user_tick = std::move(exporter_options.on_tick);
    exporter_options.on_tick = [this, user_tick = std::move(user_tick)] {
      Metrics().queue_depth_samples->Record(
          static_cast<double>(queue_depth()));
      if (user_tick) user_tick();
    };
    exporter_ =
        std::make_unique<obs::MetricsExporter>(std::move(exporter_options));
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<Response> InferenceServer::Submit(Request request) {
  ServeMetrics& metrics = Metrics();
  metrics.requests->Increment();

  auto job = std::make_unique<Job>();
  std::chrono::milliseconds deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  job->request = std::move(request);
  job->enqueued = Clock::now();
  job->trace = obs::RequestTrace::Begin();
  if (deadline.count() > 0) job->deadline = job->enqueued + deadline;
  std::future<Response> future = job->promise.get_future();

  {
    util::MutexLock lock(mu_);
    if (shutdown_started_) {
      metrics.cancelled->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status =
          util::Status::Unavailable("server is shutting down");
      job->trace.Mark("cancelled");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Load shedding: reject now instead of queueing unbounded work the
      // deadline will kill anyway.
      metrics.shed->Increment();
      Response response;
      response.request_id = job->trace.id();
      response.status = util::Status::ResourceExhausted(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) + " requests)");
      job->trace.Mark("shed");
      job->trace.End("serve/request");
      job->promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(job));
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    metrics.queue_depth_max->UpdateMax(
        static_cast<double>(queue_.size()));
  }
  work_ready_.NotifyOne();
  return future;
}

Response InferenceServer::Run(Request request) {
  return Submit(std::move(request)).get();
}

void InferenceServer::Shutdown() {
  std::deque<std::unique_ptr<Job>> orphaned;
  {
    util::MutexLock lock(mu_);
    if (!shutdown_started_) {
      shutdown_started_ = true;
      if (options_.drain_deadline.count() > 0) {
        // Graceful drain: leave the queue alone — the scheduler keeps
        // admitting and decoding until queue and batch are empty or the
        // drain deadline passes (HardCancel() latches the hard stop).
        drain_until_ = Clock::now() + options_.drain_deadline;
        draining_.store(true, std::memory_order_release);
      } else {
        shutting_down_.store(true, std::memory_order_relaxed);
        orphaned.swap(queue_);
        Metrics().queue_depth->Set(0.0);
      }
    }
  }
  work_ready_.NotifyAll();
  fallback_ready_.NotifyAll();
  for (std::unique_ptr<Job>& job : orphaned) {
    Metrics().cancelled->Increment();
    Response response;
    response.request_id = job->trace.id();
    response.status =
        util::Status::Unavailable("server shut down before execution");
    job->trace.Mark("cancelled");
    job->trace.End("serve/request");
    job->promise.set_value(std::move(response));
  }
  if (scheduler_.joinable()) scheduler_.join();
  {
    // The scheduler may have handed degraded rows to the fallback thread
    // on its way out; only now that it is joined can the fallback thread
    // safely exit on an empty queue (see scheduler_done_).
    util::MutexLock lock(mu_);
    scheduler_done_ = true;
  }
  fallback_ready_.NotifyAll();
  if (fallback_.joinable()) fallback_.join();
  // After the last request resolved: one final flush so short-lived
  // servers still leave a complete record, then the thread stops.
  if (exporter_ != nullptr) exporter_->Stop();
}

bool InferenceServer::HardCancel() {
  if (shutting_down_.load(std::memory_order_relaxed)) return true;
  if (draining_.load(std::memory_order_acquire) &&
      Clock::now() >= drain_until_) {
    // Drain budget exhausted: latch the hard stop so every thread (and
    // every subsequent HardCancel check) converges on cancellation.
    shutting_down_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void InferenceServer::SwapAdapters(AdapterVersion version) {
  std::shared_ptr<const AdapterVersion> next;
  if (version.adapter != nullptr) {
    next = std::make_shared<const AdapterVersion>(std::move(version));
  }
  uint64_t new_sequence = next != nullptr ? next->sequence : 0;
  uint64_t old_sequence = 0;
  {
    util::MutexLock lock(mu_);
    old_sequence = active_version_ != nullptr ? active_version_->sequence : 0;
    active_version_ = std::move(next);
  }
  ServeMetrics& metrics = Metrics();
  metrics.swap_applied->Increment();
  metrics.swap_active_sequence->Set(static_cast<double>(new_sequence));
  // Admissions must see the new generation before the replaced one's
  // prefixes vanish, so a concurrent lookup can never resurrect the old
  // version's K/V pages under the new generation.
  cache_.SetActiveGeneration(new_sequence);
  if (old_sequence != 0 && old_sequence != new_sequence) {
    size_t invalidated = cache_.InvalidateGeneration(old_sequence);
    if (invalidated > 0) {
      metrics.swap_prefix_invalidations->Increment(invalidated);
    }
  }
}

uint64_t InferenceServer::active_adapter_sequence() const {
  util::MutexLock lock(mu_);
  return active_version_ != nullptr ? active_version_->sequence : 0;
}

std::shared_ptr<const AdapterVersion> InferenceServer::CurrentVersion()
    const {
  util::MutexLock lock(mu_);
  return active_version_;
}

size_t InferenceServer::queue_depth() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

void InferenceServer::NoteToken(Flight* flight) {
  int64_t now_us = obs::NowMicros();
  if (flight->generated.size() == 1) {
    flight->response.ttft_seconds =
        std::chrono::duration<double>(Clock::now() - flight->job->enqueued)
            .count();
  } else if (flight->last_token_us != 0) {
    Metrics().inter_token_seconds->Record(
        static_cast<double>(now_us - flight->last_token_us) * 1e-6);
  }
  flight->last_token_us = now_us;
}

void InferenceServer::Deliver(Flight* flight, util::Status status) {
  ServeMetrics& metrics = Metrics();
  Response& response = flight->response;
  response.status = std::move(status);
  double processing = flight->watch.ElapsedSeconds();
  response.total_seconds = response.queue_seconds + processing;
  metrics.request_seconds->Record(processing);
  if (response.ttft_seconds > 0.0) {
    metrics.ttft_seconds->Record(response.ttft_seconds);
  }
  // Single exit: classify the terminal status into the accounting
  // counters (requests == completed + shed + deadline_misses + cancelled
  // + failures holds at every quiescent point), record the per-outcome
  // latency, close the request's trace track, and resolve the promise.
  switch (response.status.code()) {
    case util::StatusCode::kOk:
      metrics.tokens_generated->Record(
          static_cast<double>(response.tokens.size()));
      metrics.completed->Increment();
      metrics.e2e_ok_seconds->Record(response.total_seconds);
      break;
    case util::StatusCode::kDeadlineExceeded:
      metrics.deadline_misses->Increment();
      metrics.e2e_deadline_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("deadline");
      break;
    case util::StatusCode::kCancelled:
    case util::StatusCode::kUnavailable:
      metrics.cancelled->Increment();
      metrics.e2e_error_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("cancelled");
      break;
    default:
      metrics.failures->Increment();
      metrics.e2e_error_seconds->Record(response.total_seconds);
      flight->job->trace.Mark("failure");
  }
  flight->job->trace.End("serve/request");
  flight->job->promise.set_value(std::move(response));
}

util::Status InferenceServer::RetryStep(
    Flight* flight, const std::function<util::Status()>& step,
    const std::string& what) {
  // Per-request retry policy: the request deadline bounds the whole
  // backoff loop, so retries can never outlive the request they serve.
  util::RetryOptions retry = options_.retry;
  retry.deadline = flight->job->deadline;
  int attempts = 0;
  util::Status status = util::RetryWithBackoff(
      [&] {
        ++attempts;
        return step();
      },
      retry, what);
  if (attempts > 1) {
    Metrics().retries->Increment(static_cast<uint64_t>(attempts - 1));
    flight->response.retries += attempts - 1;
    flight->job->trace.Mark("retry:" + what);
  }
  return status;
}

bool InferenceServer::AdmitOne(std::unique_ptr<Job> job,
                               model::BatchedDecodeSession* session,
                               std::vector<std::unique_ptr<Flight>>* rows,
                               size_t* step_tokens) {
  ServeMetrics& metrics = Metrics();
  auto flight = std::make_unique<Flight>();
  flight->job = std::move(job);
  Job* j = flight->job.get();
  flight->response.request_id = j->trace.id();
  flight->response.retries = j->carried_retries;
  // Queue-side stats are recorded exactly once per request — on every
  // admission outcome except deferral (a deferred job re-enters admission
  // later and its continued wait still counts as queue time).
  auto note_queue = [&] {
    flight->response.queue_seconds =
        std::chrono::duration<double>(Clock::now() - j->enqueued).count();
    metrics.queue_wait_seconds->Record(flight->response.queue_seconds);
    j->trace.Phase("queue", j->trace.begin_us(), obs::NowMicros());
  };

  if (HardCancel()) {
    note_queue();
    Deliver(flight.get(), util::Status::Cancelled("server shutting down"));
    return true;
  }
  if (Expired(*flight)) {
    note_queue();
    Deliver(flight.get(),
            util::Status::DeadlineExceeded("deadline expired in queue"));
    return true;
  }

  // Tokenization (and its fault point) runs once per request, cached in
  // the job across budget deferrals so a deferred job neither re-fires the
  // fault point nor loses its absorbed-retry count.
  if (!j->tokenized) {
    util::Status tokenize_status = RetryStep(
        flight.get(), [] { return FAULT_POINT("serve/tokenize"); },
        "serve tokenize");
    if (!tokenize_status.ok()) {
      note_queue();
      Deliver(flight.get(), std::move(tokenize_status));
      return true;
    }
    j->prompt_ids =
        tokenizer_.EncodeWithSpecials(j->request.prompt, false);
    j->tokenized = true;
  }

  const size_t max_seq = lm_.config().max_seq_len;
  if (j->prompt_ids.size() >= max_seq) {
    note_queue();
    Deliver(flight.get(),
            util::Status::InvalidArgument(
                "prompt of " + std::to_string(j->prompt_ids.size()) +
                " tokens leaves no room under max_seq_len " +
                std::to_string(max_seq)));
    return true;
  }
  size_t max_new = j->request.max_new_tokens > 0
                       ? j->request.max_new_tokens
                       : options_.default_max_new_tokens;
  max_new = std::min(max_new, max_seq - j->prompt_ids.size());
  if (max_new == 0) {
    note_queue();
    Deliver(flight.get(), util::Status::OK());
    return true;
  }

  // Pin the active adapter version: every token of this request decodes
  // under it, no matter how many swaps land mid-flight (a deferred job
  // re-pins at its eventual admission — "admitted under" means entering
  // the batch, not entering the queue).
  flight->version = CurrentVersion();
  const uint64_t generation =
      flight->version != nullptr ? flight->version->sequence : 0;
  flight->response.adapter_sequence = generation;

  // Step-token budget: a prefix hit joins the decode wave (1 token this
  // step), a miss must prefill its whole prompt. A prompt that does not
  // fit next to the current batch is deferred — unless the batch is empty,
  // in which case it runs solo (it is < max_seq_len, so it always can).
  // Lookups carry the pinned generation: a prefix prefilled under another
  // adapter version embeds that version's deltas and must never seed this
  // request's slot.
  std::shared_ptr<const PrefixCache::Entry> entry =
      cache_.Lookup(j->prompt_ids, generation);
  size_t need = entry != nullptr ? 1 : j->prompt_ids.size();
  if (!rows->empty() && *step_tokens + need > options_.max_batch_tokens) {
    j->carried_retries = flight->response.retries;
    std::unique_ptr<Job> back = std::move(flight->job);
    {
      util::MutexLock lock(mu_);
      queue_.push_front(std::move(back));
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    return false;
  }

  note_queue();
  flight->prompt_ids = j->prompt_ids;
  flight->max_new = max_new;
  if (entry != nullptr) {
    metrics.prefix_hits->Increment();
    flight->response.prefix_hit = true;
    j->trace.Mark("prefix_hit");
    flight->slot = session->AcquireSlot();
    session->Restore(flight->slot, entry->pages);
    flight->next_row = entry->last_row;
    flight->prefilled = true;
    flight->cache_entry = std::move(entry);
  } else {
    metrics.prefix_misses->Increment();
    util::Status prefill_status = RetryStep(
        flight.get(), [] { return FAULT_POINT("serve/prefill"); },
        "serve prefill");
    if (!prefill_status.ok()) {
      // A permanent prefill fault degrades the request to the cacheless
      // fallback path rather than failing it — and without ever taking a
      // batch slot.
      DegradeToFallback(std::move(flight));
      return true;
    }
    flight->slot = session->AcquireSlot();
  }
  flight->step_begin_us = obs::NowMicros();
  rows->push_back(std::move(flight));
  return true;
}

void InferenceServer::DegradeToFallback(std::unique_ptr<Flight> flight) {
  Metrics().degraded->Increment();
  Flight* f = flight.get();
  f->response.degraded = true;
  f->response.prefix_hit = false;
  f->job->trace.Mark("degraded");
  // The delivered stream restarts from scratch, so TTFT and the
  // inter-token clock restart with it.
  f->generated.clear();
  f->response.ttft_seconds = 0.0;
  f->last_token_us = 0;
  f->cache_entry.reset();
  {
    util::MutexLock lock(mu_);
    fallback_queue_.push_back(std::move(flight));
  }
  fallback_ready_.NotifyOne();
}

void InferenceServer::SchedulerLoop() {
  tensor::NoGradGuard no_grad;
  ServeMetrics& metrics = Metrics();
  model::BatchedDecodeSession session(
      lm_, std::max<size_t>(1, options_.max_batch_rows));
  std::vector<std::unique_ptr<Flight>> rows;
  const size_t max_seq = lm_.config().max_seq_len;
  const size_t vocab = lm_.config().vocab_size;

  // Parks a retiring row's prompt-boundary pages in the prefix cache.
  auto park = [&](Flight* f) {
    if (f->cache_entry == nullptr) return;
    if (cache_.Insert(f->cache_entry) > 0) f->job->trace.Mark("cache_evict");
  };
  auto release = [&](std::unique_ptr<Flight>* slot_owner) {
    session.ReleaseSlot((*slot_owner)->slot);
    slot_owner->reset();
  };

  while (true) {
    {
      util::MutexLock lock(mu_);
      if (rows.empty()) {
        while (!shutdown_started_ && queue_.empty()) work_ready_.Wait(mu_);
        if (shutdown_started_ && queue_.empty()) {
          // Clean exit: nothing in flight, nothing queued. On a graceful
          // drain this is the zero-cancellation path — every admitted and
          // queued request already delivered.
          return;
        }
      }
    }
    if (HardCancel()) {
      // Cancel in-flight rows (their partial streams are dropped — the
      // server is going away), then drain any jobs still queued (e.g. one
      // deferred back after Shutdown() swept the queue).
      for (std::unique_ptr<Flight>& flight : rows) {
        Deliver(flight.get(),
                util::Status::Cancelled("server shutting down"));
        session.ReleaseSlot(flight->slot);
      }
      rows.clear();
      std::deque<std::unique_ptr<Job>> orphaned;
      {
        util::MutexLock lock(mu_);
        orphaned.swap(queue_);
      }
      for (std::unique_ptr<Job>& job : orphaned) {
        metrics.cancelled->Increment();
        Response response;
        response.request_id = job->trace.id();
        response.status =
            util::Status::Unavailable("server shut down before execution");
        job->trace.Mark("cancelled");
        job->trace.End("serve/request");
        job->promise.set_value(std::move(response));
      }
      return;
    }

    // --- Admission: fill free slots from the queue head, FIFO, until the
    // step-token budget is spent. ---------------------------------------
    size_t step_tokens = rows.size();  // each in-flight row feeds 1 token
    while (rows.size() < session.max_rows()) {
      std::unique_ptr<Job> job;
      {
        util::MutexLock lock(mu_);
        if (queue_.empty()) break;
        job = std::move(queue_.front());
        queue_.pop_front();
        metrics.queue_depth->Set(static_cast<double>(queue_.size()));
      }
      if (!AdmitOne(std::move(job), &session, &rows, &step_tokens)) break;
    }
    if (rows.empty()) continue;

    // --- Token selection & retirement. Mirrors the sequential decode
    // loop per row; probes only cut a row short, they never change which
    // token is picked, so every stream stays bit-exact. ------------------
    std::vector<model::BatchedDecodeSession::RowInput> inputs;
    std::vector<size_t> input_flight;
    for (size_t i = 0; i < rows.size(); ++i) {
      Flight& f = *rows[i];
      if (HardCancel()) {
        Deliver(&f, util::Status::Cancelled("server shutting down"));
        release(&rows[i]);
        continue;
      }
      if (Expired(f)) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        Deliver(&f, util::Status::DeadlineExceeded(
                        "deadline expired after " +
                        std::to_string(f.response.tokens.size()) +
                        " tokens"));
        release(&rows[i]);
        continue;
      }
      const model::PositionWiseAdapter* adapter =
          f.version != nullptr ? f.version->adapter.get() : nullptr;
      if (!f.prefilled) {
        // Prompt not yet forwarded: this row's step input is the prefill.
        f.step_begin_us = obs::NowMicros();
        inputs.push_back(model::BatchedDecodeSession::RowInput{
            f.slot, f.prompt_ids, adapter});
        input_flight.push_back(i);
        continue;
      }
      int next = ArgmaxRow(f.next_row.data(), vocab);
      if (next == text::kEosId) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        util::StatusOr<std::string> text =
            tokenizer_.Decode(f.response.tokens);
        if (!text.ok()) {
          Deliver(&f, text.status());
        } else {
          f.response.text = std::move(*text);
          Deliver(&f, util::Status::OK());
        }
        release(&rows[i]);
        continue;
      }
      f.generated.push_back(next);
      NoteToken(&f);
      f.job->trace.Phase("decode_step", f.step_begin_us, f.last_token_us);
      f.step_begin_us = f.last_token_us;
      if (f.generated.size() >= f.max_new ||
          f.prompt_ids.size() + f.generated.size() >= max_seq) {
        park(&f);
        f.response.tokens = std::move(f.generated);
        util::StatusOr<std::string> text =
            tokenizer_.Decode(f.response.tokens);
        if (!text.ok()) {
          Deliver(&f, text.status());
        } else {
          f.response.text = std::move(*text);
          Deliver(&f, util::Status::OK());
        }
        release(&rows[i]);
        continue;
      }
      util::Status step_status = RetryStep(
          &f, [] { return FAULT_POINT("serve/decode_step"); },
          "decode step");
      if (!step_status.ok()) {
        // Permanent mid-decode failure: this row's KV state is suspect, so
        // free its slot and restart it on the cacheless fallback thread —
        // the rest of the batch keeps decoding.
        session.ReleaseSlot(f.slot);
        DegradeToFallback(std::move(rows[i]));
        continue;
      }
      inputs.push_back(
          model::BatchedDecodeSession::RowInput{f.slot, {next}, adapter});
      input_flight.push_back(i);
    }

    // --- One ragged batched forward for every surviving row. ------------
    if (!inputs.empty()) {
      metrics.batch_size->Set(static_cast<double>(inputs.size()));
      metrics.batch_occupancy->Record(static_cast<double>(inputs.size()) /
                                      static_cast<double>(session.max_rows()));
      std::vector<tensor::Tensor> logits = session.Step(inputs);
      for (size_t j = 0; j < inputs.size(); ++j) {
        Flight& f = *rows[input_flight[j]];
        f.next_row = LastRow(logits[j]);
        if (!f.prefilled) {
          f.prefilled = true;
          // Freeze the prompt boundary for the prefix cache before any
          // decode rows are appended to the slot.
          auto entry = std::make_shared<PrefixCache::Entry>();
          entry->prompt = f.prompt_ids;
          entry->pages = session.Snapshot(f.slot);
          entry->last_row = f.next_row;
          entry->generation = f.response.adapter_sequence;
          f.cache_entry = std::move(entry);
          int64_t now_us = obs::NowMicros();
          f.job->trace.Phase("prefill", f.step_begin_us, now_us);
          f.step_begin_us = now_us;
        }
      }
    }
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const std::unique_ptr<Flight>& f) {
                                return f == nullptr;
                              }),
               rows.end());
  }
}

void InferenceServer::FallbackLoop() {
  tensor::NoGradGuard no_grad;
  while (true) {
    std::unique_ptr<Flight> flight;
    {
      util::MutexLock lock(mu_);
      while (!scheduler_done_ && fallback_queue_.empty()) {
        fallback_ready_.Wait(mu_);
      }
      // Only exit once the scheduler has joined: until then it may still
      // degrade flights into this queue, and returning early would orphan
      // their promises. scheduler_done_ also implies drain is complete.
      if (fallback_queue_.empty()) return;
      flight = std::move(fallback_queue_.front());
      fallback_queue_.pop_front();
    }
    RunDegraded(flight.get());
  }
}

void InferenceServer::RunDegraded(Flight* f) {
  // Mirrors generation.cc DecodeFullRecompute exactly, so the token stream
  // stays bit-identical to GreedyDecode even with the engine unavailable.
  const size_t max_seq = lm_.config().max_seq_len;
  const size_t vocab = lm_.config().vocab_size;
  int64_t step_begin_us = obs::NowMicros();
  std::vector<int> sequence = f->prompt_ids;
  // Degraded rows still honor their pinned adapter version: the hook
  // applies the same position-wise deltas the batched path would have.
  model::PositionWiseAdapterHook hook(
      f->version != nullptr ? f->version->adapter.get() : nullptr);
  const model::ForwardOptions forward = hook.Options();
  for (size_t step = 0; step < f->max_new; ++step) {
    if (HardCancel()) {
      Deliver(f, util::Status::Cancelled("server shutting down"));
      return;
    }
    if (Expired(*f)) {
      f->response.tokens = std::move(f->generated);
      Deliver(f, util::Status::DeadlineExceeded(
                     "deadline expired after " +
                     std::to_string(f->response.tokens.size()) +
                     " tokens (degraded path)"));
      return;
    }
    if (sequence.size() >= max_seq) break;
    tensor::Tensor logits = lm_.Logits(sequence, forward);
    int next =
        ArgmaxRow(logits.data() + (logits.dim(0) - 1) * vocab, vocab);
    if (next == text::kEosId) break;
    f->generated.push_back(next);
    sequence.push_back(next);
    NoteToken(f);
    f->job->trace.Phase("decode_step", step_begin_us, f->last_token_us);
    step_begin_us = f->last_token_us;
  }
  f->response.tokens = std::move(f->generated);
  util::StatusOr<std::string> text = tokenizer_.Decode(f->response.tokens);
  if (!text.ok()) {
    Deliver(f, text.status());
    return;
  }
  f->response.text = std::move(*text);
  Deliver(f, util::Status::OK());
}

}  // namespace infuserki::serve
