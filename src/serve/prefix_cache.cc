#include "serve/prefix_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace infuserki::serve {
namespace {

struct CacheMetrics {
  obs::Counter* evictions;
  obs::Gauge* cached_tokens;
  obs::Gauge* cached_prefixes;
};

CacheMetrics& Metrics() {
  // Resolved once under the magic-static guard; updates afterwards are
  // relaxed atomics, so Lookup/Insert publish without touching the
  // registry lock (same idiom as EngineMetrics in decode_session.cc).
  static CacheMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new CacheMetrics{registry.GetCounter("serve/evictions"),
                            registry.GetGauge("serve/cached_tokens"),
                            registry.GetGauge("serve/cached_prefixes")};
  }();
  return *metrics;
}

}  // namespace

PrefixCache::PrefixCache(size_t budget_tokens)
    : budget_tokens_(budget_tokens) {}

std::shared_ptr<const PrefixCache::Entry> PrefixCache::Lookup(
    const std::vector<int>& prompt, uint64_t generation) {
  util::MutexLock lock(mu_);
  auto it = slots_.find(Key(generation, prompt));
  if (it == slots_.end()) return nullptr;
  it->second.last_use = ++tick_;
  return it->second.entry;
}

size_t PrefixCache::Insert(std::shared_ptr<const Entry> entry) {
  if (entry == nullptr) return 0;
  util::MutexLock lock(mu_);
  if (entry->generation != 0 && entry->generation != active_generation_) {
    // A row admitted under a since-replaced adapter version is parking its
    // prefix after the swap already invalidated that generation. Readmitting
    // it would resurrect K/V pages no future lookup may use (lookups carry
    // the active generation), so the entry is dropped on the floor. Not an
    // eviction: it never entered the pool.
    return 0;
  }
  auto it = slots_.find(Key(entry->generation, entry->prompt));
  if (it != slots_.end()) {
    // The prompt is already resident (e.g. two batch rows prefilled it
    // concurrently, or a prefix-hit row is re-publishing at retirement).
    // Keep the resident copy — sharers may already hold it — and only
    // refresh recency. Budget accounting is untouched: the prefix is
    // stored and counted exactly once however many rows share it.
    it->second.last_use = ++tick_;
    return 0;
  }
  size_t tokens = entry->prompt.size();
  Key key(entry->generation, entry->prompt);
  Slot slot;
  slot.entry = std::move(entry);
  slot.last_use = ++tick_;
  slots_.emplace(std::move(key), std::move(slot));
  cached_tokens_ += tokens;
  size_t evicted = EnforceBudgetLocked();
  PublishLocked();
  return evicted;
}

size_t PrefixCache::Clear() {
  util::MutexLock lock(mu_);
  size_t dropped = slots_.size();
  slots_.clear();
  cached_tokens_ = 0;
  if (dropped > 0) Metrics().evictions->Increment(dropped);
  PublishLocked();
  return dropped;
}

size_t PrefixCache::InvalidateGeneration(uint64_t gen) {
  util::MutexLock lock(mu_);
  size_t dropped = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.first == gen) {
      cached_tokens_ -= it->second.entry->prompt.size();
      it = slots_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    Metrics().evictions->Increment(dropped);
    PublishLocked();
  }
  return dropped;
}

void PrefixCache::SetActiveGeneration(uint64_t gen) {
  util::MutexLock lock(mu_);
  active_generation_ = gen;
}

uint64_t PrefixCache::active_generation() const {
  util::MutexLock lock(mu_);
  return active_generation_;
}

size_t PrefixCache::cached_tokens() const {
  util::MutexLock lock(mu_);
  return cached_tokens_;
}

size_t PrefixCache::entries() const {
  util::MutexLock lock(mu_);
  return slots_.size();
}

size_t PrefixCache::EnforceBudgetLocked() {
  size_t evicted = 0;
  while (cached_tokens_ > budget_tokens_ && !slots_.empty()) {
    auto victim = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    // Dropping the pool's reference frees the pages only once the last
    // in-flight sharer releases its handle.
    cached_tokens_ -= victim->second.entry->prompt.size();
    slots_.erase(victim);
    Metrics().evictions->Increment();
    ++evicted;
  }
  return evicted;
}

void PrefixCache::PublishLocked() {
  Metrics().cached_tokens->Set(static_cast<double>(cached_tokens_));
  Metrics().cached_prefixes->Set(static_cast<double>(slots_.size()));
}

}  // namespace infuserki::serve
