#ifndef INFUSERKI_SERVE_PREFIX_CACHE_H_
#define INFUSERKI_SERVE_PREFIX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "model/batched_session.h"

namespace infuserki::serve {

/// LRU pool of prefilled prompt prefixes, keyed by exact prompt token ids
/// and bounded by a KV-token budget.
///
/// A cached entry holds an immutable snapshot of the per-layer K/V pages at
/// the prompt boundary (see BatchedDecodeSession::SlotSnapshot), plus a
/// copy of the prompt-boundary logits row — a replanted snapshot has no
/// logits for the first continuation token, so the row is captured at
/// prefill time and replayed on reuse.
///
/// Sharing protocol: entries are immutable and reference-counted. Lookup()
/// returns a shared handle WITHOUT removing the entry, so any number of
/// in-flight batch rows can restore their slots from the same snapshot
/// concurrently — the prefix K/V is stored once, counted against the
/// budget once, and kept alive by the sharers even if the pool evicts it
/// mid-decode. (The pre-batching design checked entries out exclusively,
/// which both serialized same-prompt requests and double-counted their
/// tokens; see DESIGN.md §11.) Insert() publishes a freshly prefilled
/// entry, then evicts least-recently-used entries until the total cached
/// prompt tokens fit the budget again — possibly evicting the incoming
/// entry itself when it alone exceeds the budget — so cached KV memory
/// stays bounded no matter the request mix. Inserting a prompt that is
/// already resident only refreshes its LRU stamp (no eviction, no
/// double-count). Evictions and occupancy are published through the
/// `serve/` metrics (DESIGN.md §6).
class PrefixCache {
 public:
  /// One reusable prefilled prefix. Immutable once published.
  struct Entry {
    std::vector<int> prompt;
    model::BatchedDecodeSession::SlotSnapshot pages;  // the prompt boundary
    std::vector<float> last_row;  // logits row scoring the next token
  };

  /// `budget_tokens` caps the sum of cached prompt lengths; 0 disables
  /// caching entirely (every Insert is an immediate eviction).
  explicit PrefixCache(size_t budget_tokens);

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Returns a shared handle to the entry for `prompt` (refreshing its LRU
  /// stamp), or null on a miss. The entry stays resident and available to
  /// other callers.
  std::shared_ptr<const Entry> Lookup(const std::vector<int>& prompt);

  /// Publishes an entry, then enforces the budget by LRU eviction. If the
  /// same prompt is already resident its LRU stamp is refreshed and the
  /// incoming handle is simply not stored (the sharers' copy wins; no
  /// eviction counted). Null entries are ignored. Returns the number of
  /// entries evicted by this call, so callers can attribute evictions to
  /// the request that triggered them.
  size_t Insert(std::shared_ptr<const Entry> entry);

  /// Drops every cached entry (keeps the budget).
  void Clear();

  size_t cached_tokens() const;
  size_t entries() const;
  size_t budget_tokens() const { return budget_tokens_; }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    uint64_t last_use = 0;
  };

  /// Evicts LRU slots until `cached_tokens_` fits the budget; returns the
  /// eviction count. Requires `mu_` held.
  size_t EnforceBudgetLocked();
  /// Publishes occupancy gauges. Requires `mu_` held.
  void PublishLocked();

  const size_t budget_tokens_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  size_t cached_tokens_ = 0;
  std::map<std::vector<int>, Slot> slots_;
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_PREFIX_CACHE_H_
