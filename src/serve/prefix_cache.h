#ifndef INFUSERKI_SERVE_PREFIX_CACHE_H_
#define INFUSERKI_SERVE_PREFIX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "model/decode_session.h"

namespace infuserki::serve {

/// LRU pool of prefilled DecodeSessions, keyed by exact prompt token ids
/// and bounded by a KV-token budget.
///
/// A cached entry holds a session whose KV cache ends exactly at the prompt
/// boundary (its checkpoint `mark`), plus a copy of the prompt-boundary
/// logits row — a rewound session has no logits for the first continuation
/// token, so the row is captured at prefill time and replayed on reuse.
///
/// Ownership protocol: Take() removes the entry from the pool, giving the
/// caller exclusive use of the (single-threaded) session; after decoding,
/// the caller rewinds to `mark` and Put()s the entry back. An entry whose
/// session failed mid-decode is simply dropped instead of returned. Put()
/// evicts least-recently-used entries until the total cached prompt tokens
/// fit the budget again — possibly evicting the incoming entry itself when
/// it alone exceeds the budget — so cached KV memory stays bounded no
/// matter the request mix. Evictions and occupancy are published through
/// the `serve/` metrics (DESIGN.md §6).
class PrefixCache {
 public:
  /// One reusable prefilled prefix.
  struct Entry {
    std::vector<int> prompt;
    std::unique_ptr<model::DecodeSession> session;
    model::DecodeSession::Checkpoint mark;  // the prompt boundary
    std::vector<float> last_row;  // logits row scoring the next token
  };

  /// `budget_tokens` caps the sum of cached prompt lengths; 0 disables
  /// caching entirely (every Put is an immediate eviction).
  explicit PrefixCache(size_t budget_tokens);

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Removes and returns the entry for `prompt`, or null on a miss. The
  /// caller owns the entry exclusively until it is Put() back or dropped.
  std::unique_ptr<Entry> Take(const std::vector<int>& prompt);

  /// Returns an entry to the pool (caller must have rewound the session to
  /// `mark` first), then enforces the budget by LRU eviction. If another
  /// entry for the same prompt was inserted meanwhile, the incoming one is
  /// dropped. Null entries are ignored. Returns the number of entries
  /// evicted by this call (including an incoming duplicate), so callers
  /// can attribute evictions to the request that triggered them.
  size_t Put(std::unique_ptr<Entry> entry);

  /// Drops every cached entry (keeps the budget).
  void Clear();

  size_t cached_tokens() const;
  size_t entries() const;
  size_t budget_tokens() const { return budget_tokens_; }

 private:
  struct Slot {
    std::unique_ptr<Entry> entry;
    uint64_t last_use = 0;
  };

  /// Evicts LRU slots until `cached_tokens_` fits the budget; returns the
  /// eviction count. Requires `mu_` held.
  size_t EnforceBudgetLocked();
  /// Publishes occupancy gauges. Requires `mu_` held.
  void PublishLocked();

  const size_t budget_tokens_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  size_t cached_tokens_ = 0;
  std::map<std::vector<int>, Slot> slots_;
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_PREFIX_CACHE_H_
