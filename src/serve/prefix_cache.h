#ifndef INFUSERKI_SERVE_PREFIX_CACHE_H_
#define INFUSERKI_SERVE_PREFIX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "model/batched_session.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki::serve {

/// LRU pool of prefilled prompt prefixes, keyed by exact prompt token ids
/// plus the adapter generation that prefilled them, bounded by a KV-token
/// budget.
///
/// A cached entry holds an immutable snapshot of the per-layer K/V pages at
/// the prompt boundary (see BatchedDecodeSession::SlotSnapshot), plus a
/// copy of the prompt-boundary logits row — a replanted snapshot has no
/// logits for the first continuation token, so the row is captured at
/// prefill time and replayed on reuse.
///
/// Sharing protocol: entries are immutable and reference-counted. Lookup()
/// returns a shared handle WITHOUT removing the entry, so any number of
/// in-flight batch rows can restore their slots from the same snapshot
/// concurrently — the prefix K/V is stored once, counted against the
/// budget once, and kept alive by the sharers even if the pool evicts it
/// mid-decode. (The pre-batching design checked entries out exclusively,
/// which both serialized same-prompt requests and double-counted their
/// tokens; see DESIGN.md §11.) Insert() publishes a freshly prefilled
/// entry, then evicts least-recently-used entries until the total cached
/// prompt tokens fit the budget again — possibly evicting the incoming
/// entry itself when it alone exceeds the budget — so cached KV memory
/// stays bounded no matter the request mix. Inserting a prompt that is
/// already resident only refreshes its LRU stamp (no eviction, no
/// double-count). Evictions and occupancy are published through the
/// `serve/` metrics (DESIGN.md §6).
///
/// Generation tags (DESIGN.md §12): an entry prefilled under adapter
/// version g carries generation = g (0 = base model, no adapter); its K/V
/// pages embed that version's deltas, so it is only valid for rows pinned
/// to the same version. A hot swap calls SetActiveGeneration(new) then
/// InvalidateGeneration(old), which drops exactly the replaced version's
/// prefixes — base-model entries survive every swap. Entries parked by
/// still-flying rows of a replaced generation are rejected at Insert (the
/// cache never readmits a stale generation), without counting as
/// evictions.
class PrefixCache {
 public:
  /// One reusable prefilled prefix. Immutable once published.
  struct Entry {
    std::vector<int> prompt;
    model::BatchedDecodeSession::SlotSnapshot pages;  // the prompt boundary
    std::vector<float> last_row;  // logits row scoring the next token
    uint64_t generation = 0;      // adapter version at prefill (0 = base)
  };

  /// `budget_tokens` caps the sum of cached prompt lengths; 0 disables
  /// caching entirely (every Insert is an immediate eviction).
  explicit PrefixCache(size_t budget_tokens);

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Returns a shared handle to the entry for `prompt` under adapter
  /// generation `generation` (refreshing its LRU stamp), or null on a
  /// miss. The entry stays resident and available to other callers.
  std::shared_ptr<const Entry> Lookup(const std::vector<int>& prompt,
                                      uint64_t generation = 0) EXCLUDES(mu_);

  /// Publishes an entry, then enforces the budget by LRU eviction. If the
  /// same (generation, prompt) is already resident its LRU stamp is
  /// refreshed and the incoming handle is simply not stored (the sharers'
  /// copy wins; no eviction counted). Entries from a non-base generation
  /// other than the active one are dropped without being stored (stale
  /// parks from rows that flew across a swap; not counted as evictions).
  /// Null entries are ignored. Returns the number of entries evicted by
  /// this call, so callers can attribute evictions to the request that
  /// triggered them.
  size_t Insert(std::shared_ptr<const Entry> entry) EXCLUDES(mu_);

  /// Drops every cached entry (keeps the budget). Returns the exact number
  /// of entries dropped; each counts toward `serve/evictions`.
  size_t Clear() EXCLUDES(mu_);

  /// Drops every entry of adapter generation `gen` (a swap retiring that
  /// version; callers skip gen 0 so base prefixes survive). Returns the
  /// exact number dropped; each counts toward `serve/evictions`. In-flight
  /// sharers keep their handles alive — invalidation only removes the
  /// pool's reference.
  size_t InvalidateGeneration(uint64_t gen) EXCLUDES(mu_);

  /// The adapter generation new inserts are admitted under. Set by the
  /// swap path BEFORE invalidating the outgoing generation.
  void SetActiveGeneration(uint64_t gen) EXCLUDES(mu_);
  uint64_t active_generation() const EXCLUDES(mu_);

  size_t cached_tokens() const EXCLUDES(mu_);
  size_t entries() const EXCLUDES(mu_);
  size_t budget_tokens() const { return budget_tokens_; }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    uint64_t last_use = 0;
  };
  using Key = std::pair<uint64_t, std::vector<int>>;  // (generation, prompt)

  /// Evicts LRU slots until `cached_tokens_` fits the budget; returns the
  /// eviction count.
  size_t EnforceBudgetLocked() REQUIRES(mu_);
  /// Publishes occupancy gauges.
  void PublishLocked() REQUIRES(mu_);

  const size_t budget_tokens_;
  // Leaf-adjacent in the lock hierarchy (DESIGN.md §13): PublishLocked may
  // resolve metrics under it on first touch; nothing else nests below.
  mutable util::Mutex mu_;
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  size_t cached_tokens_ GUARDED_BY(mu_) = 0;
  uint64_t active_generation_ GUARDED_BY(mu_) = 0;
  std::map<Key, Slot> slots_ GUARDED_BY(mu_);
};

}  // namespace infuserki::serve

#endif  // INFUSERKI_SERVE_PREFIX_CACHE_H_
