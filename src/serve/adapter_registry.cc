#include "serve/adapter_registry.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace infuserki::serve {
namespace {

/// Payload tag guarding against framing a different artifact kind into an
/// adapter slot ("ADPT").
constexpr uint32_t kAdapterPayloadMagic = 0x41445054;

struct RegistryMetrics {
  obs::Counter* swap_published;
  obs::Counter* swap_rollbacks;
};

RegistryMetrics& Metrics() {
  // Magic-static resolve-once idiom (see prefix_cache.cc).
  static RegistryMetrics* metrics = [] {
    obs::Registry& registry = obs::Registry::Get();
    return new RegistryMetrics{
        registry.GetCounter("serve/swap_published"),
        registry.GetCounter("serve/swap_rollbacks")};
  }();
  return *metrics;
}

void WriteAdapter(util::BinaryWriter* writer,
                  const model::PositionWiseAdapter& adapter) {
  writer->WriteU32(kAdapterPayloadMagic);
  writer->WriteU32(static_cast<uint32_t>(adapter.attachment()));
  writer->WriteU64(adapter.model_dim());
  writer->WriteU64(adapter.bottleneck());
  writer->WriteU64(adapter.layers().size());
  for (const model::PositionWiseAdapter::LayerWeights& layer :
       adapter.layers()) {
    writer->WriteU64(static_cast<uint64_t>(layer.layer));
    writer->WriteFloatVector(layer.down_weight.impl()->data);
    writer->WriteFloatVector(layer.down_bias.impl()->data);
    writer->WriteFloatVector(layer.up_weight.impl()->data);
    writer->WriteFloatVector(layer.up_bias.impl()->data);
  }
}

util::StatusOr<std::shared_ptr<const model::PositionWiseAdapter>> ReadAdapter(
    const std::string& path) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return reader.status();
  auto corrupt = [&path](const std::string& what) {
    return util::Status::DataLoss("adapter checkpoint " + path + ": " + what);
  };
  if (reader.ReadU32() != kAdapterPayloadMagic) {
    return corrupt("not an adapter payload");
  }
  uint32_t attachment_raw = reader.ReadU32();
  if (attachment_raw > 1) return corrupt("unknown attachment");
  uint64_t model_dim = reader.ReadU64();
  uint64_t bottleneck = reader.ReadU64();
  uint64_t num_layers = reader.ReadU64();
  if (!reader.ok()) return corrupt("truncated header");
  if (model_dim == 0 || bottleneck == 0 || num_layers == 0) {
    return corrupt("degenerate dimensions");
  }
  std::vector<model::PositionWiseAdapter::LayerWeights> layers;
  layers.reserve(num_layers);
  int previous_layer = -1;
  for (uint64_t i = 0; i < num_layers; ++i) {
    uint64_t layer_index = reader.ReadU64();
    std::vector<float> down_w = reader.ReadFloatVector();
    std::vector<float> down_b = reader.ReadFloatVector();
    std::vector<float> up_w = reader.ReadFloatVector();
    std::vector<float> up_b = reader.ReadFloatVector();
    if (!reader.ok()) return corrupt("truncated layer block");
    if (static_cast<int>(layer_index) <= previous_layer) {
      return corrupt("layer indices not ascending");
    }
    previous_layer = static_cast<int>(layer_index);
    if (down_w.size() != bottleneck * model_dim ||
        down_b.size() != bottleneck ||
        up_w.size() != model_dim * bottleneck || up_b.size() != model_dim) {
      return corrupt("weight shape mismatch");
    }
    model::PositionWiseAdapter::LayerWeights weights;
    weights.layer = static_cast<int>(layer_index);
    weights.down_weight = tensor::Tensor::FromData(
        {bottleneck, model_dim}, std::move(down_w));
    weights.down_bias =
        tensor::Tensor::FromData({bottleneck}, std::move(down_b));
    weights.up_weight = tensor::Tensor::FromData(
        {model_dim, bottleneck}, std::move(up_w));
    weights.up_bias = tensor::Tensor::FromData({model_dim}, std::move(up_b));
    layers.push_back(std::move(weights));
  }
  return std::make_shared<const model::PositionWiseAdapter>(
      model_dim, bottleneck,
      static_cast<model::AdapterAttachment>(attachment_raw),
      std::move(layers));
}

}  // namespace

AdapterRegistry::AdapterRegistry(std::string dir, util::RetryOptions retry)
    : dir_(std::move(dir)), retry_(retry) {}

std::string AdapterRegistry::VersionPath(uint64_t sequence) const {
  char name[32];
  std::snprintf(name, sizeof(name), "adapter_%08llu.bin",
                static_cast<unsigned long long>(sequence));
  return dir_ + "/" + name;
}

std::vector<uint64_t> AdapterRegistry::ListSequences() const {
  std::vector<uint64_t> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    unsigned long long sequence = 0;
    char trailer = '\0';
    // Exactly "adapter_<digits>.bin": the trailing %c rejects ".bin.tmp"
    // and ".bin.corrupt".
    if (std::sscanf(name.c_str(), "adapter_%llu.bin%c", &sequence,
                    &trailer) != 1) {
      continue;
    }
    found.push_back(sequence);
  }
  std::sort(found.begin(), found.end());
  return found;
}

util::StatusOr<AdapterVersion> AdapterRegistry::Publish(
    std::shared_ptr<const model::PositionWiseAdapter> adapter) {
  if (adapter == nullptr) {
    return util::Status::InvalidArgument(
        "cannot publish a null adapter (sequence 0, the base model, is "
        "implicit and never stored)");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return util::Status::Internal("cannot create registry dir " + dir_ +
                                  ": " + ec.message());
  }
  std::vector<uint64_t> existing = ListSequences();
  uint64_t sequence = existing.empty() ? 1 : existing.back() + 1;
  AdapterVersion version;
  version.sequence = sequence;
  version.path = VersionPath(sequence);
  version.adapter = std::move(adapter);
  util::BinaryWriter writer(version.path);
  WriteAdapter(&writer, *version.adapter);
  RETURN_IF_ERROR(writer.Finish());
  Metrics().swap_published->Increment();
  return version;
}

util::StatusOr<AdapterVersion> AdapterRegistry::LoadAttempt(
    uint64_t sequence, const std::string& path) {
  std::shared_ptr<const model::PositionWiseAdapter> adapter;
  util::Status status = util::RetryWithBackoff(
      [&]() -> util::Status {
        RETURN_IF_ERROR(FAULT_POINT("serve/adapter_load"));
        util::StatusOr<std::shared_ptr<const model::PositionWiseAdapter>>
            loaded = ReadAdapter(path);
        RETURN_IF_ERROR(loaded.status());
        adapter = std::move(loaded).value();
        return util::Status::OK();
      },
      retry_, "adapter load " + path);
  RETURN_IF_ERROR(status);
  AdapterVersion version;
  version.sequence = sequence;
  version.path = path;
  version.adapter = std::move(adapter);
  return version;
}

util::StatusOr<AdapterVersion> AdapterRegistry::Load(uint64_t sequence) {
  std::string path = VersionPath(sequence);
  util::StatusOr<AdapterVersion> version = LoadAttempt(sequence, path);
  if (!version.ok()) {
    util::Status quarantined = util::QuarantineFile(path);
    if (!quarantined.ok() &&
        quarantined.code() != util::StatusCode::kNotFound) {
      LOG_WARNING << "failed to quarantine " << path << ": "
                  << quarantined.message();
    }
  }
  return version;
}

util::StatusOr<AdapterVersion> AdapterRegistry::LoadLatest() {
  std::vector<uint64_t> sequences = ListSequences();
  if (sequences.empty()) {
    return util::Status::NotFound("no adapter versions published in " + dir_);
  }
  util::Status last_error = util::Status::OK();
  // Newest first; every failed candidate is quarantined so the next walk
  // does not trip over it again, and the walk "rolls back" to the next
  // older version (DESIGN.md §12 rollback state machine).
  for (auto it = sequences.rbegin(); it != sequences.rend(); ++it) {
    util::StatusOr<AdapterVersion> version = Load(*it);
    if (version.ok()) return version;
    last_error = version.status();
    Metrics().swap_rollbacks->Increment();
    LOG_WARNING << "adapter version " << *it << " failed to load ("
                << last_error.message() << "); quarantined, rolling back";
  }
  return util::Status::Unavailable(
      "every published adapter version failed to load; last error: " +
      last_error.message());
}

}  // namespace infuserki::serve
