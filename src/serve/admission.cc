#include "serve/admission.h"

#include <algorithm>
#include <utility>

namespace infuserki::serve {
namespace {

// WDRR weights below this are clamped up, bounding the rotations one
// PopNext can spend crediting a starved tenant (<= cost / (quantum * min)).
constexpr double kMinWeight = 0.01;
// Deficit cost of dequeuing one request. Cost-per-token WDRR would need
// the prompt tokenized before admission; per-request cost keeps Offer()
// cheap and is fair enough at request granularity (DESIGN.md §14).
constexpr double kRequestCost = 1.0;

}  // namespace

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kTenantCap:
      return "tenant_cap";
    case ShedReason::kRateLimited:
      return "rate_limited";
    case ShedReason::kBrownout:
      return "brownout";
    case ShedReason::kDeadlineInfeasible:
      return "infeasible";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         size_t queue_capacity)
    : options_(std::move(options)), capacity_(queue_capacity) {}

AdmissionController::~AdmissionController() = default;

std::string AdmissionController::Normalize(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

AdmissionController::TenantState& AdmissionController::StateFor(
    const std::string& tenant) {
  std::string name = Normalize(tenant);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  auto policy = options_.tenants.find(name);
  state.policy = policy != options_.tenants.end() ? policy->second
                                                  : options_.default_policy;
  if (state.policy.burst <= 0.0) {
    state.policy.burst = std::max(1.0, state.policy.rate_qps);
  }
  state.bucket_tokens = state.policy.burst;  // a fresh tenant starts full
  return tenants_.emplace(std::move(name), std::move(state)).first->second;
}

AdmissionController::Verdict AdmissionController::Offer(
    const std::string& tenant, Priority priority,
    std::chrono::steady_clock::time_point now, int brownout_level) {
  if (size_ >= capacity_) return {ShedReason::kQueueFull, 0.0};
  TenantState& state = StateFor(tenant);
  if (state.policy.queue_cap > 0 && state.depth >= state.policy.queue_cap) {
    return {ShedReason::kTenantCap, 0.0};
  }
  if (brownout_level >= kBrownoutRejectLowLevel &&
      priority == Priority::kLow) {
    return {ShedReason::kBrownout, 0.0};
  }
  if (state.policy.rate_qps > 0.0) {
    if (state.bucket_primed) {
      double elapsed =
          std::chrono::duration<double>(now - state.bucket_refill).count();
      if (elapsed > 0.0) {
        state.bucket_tokens =
            std::min(state.policy.burst,
                     state.bucket_tokens + elapsed * state.policy.rate_qps);
      }
    }
    state.bucket_primed = true;
    state.bucket_refill = now;
    if (state.bucket_tokens < 1.0) {
      // Exact refill time until one full token is available — the one
      // shed class where the controller itself knows the best hint.
      double wait = (1.0 - state.bucket_tokens) / state.policy.rate_qps;
      return {ShedReason::kRateLimited, wait};
    }
    state.bucket_tokens -= 1.0;
  }
  return {ShedReason::kNone, 0.0};
}

void AdmissionController::Push(Entry entry) {
  entry.tenant = Normalize(entry.tenant);
  TenantState& state = StateFor(entry.tenant);
  int tier = static_cast<int>(entry.priority);
  if (state.tiers[tier].empty()) rings_[tier].push_back(entry.tenant);
  state.tiers[tier].push_back(std::move(entry));
  ++state.depth;
  ++size_;
}

bool AdmissionController::PopNext(Entry* out) {
  if (!deferred_.empty()) {
    *out = std::move(deferred_.front());
    deferred_.pop_front();
    --StateFor(out->tenant).depth;
    --size_;
    return true;
  }
  for (int tier = 0; tier < kPriorityTiers; ++tier) {
    std::deque<std::string>& ring = rings_[tier];
    // Terminates: every rotation credits the front tenant at least
    // quantum * kMinWeight, so its deficit reaches kRequestCost within a
    // bounded number of visits.
    while (!ring.empty()) {
      TenantState& state = tenants_.at(ring.front());
      if (state.deficit[tier] >= kRequestCost) {
        state.deficit[tier] -= kRequestCost;
        std::deque<Entry>& queue = state.tiers[tier];
        *out = std::move(queue.front());
        queue.pop_front();
        --state.depth;
        --size_;
        if (queue.empty()) {
          state.deficit[tier] = 0.0;  // no banking while inactive
          ring.pop_front();
        }
        return true;
      }
      state.deficit[tier] +=
          options_.quantum * std::max(state.policy.weight, kMinWeight);
      ring.push_back(ring.front());
      ring.pop_front();
    }
  }
  return false;
}

void AdmissionController::Defer(Entry entry) {
  ++StateFor(entry.tenant).depth;
  ++size_;
  deferred_.push_front(std::move(entry));
}

std::vector<AdmissionController::Entry> AdmissionController::DrainAll() {
  std::vector<Entry> drained;
  drained.reserve(size_);
  for (Entry& entry : deferred_) drained.push_back(std::move(entry));
  deferred_.clear();
  for (auto& [name, state] : tenants_) {
    for (auto& tier : state.tiers) {
      for (Entry& entry : tier) drained.push_back(std::move(entry));
      tier.clear();
    }
    state.deficit.fill(0.0);
    state.depth = 0;
  }
  for (auto& ring : rings_) ring.clear();
  size_ = 0;
  return drained;
}

size_t AdmissionController::tenant_depth(const std::string& tenant) const {
  auto it = tenants_.find(Normalize(tenant));
  return it != tenants_.end() ? it->second.depth : 0;
}

BrownoutController::BrownoutController(BrownoutOptions options)
    : options_(std::move(options)) {}

int BrownoutController::Tick(double occupancy) {
  int level = level_.load(std::memory_order_relaxed);
  if (occupancy >= options_.enter_occupancy) {
    below_ = 0;
    if (++above_ >= options_.enter_ticks && level < kBrownoutMaxLevel) {
      ++level;
      above_ = 0;
      level_.store(level, std::memory_order_relaxed);
    }
  } else if (occupancy < options_.exit_occupancy) {
    above_ = 0;
    if (++below_ >= options_.exit_ticks && level > 0) {
      --level;
      below_ = 0;
      level_.store(level, std::memory_order_relaxed);
    }
  } else {
    // Dead band: pressure is neither clearly high nor clearly low. Reset
    // both streaks so the level holds — this is the hysteresis.
    above_ = 0;
    below_ = 0;
  }
  return level;
}

RateEstimator::RateEstimator(double alpha) : alpha_(alpha) {}

void RateEstimator::Blend(std::atomic<double>* cell, double sample) {
  double current = cell->load(std::memory_order_relaxed);
  double next = current <= 0.0 ? sample
                               : (1.0 - alpha_) * current + alpha_ * sample;
  cell->store(next, std::memory_order_relaxed);
}

void RateEstimator::ObserveStep(size_t prefill_tokens, size_t decode_tokens,
                                double seconds) {
  if (seconds <= 0.0 || prefill_tokens + decode_tokens == 0) return;
  if (prefill_tokens == 0) {
    Blend(&decode_rate_, static_cast<double>(decode_tokens) / seconds);
    return;
  }
  double decode_rate = decode_tokens_per_s();
  if (decode_tokens > 0 && decode_rate > 0.0) {
    // Mixed step: subtract the decode rows' estimated share, attribute
    // the residual to the prefill tokens. Floor the residual at the
    // prefill tokens' proportional share so a noisy decode estimate can
    // never produce a negative (or absurdly fast) prefill rate.
    double decode_cost = static_cast<double>(decode_tokens) / decode_rate;
    double total = static_cast<double>(prefill_tokens + decode_tokens);
    double floor_s =
        seconds * static_cast<double>(prefill_tokens) / total * 0.5;
    double prefill_s = std::max(seconds - decode_cost, floor_s);
    Blend(&prefill_rate_,
          static_cast<double>(prefill_tokens) / prefill_s);
  } else {
    Blend(&prefill_rate_,
          static_cast<double>(prefill_tokens + decode_tokens) / seconds);
  }
}

void RateEstimator::ObserveRequest(double seconds) {
  if (seconds <= 0.0) return;
  Blend(&request_seconds_, seconds);
}

void RateEstimator::SeedRates(double prefill_tokens_per_s,
                              double decode_tokens_per_s) {
  prefill_rate_.store(prefill_tokens_per_s, std::memory_order_relaxed);
  decode_rate_.store(decode_tokens_per_s, std::memory_order_relaxed);
}

bool RateEstimator::warmed() const {
  return prefill_tokens_per_s() > 0.0 && decode_tokens_per_s() > 0.0;
}

double RateEstimator::EstimateServiceSeconds(size_t prompt_tokens,
                                             size_t new_tokens) const {
  if (!warmed()) return 0.0;
  return static_cast<double>(prompt_tokens) / prefill_tokens_per_s() +
         static_cast<double>(new_tokens) / decode_tokens_per_s();
}

}  // namespace infuserki::serve
