#include "core/detection.h"

#include "obs/trace.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace infuserki::core {

int AnswerMcq(const model::TransformerLM& lm,
              const text::Tokenizer& tokenizer, const kg::Mcq& mcq,
              AnswerMode mode, const model::ForwardOptions& options) {
  std::vector<std::string> option_texts(mcq.options.begin(),
                                        mcq.options.end());
  if (mode == AnswerMode::kGeneration) {
    // Paper-faithful path: the full lettered-option prompt, greedy decode,
    // option extraction.
    return model::ExtractChosenOption(lm, tokenizer, kg::FormatMcqPrompt(mcq),
                                      option_texts, options);
  }
  // Likelihood path: option-free prompt, options scored as continuations.
  return model::ScoreOptions(lm, tokenizer, kg::FormatQuestionPrompt(mcq),
                             option_texts, options)
      .best;
}

DetectionResult DetectKnowledge(const model::TransformerLM& lm,
                                const text::Tokenizer& tokenizer,
                                const std::vector<kg::Mcq>& questions,
                                AnswerMode mode,
                                const model::ForwardOptions& options) {
  OBS_SPAN("detection/detect_knowledge");
  DetectionResult result;
  size_t max_index = 0;
  for (const kg::Mcq& mcq : questions) {
    max_index = std::max(max_index, mcq.triplet_index);
  }
  result.is_known.assign(max_index + 1, 0);
  // Questions are independent, so fan out across the pool when the forward
  // is stateless (hooks are mutated during a forward and must serialize;
  // the read-only prefix is safe to share). Answers are collected by index
  // and aggregated sequentially, so known/unknown ordering matches the
  // sequential loop exactly.
  std::vector<int> chosen(questions.size(), -1);
  bool stateless =
      options.ffn_hook == nullptr && options.attn_hook == nullptr &&
      options.trace == nullptr;
  if (stateless) {
    util::ParallelForEach(questions.size(), [&](size_t i) {
      chosen[i] = AnswerMcq(lm, tokenizer, questions[i], mode, options);
    });
  } else {
    for (size_t i = 0; i < questions.size(); ++i) {
      chosen[i] = AnswerMcq(lm, tokenizer, questions[i], mode, options);
    }
  }
  for (size_t i = 0; i < questions.size(); ++i) {
    const kg::Mcq& mcq = questions[i];
    // An unextractable answer counts as incorrect (§3.2).
    if (chosen[i] == mcq.correct) {
      result.known.push_back(mcq.triplet_index);
      result.is_known[mcq.triplet_index] = 1;
    } else {
      result.unknown.push_back(mcq.triplet_index);
    }
  }
  return result;
}

}  // namespace infuserki::core
