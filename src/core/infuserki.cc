#include "core/infuserki.h"

#include <algorithm>
#include <numeric>

#include "model/trainer.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace infuserki::core {

using tensor::Tensor;

int FindSubsequence(const std::vector<int>& haystack,
                    const std::vector<int>& needle) {
  if (needle.empty() || needle.size() > haystack.size()) return -1;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (haystack[i + j] != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return static_cast<int>(i);
  }
  return -1;
}

InfuserKi::InfuserKi(model::TransformerLM* lm,
                     const InfuserKiOptions& options)
    : lm_(lm),
      options_(options),
      stack_(lm->config().dim, lm->config().num_layers, options.adapters) {
  CHECK(lm != nullptr);
}

model::ForwardOptions InfuserKi::Forward() {
  model::ForwardOptions forward;
  if (options_.adapters.placement == AdapterPlacement::kFfn) {
    forward.ffn_hook = &stack_;
  } else {
    forward.attn_hook = &stack_;
  }
  return forward;
}

size_t InfuserKi::NumTrainableParameters() const {
  size_t n = stack_.NumParameters();
  if (rc_proj_ != nullptr) n += rc_proj_->NumParameters();
  if (rc_rel_emb_ != nullptr) n += rc_rel_emb_->NumParameters();
  return n;
}

void InfuserKi::Train(const KiTrainData& data) {
  CHECK(data.tokenizer != nullptr);
  CHECK(data.kg != nullptr);
  obs::ScopedSpan span("method/" + name() + "/train");
  util::Stopwatch watch;
  if (options_.infuser_pretrain && options_.adapters.use_infuser) {
    TrainInfuser(data);
  }
  double infuser_seconds = watch.Lap();
  TrainQa(data);
  double qa_seconds = watch.Lap();
  if (!data.unknown_statements.empty()) {
    TrainRc(data);
  }
  LOG_INFO << "InfuserKI training done in " << watch.ElapsedSeconds()
           << "s (infuser " << infuser_seconds << "s, qa " << qa_seconds
           << "s, rc " << watch.Lap() << "s; L_In=" << infuser_loss_
           << ", L_QA=" << qa_loss_ << ", L_RC-phase=" << rc_loss_ << ")";
}

void InfuserKi::TrainInfuser(const KiTrainData& data) {
  OBS_SPAN("infuserki/train_infuser");
  // Balanced mix: every known sample (label 0, "already acquired") paired
  // with an equal number of unknown samples (label 1, "new knowledge").
  struct Item {
    std::vector<int> tokens;
    float label;
  };
  std::vector<Item> items;
  size_t pairs = std::max(data.known_qa.size(), data.unknown_qa.size());
  if (data.known_qa.empty() || data.unknown_qa.empty()) {
    LOG_WARNING << "Infuser tuning skipped: no balanced samples available";
    return;
  }
  // Items use prompt+continuation sequences: evaluation scores every MCQ
  // option as a continuation, so the gate must discriminate on exactly
  // that distribution — including *wrong* continuations. The label tracks
  // whether the base model knows the fact, not whether the shown
  // continuation is correct.
  util::Rng aug_rng(options_.seed + 10);
  auto append = [&](const kg::QaSample& sample, float label) {
    items.push_back({data.tokenizer->EncodeWithSpecials(
                         sample.prompt + " " + sample.response,
                         /*add_eos=*/false),
                     label});
    int wrong = (sample.mcq.correct + 1 +
                 static_cast<int>(aug_rng.UniformInt(0, 2))) %
                4;
    items.push_back({data.tokenizer->EncodeWithSpecials(
                         sample.prompt + " " +
                             sample.mcq.options[static_cast<size_t>(wrong)],
                         /*add_eos=*/false),
                     label});
  };
  // Balanced mix: the shorter class cycles so both classes contribute the
  // same number of items.
  for (size_t i = 0; i < pairs; ++i) {
    append(data.known_qa[i % data.known_qa.size()], 0.0f);
    append(data.unknown_qa[i % data.unknown_qa.size()], 1.0f);
  }

  model::ForwardOptions forward = Forward();
  tensor::AdamW optimizer(stack_.InfuserParameters(),
                          {.lr = options_.lr, .weight_decay = 0.0f});
  util::Rng rng(options_.seed);
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  size_t steps_per_epoch =
      (items.size() + options_.batch_size - 1) / options_.batch_size;
  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < options_.infuser_epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t cursor = 0;
    double epoch_loss = 0.0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      size_t batch = 0;
      double batch_loss = 0.0;
      for (; batch < options_.batch_size && cursor < order.size();
           ++batch, ++cursor) {
        const Item& item = items[order[cursor]];
        // Forward the prompt; the hook collects per-layer Infuser logits.
        (void)lm_->Hidden(item.tokens, forward);
        const std::vector<Tensor>& logits = stack_.infuser_logits();
        CHECK(!logits.empty());
        Tensor all = logits[0];
        for (size_t l = 1; l < logits.size(); ++l) {
          all = tensor::Concat1d(all, logits[l]);
        }
        std::vector<float> labels(all.size(), item.label);
        Tensor loss = tensor::BceWithLogits(all, labels);
        batch_loss += loss.item();
        tensor::MulScalar(loss, 1.0f / static_cast<float>(
                                           options_.batch_size))
            .Backward();
      }
      if (batch == 0) continue;
      tensor::ClipGradNorm(optimizer.params(), 1.0f);
      optimizer.Step();
      optimizer.ZeroGrad();
      epoch_loss += batch_loss / static_cast<double>(batch);
    }
    last_epoch_loss = epoch_loss / static_cast<double>(steps_per_epoch);
  }
  infuser_loss_ = static_cast<float>(last_epoch_loss);
}

void InfuserKi::TrainQa(const KiTrainData& data) {
  OBS_SPAN("infuserki/train_qa");
  // The same modest mix of known samples every method receives (§4.1).
  // Known-replay examples are tagged: they run with the gate forced open so
  // the adapter itself learns to preserve known answers, making the method
  // robust to residual gate errors at inference.
  constexpr int kKnownTag = 1;
  std::vector<model::LmExample> examples;
  for (const kg::QaSample& sample : data.unknown_qa) {
    examples.push_back(model::MakeInstructionExample(
        *data.tokenizer, sample.prompt, sample.response));
  }
  for (const kg::QaSample& sample : data.known_qa) {
    model::LmExample example = model::MakeInstructionExample(
        *data.tokenizer, sample.prompt, sample.response);
    example.tag = kKnownTag;
    examples.push_back(std::move(example));
  }
  for (const kg::YesNoSample& sample : data.unknown_yesno) {
    examples.push_back(model::MakeInstructionExample(
        *data.tokenizer, sample.prompt, sample.answer ? "yes" : "no"));
  }
  CHECK(!examples.empty()) << "no QA training data";

  // The base model stays frozen. A pretrained Infuser is also frozen here —
  // letting the QA gradient keep moving it erodes the known/unknown
  // separation it learned in phase 1. In the w/o-RL ablation the QA loss is
  // the gate's only training signal, so it stays trainable.
  std::vector<Tensor> params = stack_.AdapterParameters();
  if (options_.adapters.use_infuser && !options_.infuser_pretrain) {
    for (const Tensor& t : stack_.InfuserParameters()) params.push_back(t);
  }
  model::LmTrainer::Options trainer_options;
  trainer_options.lr = options_.lr;
  trainer_options.batch_size = options_.batch_size;
  trainer_options.seed = options_.seed + 1;
  if (options_.adapters.use_infuser && options_.replay_open_gate) {
    trainer_options.on_example = [this](const model::LmExample& example) {
      stack_.set_gate_override(example.tag == kKnownTag ? 1.0f : -1.0f);
    };
  }
  model::LmTrainer trainer(lm_, std::move(params), trainer_options);
  size_t steps_per_epoch =
      (examples.size() + options_.batch_size - 1) / options_.batch_size;
  qa_loss_ = trainer.TrainSteps(examples, options_.qa_epochs * steps_per_epoch,
                                Forward());
  stack_.set_gate_override(-1.0f);
}

void InfuserKi::TrainRc(const KiTrainData& data) {
  OBS_SPAN("infuserki/train_rc");
  util::Rng rng(options_.seed + 2);
  if (options_.use_rc && rc_proj_ == nullptr) {
    rc_proj_ = std::make_unique<tensor::Linear>(
        2 * lm_->config().dim, options_.rc_dim, &rng);
    rc_rel_emb_ = std::make_unique<tensor::Embedding>(
        data.kg->num_relations(), options_.rc_dim, &rng,
        /*init_stddev=*/0.1f);
  }

  struct Item {
    std::vector<int> tokens;      // <bos> statement <eos>
    std::vector<int> head_span;   // token positions of the head mention
    std::vector<int> tail_span;   // token positions of the tail mention
    int relation = 0;
  };
  std::vector<Item> items;
  for (const kg::StatementSample& statement : data.unknown_statements) {
    Item item;
    item.tokens = data.tokenizer->EncodeWithSpecials(statement.text,
                                                     /*add_eos=*/true);
    const kg::Triplet& triplet =
        data.kg->triplets()[statement.triplet_index];
    item.relation = triplet.relation;
    // Positions are relative to the model input, which drops the final
    // token (see TransformerLM::NextTokenLoss).
    std::vector<int> inputs(item.tokens.begin(), item.tokens.end() - 1);
    auto span_of = [&](const std::string& name) {
      std::vector<int> ids = data.tokenizer->Encode(name);
      int start = FindSubsequence(inputs, ids);
      std::vector<int> span;
      if (start < 0) {
        // Mention not found verbatim (should not happen with template
        // statements); fall back to the whole sequence.
        span.resize(inputs.size());
        std::iota(span.begin(), span.end(), 0);
      } else {
        for (size_t j = 0; j < ids.size(); ++j) {
          span.push_back(start + static_cast<int>(j));
        }
      }
      return span;
    };
    item.head_span = span_of(data.kg->entity(triplet.head).name);
    item.tail_span = span_of(data.kg->entity(triplet.tail).name);
    items.push_back(std::move(item));
  }
  if (items.empty()) return;

  std::vector<Tensor> params = stack_.AdapterParameters();
  if (options_.adapters.use_infuser && !options_.infuser_pretrain) {
    for (const Tensor& t : stack_.InfuserParameters()) params.push_back(t);
  }
  if (options_.use_rc) {
    for (const Tensor& t : rc_proj_->Parameters()) params.push_back(t);
    for (const Tensor& t : rc_rel_emb_->Parameters()) params.push_back(t);
  }
  tensor::AdamW optimizer(
      std::move(params),
      {.lr = options_.lr * options_.rc_lr_scale, .weight_decay = 0.0f});
  model::ForwardOptions forward = Forward();

  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  size_t steps_per_epoch =
      (items.size() + options_.batch_size - 1) / options_.batch_size;
  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < options_.rc_epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t cursor = 0;
    double epoch_loss = 0.0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      size_t batch = 0;
      double batch_loss = 0.0;
      for (; batch < options_.batch_size && cursor < order.size();
           ++batch, ++cursor) {
        const Item& item = items[order[cursor]];
        // Next-token loss over the statement (Eq. 10); the same forward
        // leaves H_A^L in the stack for RC pooling.
        Tensor loss = lm_->NextTokenLoss(item.tokens, 0, forward);
        if (options_.use_rc) {
          const Tensor& adapter_out = stack_.last_adapter_output();
          CHECK(adapter_out.defined());
          Tensor v_head = tensor::MeanAxis0(
              tensor::GatherRows(adapter_out, item.head_span));
          Tensor v_tail = tensor::MeanAxis0(
              tensor::GatherRows(adapter_out, item.tail_span));
          Tensor v_rel = tensor::Reshape(tensor::Concat1d(v_head, v_tail),
                                         {1, 2 * lm_->config().dim});
          Tensor scores = tensor::MulScalar(
              tensor::MatmulNT(rc_proj_->Forward(v_rel),
                               rc_rel_emb_->table()),
              1.0f / options_.tau);
          Tensor rc = tensor::CrossEntropy(scores, {item.relation});
          loss = tensor::Add(loss, tensor::MulScalar(rc, options_.lambda_rc));
        }
        batch_loss += loss.item();
        tensor::MulScalar(loss, 1.0f / static_cast<float>(
                                           options_.batch_size))
            .Backward();
      }
      if (batch == 0) continue;
      tensor::ClipGradNorm(optimizer.params(), 1.0f);
      optimizer.Step();
      optimizer.ZeroGrad();
      epoch_loss += batch_loss / static_cast<double>(batch);
    }
    last_epoch_loss = epoch_loss / static_cast<double>(steps_per_epoch);
  }
  rc_loss_ = static_cast<float>(last_epoch_loss);
}

}  // namespace infuserki::core
