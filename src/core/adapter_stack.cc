#include "core/adapter_stack.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace infuserki::core {

using tensor::Tensor;

KnowledgeAdapterStack::KnowledgeAdapterStack(
    size_t model_dim, size_t num_layers, const AdapterStackOptions& options)
    : options_(options), model_dim_(model_dim) {
  int last = options.last_layer < 0 ? static_cast<int>(num_layers) - 1
                                    : options.last_layer;
  CHECK_GE(options.first_layer, 0);
  CHECK_LE(options.first_layer, last);
  CHECK_LT(static_cast<size_t>(last), num_layers);
  layer_to_slot_.assign(num_layers, -1);
  util::Rng rng(options.seed);
  for (int layer = options.first_layer; layer <= last; ++layer) {
    layer_to_slot_[static_cast<size_t>(layer)] =
        static_cast<int>(slots_.size());
    adapted_layers_.push_back(layer);
    LayerAdapter slot;
    slot.down = std::make_unique<tensor::Linear>(
        model_dim, options.bottleneck, &rng, /*with_bias=*/true);
    slot.up = std::make_unique<tensor::Linear>(options.bottleneck, model_dim,
                                               &rng, /*with_bias=*/true);
    // Zero-init the up-projection so a fresh stack is an exact no-op (the
    // standard adapter/LoRA trick: integration starts from the base model).
    std::fill(slot.up->weight().impl()->data.begin(),
              slot.up->weight().impl()->data.end(), 0.0f);
    slot.infuser = std::make_unique<tensor::Mlp>(
        model_dim, options.infuser_hidden, 1, &rng,
        tensor::Mlp::Activation::kTanh);
    // Default-closed gate: a layer whose internal state cannot separate
    // known from unknown should rest near r = 0 (no interference), not at
    // the sigmoid midpoint. Phase-1 training opens separable layers.
    for (tensor::NamedParameter& p : slot.infuser->NamedParameters()) {
      // Effective closed-gate logit: bias * gate_sharpness.
      if (p.name == "fc2.bias") p.tensor.data()[0] = -0.7f;
    }
    std::string prefix = "adapter" + std::to_string(layer);
    RegisterModule(prefix + ".down", slot.down.get());
    RegisterModule(prefix + ".up", slot.up.get());
    RegisterModule(prefix + ".infuser", slot.infuser.get());
    slots_.push_back(std::move(slot));
  }
}

void KnowledgeAdapterStack::BeginForward() {
  chain_ = Tensor();
  infusing_scores_.clear();
  infuser_logits_.clear();
}

bool KnowledgeAdapterStack::IsAdapted(int layer) const {
  return layer >= 0 && static_cast<size_t>(layer) < layer_to_slot_.size() &&
         layer_to_slot_[static_cast<size_t>(layer)] >= 0;
}

Tensor KnowledgeAdapterStack::FfnDelta(int layer, const Tensor& ffn_input) {
  if (options_.placement != AdapterPlacement::kFfn) return Tensor();
  return Delta(layer, ffn_input);
}

Tensor KnowledgeAdapterStack::AttnDelta(int layer,
                                        const Tensor& attn_input) {
  if (options_.placement != AdapterPlacement::kAttention) return Tensor();
  return Delta(layer, attn_input);
}

Tensor KnowledgeAdapterStack::Delta(int layer,
                                    const Tensor& sublayer_input) {
  if (!IsAdapted(layer)) return Tensor();
  const LayerAdapter& slot =
      slots_[static_cast<size_t>(layer_to_slot_[static_cast<size_t>(layer)])];

  // Eq. 1: combine previous adapter state with this sublayer's input.
  Tensor combined = chain_.defined()
                        ? tensor::Add(sublayer_input, chain_)
                        : sublayer_input;
  // Eq. 2: bottleneck projection.
  Tensor hidden = tensor::Relu(slot.down->Forward(combined));
  chain_ = slot.up->Forward(hidden);  // H_A^l, carried to the next layer

  if (!options_.use_infuser) {
    // InfuserKI-w/o-Ro: the raw adapter output merges unconditionally
    // (Eq. 3).
    return chain_;
  }

  // Eq. 4: infusing score from the mean internal state. Pooling over the
  // whole sequence is what makes the gated stack SequenceStateful().
  Tensor pooled =
      tensor::Reshape(tensor::MeanAxis0(sublayer_input), {1, model_dim_});
  Tensor logit = tensor::MulScalar(
      tensor::Reshape(slot.infuser->Forward(pooled), {1}),
      options_.gate_sharpness);
  Tensor score = tensor::Sigmoid(logit);
  infuser_logits_.push_back(logit);

  if (gate_override_ >= 0.0f) {
    // Training-time override (known-replay examples run with the gate
    // forced open so the adapter itself learns to preserve known answers).
    infusing_scores_.emplace_back(layer, gate_override_);
    return tensor::MulScalar(chain_, gate_override_);
  }
  infusing_scores_.emplace_back(layer, score.item());
  // Eq. 6 contribution: gated adapter vector.
  return tensor::Mul(chain_, score);
}

std::vector<Tensor> KnowledgeAdapterStack::AdapterParameters() const {
  std::vector<Tensor> out;
  for (const LayerAdapter& slot : slots_) {
    for (const Tensor& t : slot.down->Parameters()) out.push_back(t);
    for (const Tensor& t : slot.up->Parameters()) out.push_back(t);
  }
  return out;
}

std::vector<Tensor> KnowledgeAdapterStack::InfuserParameters() const {
  std::vector<Tensor> out;
  for (const LayerAdapter& slot : slots_) {
    for (const Tensor& t : slot.infuser->Parameters()) out.push_back(t);
  }
  return out;
}

namespace {

/// Fresh detached tensor with `t`'s shape and values (no storage sharing,
/// no autograd history): the export must stay frozen while training
/// continues on the stack.
Tensor DetachedCopy(const Tensor& t) {
  return Tensor::FromData(t.shape(), t.impl()->data);
}

}  // namespace

util::StatusOr<std::shared_ptr<model::PositionWiseAdapter>>
KnowledgeAdapterStack::ExportPositionWise() const {
  if (options_.use_infuser) {
    return util::Status::FailedPrecondition(
        "gated (use_infuser) stacks pool Mean(H_P^l) over the whole "
        "sequence and cannot be exported for position-wise serving; train "
        "with use_infuser = false (w/o-Ro) for hot-swap publication");
  }
  std::vector<model::PositionWiseAdapter::LayerWeights> layers;
  layers.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const LayerAdapter& slot = slots_[i];
    model::PositionWiseAdapter::LayerWeights weights;
    weights.layer = adapted_layers_[i];
    weights.down_weight = DetachedCopy(slot.down->weight());
    weights.down_bias = DetachedCopy(slot.down->bias());
    weights.up_weight = DetachedCopy(slot.up->weight());
    weights.up_bias = DetachedCopy(slot.up->bias());
    layers.push_back(std::move(weights));
  }
  model::AdapterAttachment attachment =
      options_.placement == AdapterPlacement::kFfn
          ? model::AdapterAttachment::kFfn
          : model::AdapterAttachment::kAttention;
  return std::make_shared<model::PositionWiseAdapter>(
      model_dim_, options_.bottleneck, attachment, std::move(layers));
}

}  // namespace infuserki::core
