#ifndef INFUSERKI_CORE_DETECTION_H_
#define INFUSERKI_CORE_DETECTION_H_

#include <vector>

#include "kg/mcq.h"
#include "model/generation.h"
#include "model/transformer.h"
#include "text/tokenizer.h"

namespace infuserki::core {

/// Result of the knowledge-detection step (§3.2, Fig. 3): the triplet
/// indices the LM answers correctly (T_known = N1+N2) and incorrectly
/// (T_unk = N3+N4).
struct DetectionResult {
  std::vector<size_t> known;
  std::vector<size_t> unknown;
  std::vector<char> is_known;  // indexed by triplet index

  double KnownFraction() const {
    return is_known.empty()
               ? 0.0
               : static_cast<double>(known.size()) /
                     static_cast<double>(is_known.size());
  }
};

/// How MCQ answers are decided during detection and evaluation.
enum class AnswerMode {
  kLikelihood,  // option-likelihood scoring (default; see DESIGN.md)
  kGeneration,  // greedy decode + regex-style extraction (paper-faithful)
};

/// Runs knowledge detection: converts every triplet into a template-T1 MCQ,
/// asks the (optionally hook-adapted) model, and splits the KG into known
/// and unknown triplets.
DetectionResult DetectKnowledge(const model::TransformerLM& lm,
                                const text::Tokenizer& tokenizer,
                                const std::vector<kg::Mcq>& questions,
                                AnswerMode mode = AnswerMode::kLikelihood,
                                const model::ForwardOptions& options = {});

/// Answers a single MCQ; returns the chosen option index (or -1 when the
/// generation path extracts nothing).
int AnswerMcq(const model::TransformerLM& lm,
              const text::Tokenizer& tokenizer, const kg::Mcq& mcq,
              AnswerMode mode = AnswerMode::kLikelihood,
              const model::ForwardOptions& options = {});

}  // namespace infuserki::core

#endif  // INFUSERKI_CORE_DETECTION_H_
