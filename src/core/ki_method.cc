#include "core/ki_method.h"

#include "util/logging.h"

namespace infuserki::core {

std::vector<model::LmExample> BuildInstructionExamples(
    const KiTrainData& data, bool include_known, bool include_yesno) {
  CHECK(data.tokenizer != nullptr);
  std::vector<model::LmExample> examples;
  for (const kg::QaSample& sample : data.unknown_qa) {
    examples.push_back(model::MakeInstructionExample(
        *data.tokenizer, sample.prompt, sample.response));
  }
  if (include_known) {
    for (const kg::QaSample& sample : data.known_qa) {
      examples.push_back(model::MakeInstructionExample(
          *data.tokenizer, sample.prompt, sample.response));
    }
  }
  if (include_yesno) {
    for (const kg::YesNoSample& sample : data.unknown_yesno) {
      examples.push_back(model::MakeInstructionExample(
          *data.tokenizer, sample.prompt, sample.answer ? "yes" : "no"));
    }
  }
  return examples;
}

}  // namespace infuserki::core
