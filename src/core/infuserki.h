#ifndef INFUSERKI_CORE_INFUSERKI_H_
#define INFUSERKI_CORE_INFUSERKI_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adapter_stack.h"
#include "core/ki_method.h"
#include "tensor/nn.h"

namespace infuserki::core {

/// Hyperparameters of the InfuserKI training recipe (Eq. 7 and §4.1).
struct InfuserKiOptions {
  AdapterStackOptions adapters;

  /// Phase 1 (Infuser tuning on balanced known/unknown, Eq. 5). Disabled =
  /// ablation InfuserKI-w/o-RL.
  bool infuser_pretrain = true;

  /// Phase 3 relation-classification loss (Eq. 9). Disabled = ablation
  /// InfuserKI-w/o-RC (the phase still runs the next-token loss, Eq. 10).
  bool use_rc = true;

  /// Run known-replay QA samples with the gate forced open so the adapter
  /// learns to preserve known answers (see DESIGN.md "Simulator-scale
  /// adaptations"). Disable to study the pure-gate design.
  bool replay_open_gate = true;

  size_t rc_dim = 32;  // shared space of f1^R / f2^R
  float tau = 0.7f;    // InfoNCE temperature (paper: 0.7)

  /// RC loss weight. The paper uses 10 at LLaMa scale; with our loss
  /// magnitudes that lets the RC gradient overwhelm and erase the QA phase,
  /// so the simulator default is 1 (documented in DESIGN.md).
  float lambda_rc = 1.0f;

  float lr = 1e-2f;
  /// The RC phase runs at lr * rc_lr_scale: it refines representations and
  /// must not undo the QA memorization that precedes it.
  float rc_lr_scale = 0.15f;
  size_t batch_size = 8;  // paper: 8
  size_t infuser_epochs = 40;
  size_t qa_epochs = 100;
  size_t rc_epochs = 4;
  uint64_t seed = 5;
};

/// Finds the first occurrence of `needle` in `haystack`; returns the start
/// index or -1. Used to locate entity mentions inside tokenized knowledge
/// statements for RC pooling.
int FindSubsequence(const std::vector<int>& haystack,
                    const std::vector<int>& needle);

/// The Infuser-guided Knowledge Integration method (the paper's
/// contribution): knowledge adapters parallel to the last-M FFN layers with
/// an internal-state gate, trained in three phases — Infuser tuning, QA
/// training, and RC training (Algorithm 1).
class InfuserKi : public KiMethod {
 public:
  /// `lm` must outlive this object; its parameters stay frozen (the method
  /// only trains the adapters, Infusers, and RC heads).
  InfuserKi(model::TransformerLM* lm, const InfuserKiOptions& options);

  std::string name() const override { return "InfuserKI"; }
  void Train(const KiTrainData& data) override;
  model::ForwardOptions Forward() override;
  size_t NumTrainableParameters() const override;

  KnowledgeAdapterStack& stack() { return stack_; }
  const InfuserKiOptions& options() const { return options_; }

  /// Mean losses of the three phases after Train() (diagnostics).
  float infuser_loss() const { return infuser_loss_; }
  float qa_loss() const { return qa_loss_; }
  float rc_loss() const { return rc_loss_; }

 private:
  void TrainInfuser(const KiTrainData& data);
  void TrainQa(const KiTrainData& data);
  void TrainRc(const KiTrainData& data);

  model::TransformerLM* lm_;
  InfuserKiOptions options_;
  KnowledgeAdapterStack stack_;
  std::unique_ptr<tensor::Linear> rc_proj_;       // f1^R: [2D -> rc_dim]
  std::unique_ptr<tensor::Embedding> rc_rel_emb_;  // f2^R: [#rel, rc_dim]
  float infuser_loss_ = 0.0f;
  float qa_loss_ = 0.0f;
  float rc_loss_ = 0.0f;
};

}  // namespace infuserki::core

#endif  // INFUSERKI_CORE_INFUSERKI_H_
