#ifndef INFUSERKI_CORE_KI_METHOD_H_
#define INFUSERKI_CORE_KI_METHOD_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "model/hooks.h"
#include "model/trainer.h"
#include "model/transformer.h"
#include "text/tokenizer.h"

namespace infuserki::core {

/// The training material handed to every knowledge-integration method.
///
/// Mirrors the experimental protocol of §4.1: all methods receive QA samples
/// for the unknown triplets (seen templates T1/T2) plus the same modest mix
/// of known-triplet samples "to ensure fairness"; InfuserKI additionally
/// consumes the knowledge statements for its RC phase and the known samples
/// for Infuser tuning.
struct KiTrainData {
  const text::Tokenizer* tokenizer = nullptr;
  const kg::KnowledgeGraph* kg = nullptr;

  /// QA samples for unknown triplets, templates T1 and T2.
  std::vector<kg::QaSample> unknown_qa;

  /// QA samples for a sample of known triplets (replay / Infuser negatives).
  std::vector<kg::QaSample> known_qa;

  /// A small set of yes/no samples for unknown triplets (the paper mixes
  /// these in "to enhance the model generality to various question types").
  std::vector<kg::YesNoSample> unknown_yesno;

  /// Knowledge statements for unknown triplets (RC + NTL phase inputs).
  std::vector<kg::StatementSample> unknown_statements;
};

/// Converts KiTrainData into instruction-tuning examples: unknown QA,
/// optionally the known-sample mix, optionally the yes/no samples. Shared
/// by InfuserKI's QA phase and every baseline.
std::vector<model::LmExample> BuildInstructionExamples(
    const KiTrainData& data, bool include_known, bool include_yesno);

/// A knowledge-integration method under test: it owns whatever trainable
/// modules it adds, trains them from KiTrainData against a frozen (or, for
/// full fine-tuning, unfrozen) base model, and exposes the ForwardOptions
/// that activate it at inference time.
class KiMethod {
 public:
  virtual ~KiMethod() = default;

  /// Display name used in result tables (e.g. "LoRA", "InfuserKI").
  virtual std::string name() const = 0;

  /// Runs the method's full training recipe.
  virtual void Train(const KiTrainData& data) = 0;

  /// Forward configuration that applies the integrated knowledge. The
  /// returned hooks point into this object; it must outlive their use.
  virtual model::ForwardOptions Forward() = 0;

  /// Number of scalars this method trains (the paper reports ~2.5M extra
  /// parameters for InfuserKI on LLaMa-2-7B).
  virtual size_t NumTrainableParameters() const = 0;
};

}  // namespace infuserki::core

#endif  // INFUSERKI_CORE_KI_METHOD_H_
