#ifndef INFUSERKI_CORE_ADAPTER_STACK_H_
#define INFUSERKI_CORE_ADAPTER_STACK_H_

#include <memory>
#include <vector>

#include "model/hooks.h"
#include "model/serve_adapter.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace infuserki::core {

/// Where the adapters attach (Fig. 5 ablation).
enum class AdapterPlacement {
  kFfn,        // parallel to FFN sublayers (the paper's main design)
  kAttention,  // parallel to attention sublayers
};

/// Configuration of the knowledge-adapter chain.
struct AdapterStackOptions {
  int first_layer = 1;   // 0-based first adapted layer (paper: 3rd of 32)
  int last_layer = -1;   // inclusive; -1 = deepest layer
  /// d'. The paper uses 10 at d=4096; the simulator's memorization burden
  /// per hidden unit is far higher, so the default scales up.
  size_t bottleneck = 96;
  AdapterPlacement placement = AdapterPlacement::kFfn;
  bool use_infuser = true;   // false = InfuserKI-w/o-Ro (delta always added)
  size_t infuser_hidden = 32;
  /// Slope of the gate sigmoid: r = sigmoid(sharpness * f_In(.)). Values
  /// above 1 make the gate more decisive, driving leakage on known inputs
  /// toward zero; part of the f_In parameterization (Eq. 4).
  float gate_sharpness = 3.0f;
  uint64_t seed = 31;
};

/// The Infuser-guided knowledge adapter chain (§3.3, Fig. 4).
///
/// For each adapted layer l:
///   H~_A^l = H_A^{l-1} + H_P^l                      (Eq. 1)
///   H_A^l  = relu(H~_A^l W_down) W_up               (Eq. 2)
///   r^l    = sigmoid(f_In(Mean(H_P^l)))             (Eq. 4)
///   delta  = r^l * H_A^l                            (Eq. 6 contribution)
/// The chain state H_A^{l-1} starts at zero (Eq. 1 note) and flows through
/// adapted layers only. One Infuser MLP per adapted layer scores how well
/// the base model "knows" the current input from its internal state H_P^l.
///
/// The same object serves as an FfnHook or an AttnHook depending on
/// `placement`; the transformer calls exactly one of the two entry points
/// per sublayer.
class KnowledgeAdapterStack : public model::FfnHook,
                              public model::AttnHook,
                              public tensor::Module {
 public:
  KnowledgeAdapterStack(size_t model_dim, size_t num_layers,
                        const AdapterStackOptions& options);

  // model::FfnHook / model::AttnHook:
  void BeginForward() override;
  /// The Infuser gate pools Mean(H_P^l) over every position of the forward
  /// (Eq. 4), so the gated stack is sequence-stateful: its full-sequence
  /// forward is non-causal and the generation layer must use the
  /// full-recompute path for it. Without the Infuser (w/o-Ro ablation) the
  /// delta is row-wise and KV-cached decoding applies.
  bool SequenceStateful() const override { return options_.use_infuser; }
  tensor::Tensor FfnDelta(int layer, const tensor::Tensor& ffn_input) override;
  tensor::Tensor AttnDelta(int layer,
                           const tensor::Tensor& attn_input) override;

  /// True when `layer` carries an adapter.
  bool IsAdapted(int layer) const;

  /// Per-forward infusing scores r^l (post-sigmoid floats) keyed by layer
  /// index, in the order the adapted layers ran. Valid after a forward.
  const std::vector<std::pair<int, float>>& infusing_scores() const {
    return infusing_scores_;
  }

  /// Pre-sigmoid Infuser logits of the current forward as graph tensors
  /// (shape {1} each), for the Infuser BCE loss (Eq. 5).
  const std::vector<tensor::Tensor>& infuser_logits() const {
    return infuser_logits_;
  }

  /// Final adapter output H_A^L of the current forward, [T, D]; used for
  /// relation-classification pooling (Eq. 9). Undefined before a forward.
  const tensor::Tensor& last_adapter_output() const { return chain_; }

  /// Training-time gate override: values >= 0 replace the Infuser score
  /// with a constant for subsequent forwards; negative restores normal
  /// gating. Used by the QA phase to run known-replay samples with the
  /// gate forced open so the adapter learns to be harmless on them.
  void set_gate_override(float value) { gate_override_ = value; }
  float gate_override() const { return gate_override_; }

  /// Parameters of the adapters only (no Infusers).
  std::vector<tensor::Tensor> AdapterParameters() const;

  /// Parameters of the Infuser MLPs only.
  std::vector<tensor::Tensor> InfuserParameters() const;

  /// Deep-copies the adapter weights into an immutable
  /// model::PositionWiseAdapter for publication into a live server
  /// (DESIGN.md §12). Only the ungated (use_infuser = false, w/o-Ro) form
  /// is position-wise; exporting a gated stack returns kFailedPrecondition
  /// because its Mean(H_P^l) pooling cannot take the KV-cached or batched
  /// serving paths. The export shares no storage with the stack, so
  /// training may continue while the snapshot serves.
  util::StatusOr<std::shared_ptr<model::PositionWiseAdapter>>
  ExportPositionWise() const;

  const AdapterStackOptions& options() const { return options_; }

 private:
  tensor::Tensor Delta(int layer, const tensor::Tensor& sublayer_input);

  struct LayerAdapter {
    std::unique_ptr<tensor::Linear> down;  // [d -> d']
    std::unique_ptr<tensor::Linear> up;    // [d' -> d]
    std::unique_ptr<tensor::Mlp> infuser;  // f_In: [d -> hidden -> 1]
  };

  AdapterStackOptions options_;
  size_t model_dim_;
  std::vector<int> adapted_layers_;          // ascending layer indices
  std::vector<int> layer_to_slot_;           // -1 when not adapted
  std::vector<LayerAdapter> slots_;
  tensor::Tensor chain_;                     // H_A^{l-1} (graph tensor)
  float gate_override_ = -1.0f;
  std::vector<std::pair<int, float>> infusing_scores_;
  std::vector<tensor::Tensor> infuser_logits_;
};

}  // namespace infuserki::core

#endif  // INFUSERKI_CORE_ADAPTER_STACK_H_
