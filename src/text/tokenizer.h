#ifndef INFUSERKI_TEXT_TOKENIZER_H_
#define INFUSERKI_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace infuserki::text {

/// Special token ids. Fixed so checkpoints stay compatible.
inline constexpr int kPadId = 0;
inline constexpr int kBosId = 1;
inline constexpr int kEosId = 2;
inline constexpr int kUnkId = 3;

/// Splits raw text into surface tokens: lower-cased alphanumeric runs and
/// single punctuation characters. Whitespace separates tokens.
std::vector<std::string> BasicTokenize(std::string_view text);

/// Word-level tokenizer with a frozen vocabulary.
///
/// The substitute for a byte-pair-encoded LLaMa tokenizer: at simulator
/// scale every surface word the synthetic KG can produce is enumerable, so a
/// closed word vocabulary loses nothing while keeping sequences short.
class Tokenizer {
 public:
  Tokenizer();

  /// Builds a vocabulary over `corpus` keeping words with at least
  /// `min_count` occurrences (rarer words map to <unk>).
  static Tokenizer Build(const std::vector<std::string>& corpus,
                         int min_count = 1);

  /// Adds a word if absent; returns its id. Only valid before freezing into
  /// a model (vocabulary size feeds the embedding table size).
  int AddWord(const std::string& word);

  /// Encodes text to ids; unknown words map to <unk>.
  std::vector<int> Encode(std::string_view text) const;

  /// Encodes with <bos> prepended and optionally <eos> appended.
  std::vector<int> EncodeWithSpecials(std::string_view text,
                                      bool add_eos) const;

  /// Joins tokens with single spaces; specials are skipped. An out-of-range
  /// id (negative or >= vocab_size) returns kOutOfRange naming the id and
  /// position — malformed request input must surface as a per-request error
  /// a serving layer can reject, never a process abort (DESIGN.md §10).
  util::StatusOr<std::string> Decode(const std::vector<int>& ids) const;

  /// Id for `word` or kUnkId.
  int WordId(const std::string& word) const;

  /// True when `word` is in the vocabulary.
  bool HasWord(const std::string& word) const;

  /// Surface form for `id`; out-of-range ids map to the <unk> surface (the
  /// same total-function contract as encoding unknown words).
  const std::string& IdToWord(int id) const;

  size_t vocab_size() const { return id_to_word_.size(); }

  /// Checkpoint I/O (the model cache stores the tokenizer next to weights).
  void Serialize(util::BinaryWriter* writer) const;
  static util::StatusOr<Tokenizer> Deserialize(util::BinaryReader* reader);

 private:
  std::unordered_map<std::string, int> word_to_id_;
  std::vector<std::string> id_to_word_;
};

}  // namespace infuserki::text

#endif  // INFUSERKI_TEXT_TOKENIZER_H_
