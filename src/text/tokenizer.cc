#include "text/tokenizer.h"

#include <cctype>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace infuserki::text {

std::vector<std::string> BasicTokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      flush();
    } else if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
      tokens.push_back(std::string(1, raw));
    }
  }
  flush();
  return tokens;
}

Tokenizer::Tokenizer() {
  id_to_word_ = {"<pad>", "<bos>", "<eos>", "<unk>"};
  for (size_t i = 0; i < id_to_word_.size(); ++i) {
    word_to_id_[id_to_word_[i]] = static_cast<int>(i);
  }
}

Tokenizer Tokenizer::Build(const std::vector<std::string>& corpus,
                           int min_count) {
  // std::map gives deterministic iteration order, hence deterministic ids.
  std::map<std::string, int> counts;
  for (const std::string& doc : corpus) {
    for (const std::string& token : BasicTokenize(doc)) {
      ++counts[token];
    }
  }
  Tokenizer tokenizer;
  for (const auto& [word, count] : counts) {
    if (count >= min_count) tokenizer.AddWord(word);
  }
  return tokenizer;
}

int Tokenizer::AddWord(const std::string& word) {
  auto it = word_to_id_.find(word);
  if (it != word_to_id_.end()) return it->second;
  int id = static_cast<int>(id_to_word_.size());
  id_to_word_.push_back(word);
  word_to_id_[word] = id;
  return id;
}

std::vector<int> Tokenizer::Encode(std::string_view text) const {
  std::vector<int> ids;
  for (const std::string& token : BasicTokenize(text)) {
    auto it = word_to_id_.find(token);
    ids.push_back(it == word_to_id_.end() ? kUnkId : it->second);
  }
  return ids;
}

std::vector<int> Tokenizer::EncodeWithSpecials(std::string_view text,
                                               bool add_eos) const {
  std::vector<int> ids;
  ids.push_back(kBosId);
  std::vector<int> body = Encode(text);
  ids.insert(ids.end(), body.begin(), body.end());
  if (add_eos) ids.push_back(kEosId);
  return ids;
}

util::StatusOr<std::string> Tokenizer::Decode(
    const std::vector<int>& ids) const {
  std::vector<std::string> words;
  for (size_t i = 0; i < ids.size(); ++i) {
    int id = ids[i];
    if (id == kPadId || id == kBosId || id == kEosId) continue;
    if (id < 0 || static_cast<size_t>(id) >= id_to_word_.size()) {
      return util::Status::OutOfRange(
          "token id " + std::to_string(id) + " at position " +
          std::to_string(i) + " outside vocabulary of " +
          std::to_string(id_to_word_.size()));
    }
    words.push_back(id_to_word_[static_cast<size_t>(id)]);
  }
  return util::Join(words, " ");
}

int Tokenizer::WordId(const std::string& word) const {
  auto it = word_to_id_.find(word);
  return it == word_to_id_.end() ? kUnkId : it->second;
}

bool Tokenizer::HasWord(const std::string& word) const {
  return word_to_id_.count(word) > 0;
}

const std::string& Tokenizer::IdToWord(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= id_to_word_.size()) {
    return id_to_word_[kUnkId];
  }
  return id_to_word_[static_cast<size_t>(id)];
}

void Tokenizer::Serialize(util::BinaryWriter* writer) const {
  writer->WriteU64(id_to_word_.size());
  for (const std::string& word : id_to_word_) {
    writer->WriteString(word);
  }
}

util::StatusOr<Tokenizer> Tokenizer::Deserialize(
    util::BinaryReader* reader) {
  uint64_t size = reader->ReadU64();
  if (!reader->ok() || size < 4 || size > (1ull << 28)) {
    return util::Status::DataLoss("corrupt tokenizer in " + reader->path());
  }
  Tokenizer tokenizer;
  for (uint64_t i = 0; i < size; ++i) {
    std::string word = reader->ReadString();
    if (!reader->ok()) {
      return util::Status::DataLoss("truncated tokenizer in " +
                                    reader->path());
    }
    if (i < 4) continue;  // specials are fixed by the constructor
    tokenizer.AddWord(word);
  }
  return tokenizer;
}

}  // namespace infuserki::text
