#ifndef INFUSERKI_EVAL_METRICS_H_
#define INFUSERKI_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace infuserki::eval {

/// Accuracy over single-label predictions. For one-prediction-per-sample
/// multiple choice this equals micro-F1, which is how the paper's
/// F1_T1..F1_T5 columns are computed here.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

/// Macro-F1 over the two classes of a binary task (the downstream yes/no
/// metric). Predictions/labels are 0/1.
double BinaryMacroF1(const std::vector<int>& predictions,
                     const std::vector<int>& labels);

/// Mean of a 0/1 outcome vector; used for NR and RR.
double MeanRate(const std::vector<char>& outcomes);

}  // namespace infuserki::eval

#endif  // INFUSERKI_EVAL_METRICS_H_
