#include "eval/experiment.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "eval/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace infuserki::eval {
namespace {

/// Deterministically samples at most `cap` elements of `indices`.
std::vector<size_t> CapSample(std::vector<size_t> indices, size_t cap,
                              util::Rng* rng) {
  if (indices.size() <= cap) return indices;
  rng->Shuffle(&indices);
  indices.resize(cap);
  return indices;
}

}  // namespace

Experiment::Experiment(const ExperimentConfig& config) : config_(config) {}

void Experiment::Setup() {
  OBS_SPAN("experiment/setup");
  util::Stopwatch watch;
  {
    OBS_SPAN("experiment/kg_build");
    kg::SynthOptions synth;
    synth.num_triplets = config_.num_triplets;
    synth.seed = config_.seed;
    kg_ = config_.domain == ExperimentConfig::Domain::kUmls
              ? kg::SyntheticUmls(synth)
              : kg::SyntheticMetaQa(synth);
    dataset_ = std::make_unique<kg::DatasetBuilder>(&kg_, &templates_);
  }
  LOG_INFO << "experiment KG: " << kg_.num_triplets() << " triplets, "
           << kg_.num_entities() << " entities, " << kg_.num_relations()
           << " relations (built in " << watch.Lap() << "s)";
  BuildCorpusAndPretrain();
  double pretrain_seconds = watch.Lap();
  RunDetection();
  double detection_seconds = watch.Lap();
  BuildEvalSets();
  LOG_INFO << "experiment setup phases: pretrain " << pretrain_seconds
           << "s, detection " << detection_seconds << "s, eval-set freeze "
           << watch.Lap() << "s";
}

void Experiment::BuildCorpusAndPretrain() {
  OBS_SPAN("experiment/pretrain");
  util::Rng rng(config_.seed + 1);
  size_t subset_size = static_cast<size_t>(
      static_cast<double>(kg_.num_triplets()) * config_.pretrain_fraction);
  pretrain_subset_ = rng.SampleIndices(kg_.num_triplets(), subset_size);

  model::PretrainSpec spec;
  spec.arch = config_.arch;
  spec.steps = config_.pretrain_steps;
  spec.batch_size = config_.pretrain_batch;
  spec.lr = config_.pretrain_lr;
  spec.seed = config_.seed + 2;
  spec.cache_dir = config_.cache_dir;
  spec.checkpoint_dir = config_.checkpoint_dir;
  spec.checkpoint_every_n_steps = config_.checkpoint_every;
  spec.checkpoint_keep_last = config_.checkpoint_keep_last;
  spec.resume = config_.resume;

  // Facts the base model is supposed to know: seen-template QA,
  // statements, yes/no. A slice of the subset also appears under the
  // "unseen" templates T3..T5 — the real LLaMa has seen every phrasing
  // style in pretraining, and without this no method (or the vanilla
  // model) could answer reworded questions at word-level-simulator scale.
  util::Rng mcq_rng(config_.seed + 3);
  for (int template_id = 1; template_id <= kg::kNumTemplates;
       ++template_id) {
    std::vector<size_t> subset = pretrain_subset_;
    if (template_id > kg::kNumSeenTemplates) {
      subset.resize(subset.size() / 2);
    }
    for (const kg::QaSample& sample :
         dataset_->BuildQa(subset, template_id, &mcq_rng)) {
      spec.instruction_docs.emplace_back(sample.prompt, sample.response);
    }
  }
  for (const kg::StatementSample& statement :
       dataset_->BuildStatements(pretrain_subset_)) {
    spec.plain_docs.push_back(statement.text);
  }
  for (const kg::YesNoSample& sample :
       dataset_->BuildYesNo(pretrain_subset_, &mcq_rng)) {
    spec.instruction_docs.emplace_back(sample.prompt,
                                       sample.answer ? "yes" : "no");
  }
  for (std::string& filler :
       kg::FillerSentences(config_.filler_count, &rng)) {
    spec.plain_docs.push_back(std::move(filler));
  }

  // Vocabulary coverage for text never trained on: every statement and
  // every template phrasing of every triplet, plus task boilerplate.
  std::vector<size_t> all(kg_.num_triplets());
  std::iota(all.begin(), all.end(), 0);
  for (const kg::StatementSample& statement :
       dataset_->BuildStatements(all)) {
    spec.extra_vocab_docs.push_back(statement.text);
  }
  for (size_t index : all) {
    const kg::Triplet& triplet = kg_.triplets()[index];
    for (int t = 1; t <= kg::kNumTemplates; ++t) {
      spec.extra_vocab_docs.push_back(
          templates_.Question(kg_, triplet, t));
    }
    spec.extra_vocab_docs.push_back(templates_.YesNoQuestion(kg_, triplet));
  }
  spec.extra_vocab_docs.push_back(
      "question options answer yes no maybe it is claimed that is this "
      "claim true below is an instruction that describes a task . write a "
      "response that appropriately completes the request . ### instruction "
      ": ### response : ( a ) ( b ) ( c ) ( d )");

  base_ = model::PretrainOrLoad(spec);
}

void Experiment::RunDetection() {
  OBS_SPAN("experiment/detection");
  util::Rng rng(config_.seed + 4);
  kg::McqBuilder builder(&kg_, &templates_);
  std::vector<kg::Mcq> questions =
      builder.BuildAll(/*template_id=*/1, &rng);
  detection_ = core::DetectKnowledge(*base_.lm, base_.tokenizer, questions);
  LOG_INFO << "knowledge detection: " << detection_.known.size()
           << " known / " << detection_.unknown.size() << " unknown ("
           << detection_.KnownFraction() << " known fraction)";
  CHECK(!detection_.unknown.empty())
      << "base model answered everything; increase num_triplets or lower "
         "pretrain_fraction";
  CHECK(!detection_.known.empty())
      << "base model knows nothing; raise pretrain_steps";
}

void Experiment::BuildEvalSets() {
  OBS_SPAN("experiment/eval_freeze");
  util::Rng rng(config_.seed + 5);
  kg::McqBuilder builder(&kg_, &templates_);

  auto build_set = [&](const std::vector<size_t>& indices, int template_id) {
    std::vector<kg::Mcq> set;
    set.reserve(indices.size());
    for (size_t index : indices) {
      set.push_back(builder.Build(index, template_id, &rng));
    }
    return set;
  };

  nr_set_ = build_set(CapSample(detection_.unknown, config_.eval_cap, &rng),
                      /*template_id=*/1);
  rr_set_ = build_set(CapSample(detection_.known, config_.eval_cap, &rng),
                      /*template_id=*/1);

  std::vector<size_t> all(kg_.num_triplets());
  std::iota(all.begin(), all.end(), 0);
  std::vector<size_t> f1_sample = CapSample(all, config_.eval_cap, &rng);
  for (int template_id = 1; template_id <= kg::kNumTemplates;
       ++template_id) {
    template_sets_[static_cast<size_t>(template_id - 1)] =
        build_set(f1_sample, template_id);
  }

  std::vector<size_t> downstream_sample =
      CapSample(all, config_.downstream_cap, &rng);
  if (config_.domain == ExperimentConfig::Domain::kUmls) {
    claim_items_ = BuildClaimVerificationTask(kg_, templates_,
                                              downstream_sample, &rng);
  } else {
    onehop_items_ = Build1HopTask(kg_, templates_, downstream_sample,
                                  config_.onehop_candidates, &rng);
  }
}

std::unique_ptr<model::TransformerLM> Experiment::CloneBaseModel() const {
  CHECK(base_.lm != nullptr) << "Setup() not called";
  model::TransformerConfig arch = base_.lm->config();
  util::Rng rng(config_.seed + 6);
  auto clone = std::make_unique<model::TransformerLM>(arch, &rng);
  std::vector<tensor::NamedParameter> source = base_.lm->NamedParameters();
  std::vector<tensor::NamedParameter> target = clone->NamedParameters();
  CHECK_EQ(source.size(), target.size());
  for (size_t i = 0; i < source.size(); ++i) {
    CHECK(source[i].name == target[i].name);
    CHECK(source[i].tensor.shape() == target[i].tensor.shape());
    std::memcpy(target[i].tensor.data(), source[i].tensor.data(),
                source[i].tensor.size() * sizeof(float));
  }
  // Base model parameters are frozen by default; full fine-tuning opts back
  // in explicitly.
  clone->SetTrainable(false);
  return clone;
}

core::KiTrainData Experiment::BuildTrainData(uint64_t seed_offset) const {
  util::Rng rng(config_.seed + 7 + seed_offset);
  core::KiTrainData data;
  data.tokenizer = &base_.tokenizer;
  data.kg = &kg_;
  for (int template_id = 1; template_id <= kg::kNumSeenTemplates;
       ++template_id) {
    for (kg::QaSample& sample :
         dataset_->BuildQa(detection_.unknown, template_id, &rng)) {
      data.unknown_qa.push_back(std::move(sample));
    }
  }
  std::vector<size_t> known_mix =
      CapSample(detection_.known, config_.known_mix_count, &rng);
  // Both seen templates, mirroring the unknown side: the Infuser must
  // recognize known knowledge across phrasings, not one fixed surface.
  for (int template_id = 1; template_id <= kg::kNumSeenTemplates;
       ++template_id) {
    for (kg::QaSample& sample :
         dataset_->BuildQa(known_mix, template_id, &rng)) {
      data.known_qa.push_back(std::move(sample));
    }
  }
  std::vector<size_t> yesno_sample =
      CapSample(detection_.unknown, config_.yesno_count, &rng);
  data.unknown_yesno = dataset_->BuildYesNo(yesno_sample, &rng);
  data.unknown_statements = dataset_->BuildStatements(detection_.unknown);
  return data;
}

MethodScores Experiment::EvaluateVanilla() const {
  MethodScores scores = EvaluateMethod("Vanilla", *base_.lm, {});
  scores.has_nr_rr = false;
  scores.trainable_params = 0;
  return scores;
}

MethodScores Experiment::EvaluateMethod(
    const std::string& name, const model::TransformerLM& lm,
    const model::ForwardOptions& forward) const {
  obs::ScopedSpan span("method/" + name + "/eval");
  MethodScores scores;
  scores.method = name;

  // Questions are independent; fan out across the pool when the forward
  // carries no mutable per-forward state (hooks serialize — they are
  // mutated during each forward).
  bool stateless = forward.ffn_hook == nullptr &&
                   forward.attn_hook == nullptr && forward.trace == nullptr;
  auto mcq_accuracy = [&](const std::vector<kg::Mcq>& set) {
    if (set.empty()) return 0.0;
    std::vector<char> outcomes(set.size(), 0);
    auto answer_one = [&](size_t i) {
      int chosen =
          core::AnswerMcq(lm, base_.tokenizer, set[i],
                          core::AnswerMode::kLikelihood, forward);
      outcomes[i] = chosen == set[i].correct ? 1 : 0;
    };
    if (stateless) {
      util::ParallelForEach(set.size(), answer_one);
    } else {
      for (size_t i = 0; i < set.size(); ++i) answer_one(i);
    }
    return MeanRate(outcomes);
  };

  scores.nr = mcq_accuracy(nr_set_);
  scores.rr = mcq_accuracy(rr_set_);
  double unseen_total = 0.0;
  for (int template_id = 1; template_id <= kg::kNumTemplates;
       ++template_id) {
    double accuracy =
        mcq_accuracy(template_sets_[static_cast<size_t>(template_id - 1)]);
    scores.f1[static_cast<size_t>(template_id - 1)] = accuracy;
    if (template_id > kg::kNumSeenTemplates) unseen_total += accuracy;
  }
  scores.f1_unseen =
      unseen_total /
      static_cast<double>(kg::kNumTemplates - kg::kNumSeenTemplates);

  if (config_.domain == ExperimentConfig::Domain::kUmls) {
    scores.downstream =
        EvaluateClaimTask(lm, base_.tokenizer, claim_items_, forward);
  } else {
    scores.downstream =
        Evaluate1HopTask(lm, base_.tokenizer, onehop_items_, forward);
  }
  return scores;
}

const std::vector<kg::Mcq>& Experiment::template_set(int template_id) const {
  CHECK_GE(template_id, 1);
  CHECK_LE(template_id, kg::kNumTemplates);
  return template_sets_[static_cast<size_t>(template_id - 1)];
}

}  // namespace infuserki::eval
