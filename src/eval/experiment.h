#ifndef INFUSERKI_EVAL_EXPERIMENT_H_
#define INFUSERKI_EVAL_EXPERIMENT_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/detection.h"
#include "core/ki_method.h"
#include "eval/downstream.h"
#include "kg/dataset.h"
#include "kg/synth.h"
#include "model/pretrain.h"

namespace infuserki::eval {

/// Full configuration of one experimental environment (one KG + one base
/// model + the shared evaluation sets). Bench binaries build one Experiment
/// and run every method against it.
struct ExperimentConfig {
  enum class Domain { kUmls, kMetaQa };

  Domain domain = Domain::kUmls;
  size_t num_triplets = 240;
  uint64_t seed = 17;

  /// Fraction of triplets woven into the base model's pretraining corpus
  /// (the facts the vanilla model is supposed to "know").
  double pretrain_fraction = 0.55;

  model::TransformerConfig arch;
  size_t pretrain_steps = 2400;
  size_t pretrain_batch = 8;
  float pretrain_lr = 3e-3f;
  std::string cache_dir = "model_cache";

  /// Mid-run durability for the pretraining phase (see model/train_state.h):
  /// snapshot every N steps into `checkpoint_dir` and resume after a crash.
  /// Empty directory or zero interval disables.
  std::string checkpoint_dir;
  size_t checkpoint_every = 0;
  size_t checkpoint_keep_last = 2;
  bool resume = true;

  size_t filler_count = 120;     // generic prose docs in pretraining
  size_t known_mix_count = 40;   // known QA replay given to every method
  size_t yesno_count = 40;       // unknown yes/no samples in training

  size_t eval_cap = 150;         // max MCQs per metric set
  size_t downstream_cap = 120;   // max downstream items
  size_t onehop_candidates = 10;
};

/// One row of a paper-style results table.
struct MethodScores {
  std::string method;
  bool has_nr_rr = true;  // the vanilla row has no NR/RR (nothing trained)
  double nr = 0.0;
  double rr = 0.0;
  std::array<double, kg::kNumTemplates> f1 = {};
  double f1_unseen = 0.0;
  double downstream = 0.0;
  size_t trainable_params = 0;
  double train_seconds = 0.0;
};

/// The experimental environment of §4.1: builds the synthetic KG, pretrains
/// (or cache-loads) the base LM on the known-fraction corpus, runs knowledge
/// detection, and freezes the evaluation sets so every method is scored on
/// identical questions.
class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  /// Builds everything. Call once before anything else.
  void Setup();

  const ExperimentConfig& config() const { return config_; }
  const kg::KnowledgeGraph& kg() const { return kg_; }
  const kg::TemplateEngine& templates() const { return templates_; }
  const text::Tokenizer& tokenizer() const { return base_.tokenizer; }
  const core::DetectionResult& detection() const { return detection_; }

  /// The master pretrained model. Methods must not mutate it — use
  /// CloneBaseModel() for anything that trains or quantizes.
  const model::TransformerLM& base_lm() const { return *base_.lm; }

  /// Deep copy of the pretrained base model (fresh parameters tensors).
  std::unique_ptr<model::TransformerLM> CloneBaseModel() const;

  /// Training material per the shared protocol (unknown QA T1/T2, known
  /// replay mix, unknown yes/no, unknown statements).
  core::KiTrainData BuildTrainData(uint64_t seed_offset = 0) const;

  /// Scores the untouched base model (the table's vanilla row).
  MethodScores EvaluateVanilla() const;

  /// Scores an adapted model under `forward`.
  MethodScores EvaluateMethod(const std::string& name,
                              const model::TransformerLM& lm,
                              const model::ForwardOptions& forward) const;

  /// The frozen evaluation MCQ sets (exposed for analysis benches).
  const std::vector<kg::Mcq>& nr_set() const { return nr_set_; }
  const std::vector<kg::Mcq>& rr_set() const { return rr_set_; }
  const std::vector<kg::Mcq>& template_set(int template_id) const;

 private:
  void BuildCorpusAndPretrain();
  void RunDetection();
  void BuildEvalSets();

  ExperimentConfig config_;
  kg::KnowledgeGraph kg_;
  kg::TemplateEngine templates_;
  std::unique_ptr<kg::DatasetBuilder> dataset_;
  model::PretrainedModel base_;
  std::vector<size_t> pretrain_subset_;  // triplets woven into pretraining
  core::DetectionResult detection_;

  std::vector<kg::Mcq> nr_set_;                       // unknown triplets, T1
  std::vector<kg::Mcq> rr_set_;                       // known triplets, T1
  std::array<std::vector<kg::Mcq>, kg::kNumTemplates> template_sets_;
  std::vector<ClaimItem> claim_items_;                // UMLS downstream
  std::vector<OneHopItem> onehop_items_;              // MetaQA downstream
};

}  // namespace infuserki::eval

#endif  // INFUSERKI_EVAL_EXPERIMENT_H_
