#include "eval/metrics.h"

#include "util/logging.h"

namespace infuserki::eval {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  CHECK_EQ(predictions.size(), labels.size());
  CHECK(!predictions.empty());
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

double BinaryMacroF1(const std::vector<int>& predictions,
                     const std::vector<int>& labels) {
  CHECK_EQ(predictions.size(), labels.size());
  CHECK(!predictions.empty());
  double f1_sum = 0.0;
  for (int cls = 0; cls <= 1; ++cls) {
    size_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < predictions.size(); ++i) {
      bool predicted = predictions[i] == cls;
      bool actual = labels[i] == cls;
      if (predicted && actual) ++tp;
      if (predicted && !actual) ++fp;
      if (!predicted && actual) ++fn;
    }
    double denom = static_cast<double>(2 * tp + fp + fn);
    f1_sum += denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
  }
  return f1_sum / 2.0;
}

double MeanRate(const std::vector<char>& outcomes) {
  if (outcomes.empty()) return 0.0;
  size_t hits = 0;
  for (char outcome : outcomes) {
    if (outcome) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(outcomes.size());
}

}  // namespace infuserki::eval
