#include "eval/downstream.h"

#include <algorithm>

#include "eval/metrics.h"
#include "model/generation.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace infuserki::eval {
namespace {

/// Runs `fn(i)` for i in [0, n), fanning out across the global pool when
/// the forward carries no mutable per-forward state (hooks are mutated
/// during a forward and must serialize; the read-only prefix is safe).
void ForEachItem(size_t n, const model::ForwardOptions& options,
                 const std::function<void(size_t)>& fn) {
  bool stateless = options.ffn_hook == nullptr &&
                   options.attn_hook == nullptr && options.trace == nullptr;
  if (stateless) {
    util::ParallelForEach(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

std::vector<ClaimItem> BuildClaimVerificationTask(
    const kg::KnowledgeGraph& kg, const kg::TemplateEngine& templates,
    const std::vector<size_t>& triplet_indices, util::Rng* rng) {
  std::vector<ClaimItem> items;
  items.reserve(triplet_indices.size());
  for (size_t index : triplet_indices) {
    const kg::Triplet& triplet = kg.triplets()[index];
    ClaimItem item;
    item.triplet_index = index;
    bool corrupt = rng->Bernoulli(0.5);
    std::string statement;
    if (corrupt) {
      const std::vector<int>& pool = kg.TailPool(triplet.relation);
      int fake = triplet.tail;
      for (int attempt = 0; attempt < 20 && fake == triplet.tail;
           ++attempt) {
        fake = rng->Choice(pool);
      }
      if (fake == triplet.tail) {
        corrupt = false;  // degenerate pool: keep the true claim
      } else {
        kg::Triplet corrupted = triplet;
        corrupted.tail = fake;
        statement = templates.Statement(kg, corrupted);
      }
    }
    if (!corrupt) statement = templates.Statement(kg, triplet);
    item.label = !corrupt;
    item.prompt = "it is claimed that " + statement +
                  " is this claim true ? answer :";
    items.push_back(std::move(item));
  }
  return items;
}

double EvaluateClaimTask(const model::TransformerLM& lm,
                         const text::Tokenizer& tokenizer,
                         const std::vector<ClaimItem>& items,
                         const model::ForwardOptions& options) {
  CHECK(!items.empty());
  std::vector<int> predictions(items.size());
  std::vector<int> labels(items.size());
  const std::vector<std::string> yes_no = {"no", "yes"};
  ForEachItem(items.size(), options, [&](size_t i) {
    model::OptionScores scores =
        model::ScoreOptions(lm, tokenizer, items[i].prompt, yes_no, options);
    predictions[i] = scores.best;
    labels[i] = items[i].label ? 1 : 0;
  });
  return BinaryMacroF1(predictions, labels);
}

std::vector<OneHopItem> Build1HopTask(const kg::KnowledgeGraph& kg,
                                      const kg::TemplateEngine& templates,
                                      const std::vector<size_t>& indices,
                                      size_t max_candidates,
                                      util::Rng* rng) {
  CHECK_GE(max_candidates, size_t{2});
  std::vector<OneHopItem> items;
  items.reserve(indices.size());
  for (size_t index : indices) {
    const kg::Triplet& triplet = kg.triplets()[index];
    OneHopItem item;
    item.triplet_index = index;
    // Unseen template (T4) phrased as an open question, no options shown.
    item.prompt = "question : " +
                  templates.Question(kg, triplet, /*template_id=*/4) +
                  " answer :";
    std::vector<int> pool;
    for (int id : kg.TailPool(triplet.relation)) {
      if (id != triplet.tail) pool.push_back(id);
    }
    rng->Shuffle(&pool);
    if (pool.size() > max_candidates - 1) pool.resize(max_candidates - 1);
    pool.push_back(triplet.tail);
    rng->Shuffle(&pool);
    for (size_t i = 0; i < pool.size(); ++i) {
      item.candidates.push_back(kg.entity(pool[i]).name);
      if (pool[i] == triplet.tail) item.gold = static_cast<int>(i);
    }
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<TwoHopItem> Build2HopTask(const kg::KnowledgeGraph& kg,
                                      const kg::TemplateEngine& templates,
                                      size_t max_items,
                                      size_t max_candidates,
                                      util::Rng* rng) {
  CHECK_GE(max_candidates, size_t{2});
  // Index triplets by head for the second hop.
  std::vector<TwoHopItem> items;
  const std::vector<kg::Triplet>& triplets = kg.triplets();
  for (size_t first = 0;
       first < triplets.size() && items.size() < max_items; ++first) {
    const kg::Triplet& hop1 = triplets[first];
    if (hop1.tail == hop1.head) continue;
    for (size_t second = 0;
         second < triplets.size() && items.size() < max_items; ++second) {
      const kg::Triplet& hop2 = triplets[second];
      if (hop2.head != hop1.tail) continue;
      if (hop2.relation == hop1.relation) continue;
      if (hop2.tail == hop1.head) continue;
      TwoHopItem item;
      item.first_triplet = first;
      item.second_triplet = second;
      // Compositional phrasing: the bridge entity is referred to through
      // hop 1 ("the <r1> of X") instead of by name.
      item.prompt = "question : what is the " +
                    kg.relation(hop2.relation).surface + " of the " +
                    kg.relation(hop1.relation).surface + " of " +
                    kg.entity(hop1.head).name + " ? answer :";
      std::vector<int> pool;
      for (int id : kg.TailPool(hop2.relation)) {
        if (id != hop2.tail) pool.push_back(id);
      }
      if (pool.empty()) continue;
      rng->Shuffle(&pool);
      if (pool.size() > max_candidates - 1) {
        pool.resize(max_candidates - 1);
      }
      pool.push_back(hop2.tail);
      rng->Shuffle(&pool);
      for (size_t i = 0; i < pool.size(); ++i) {
        item.candidates.push_back(kg.entity(pool[i]).name);
        if (pool[i] == hop2.tail) item.gold = static_cast<int>(i);
      }
      items.push_back(std::move(item));
    }
  }
  return items;
}

double Evaluate2HopTask(const model::TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::vector<TwoHopItem>& items,
                        const model::ForwardOptions& options) {
  CHECK(!items.empty());
  std::vector<int> predictions(items.size());
  std::vector<int> labels(items.size());
  ForEachItem(items.size(), options, [&](size_t i) {
    model::OptionScores scores = model::ScoreOptions(
        lm, tokenizer, items[i].prompt, items[i].candidates, options);
    predictions[i] = scores.best;
    labels[i] = items[i].gold;
  });
  return Accuracy(predictions, labels);
}

double Evaluate1HopTask(const model::TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::vector<OneHopItem>& items,
                        const model::ForwardOptions& options) {
  CHECK(!items.empty());
  std::vector<int> predictions(items.size());
  std::vector<int> labels(items.size());
  ForEachItem(items.size(), options, [&](size_t i) {
    model::OptionScores scores = model::ScoreOptions(
        lm, tokenizer, items[i].prompt, items[i].candidates, options);
    predictions[i] = scores.best;
    labels[i] = items[i].gold;
  });
  return Accuracy(predictions, labels);
}

}  // namespace infuserki::eval
