#include "eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace infuserki::eval {
namespace {

// Squared Euclidean distances, N x N.
std::vector<double> PairwiseSq(const std::vector<double>& x, size_t n,
                               size_t dim) {
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (size_t c = 0; c < dim; ++c) {
        double diff = x[i * dim + c] - x[j * dim + c];
        s += diff * diff;
      }
      d[i * n + j] = s;
      d[j * n + i] = s;
    }
  }
  return d;
}

// Row conditional probabilities with per-row bandwidth found by binary
// search on the target perplexity.
std::vector<double> ConditionalP(const std::vector<double>& dist_sq,
                                 size_t n, double perplexity) {
  std::vector<double> p(n * n, 0.0);
  double target_entropy = std::log(perplexity);
  for (size_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e18;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double w = std::exp(-dist_sq[i * n + j] * beta);
        p[i * n + j] = w;
        sum += w;
        weighted += w * dist_sq[i * n + j];
      }
      if (sum <= 0.0) break;
      // Shannon entropy of the row distribution.
      double entropy = std::log(sum) + beta * weighted / sum;
      if (std::fabs(entropy - target_entropy) < 1e-4) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi > 1e17 ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
    }
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += p[i * n + j];
    if (sum > 0.0) {
      for (size_t j = 0; j < n; ++j) p[i * n + j] /= sum;
    }
  }
  return p;
}

}  // namespace

std::vector<double> PcaProject(const std::vector<double>& points, size_t n,
                               size_t dim, size_t k, uint64_t seed) {
  CHECK_GT(n, size_t{1});
  CHECK_GE(dim, k);
  // Center the data.
  std::vector<double> centered = points;
  for (size_t c = 0; c < dim; ++c) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += centered[i * dim + c];
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) centered[i * dim + c] -= mean;
  }
  util::Rng rng(seed);
  std::vector<std::vector<double>> components;
  for (size_t comp = 0; comp < k; ++comp) {
    std::vector<double> v(dim);
    for (double& x : v) x = rng.Normal();
    for (int iter = 0; iter < 100; ++iter) {
      // w = X^T X v  (covariance power iteration without forming X^T X).
      std::vector<double> xv(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < dim; ++c) {
          xv[i] += centered[i * dim + c] * v[c];
        }
      }
      std::vector<double> w(dim, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < dim; ++c) {
          w[c] += centered[i * dim + c] * xv[i];
        }
      }
      // Deflate previously found components.
      for (const std::vector<double>& prev : components) {
        double dot = 0.0;
        for (size_t c = 0; c < dim; ++c) dot += w[c] * prev[c];
        for (size_t c = 0; c < dim; ++c) w[c] -= dot * prev[c];
      }
      double norm = 0.0;
      for (double x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (size_t c = 0; c < dim; ++c) v[c] = w[c] / norm;
    }
    components.push_back(v);
  }
  std::vector<double> projected(n * k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t comp = 0; comp < k; ++comp) {
      double dot = 0.0;
      for (size_t c = 0; c < dim; ++c) {
        dot += centered[i * dim + c] * components[comp][c];
      }
      projected[i * k + comp] = dot;
    }
  }
  return projected;
}

std::vector<double> Tsne(const std::vector<double>& points, size_t n,
                         size_t dim, const TsneOptions& options) {
  CHECK_GT(n, size_t{2});
  CHECK_EQ(points.size(), n * dim);

  std::vector<double> dist_sq = PairwiseSq(points, n, dim);
  std::vector<double> cond = ConditionalP(dist_sq, n, options.perplexity);
  // Symmetrized joint probabilities.
  std::vector<double> p(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p[i * n + j] = std::max(
          (cond[i * n + j] + cond[j * n + i]) / (2.0 * static_cast<double>(n)),
          1e-12);
    }
  }

  // PCA init, scaled to small coordinates.
  std::vector<double> y = PcaProject(points, n, dim, 2, options.seed);
  double max_abs = 1e-12;
  for (double v : y) max_abs = std::max(max_abs, std::fabs(v));
  for (double& v : y) v = v / max_abs * 1e-2;

  std::vector<double> velocity(n * 2, 0.0);
  std::vector<double> grad(n * 2, 0.0);
  std::vector<double> q(n * n, 0.0);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double dy0 = y[i * 2] - y[j * 2];
        double dy1 = y[i * 2 + 1] - y[j * 2 + 1];
        double w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
    }
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double w = q[i * n + j];
        double q_ij = std::max(w / q_sum, 1e-12);
        double coeff =
            4.0 * (exaggeration * p[i * n + j] - q_ij) * w;
        grad[i * 2] += coeff * (y[i * 2] - y[j * 2]);
        grad[i * 2 + 1] += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
      }
    }
    for (size_t i = 0; i < n * 2; ++i) {
      velocity[i] = options.momentum * velocity[i] -
                    options.learning_rate * grad[i];
      y[i] += velocity[i];
    }
  }
  return y;
}

double SeparationRatio(const std::vector<double>& coords, size_t n,
                       size_t dim, const std::vector<int>& labels) {
  CHECK_EQ(labels.size(), n);
  CHECK_EQ(coords.size(), n * dim);
  double intra = 0.0, inter = 0.0;
  size_t intra_count = 0, inter_count = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (size_t c = 0; c < dim; ++c) {
        double d = coords[i * dim + c] - coords[j * dim + c];
        s += d * d;
      }
      s = std::sqrt(s);
      if (labels[i] == labels[j]) {
        intra += s;
        ++intra_count;
      } else {
        inter += s;
        ++inter_count;
      }
    }
  }
  if (intra_count == 0 || inter_count == 0 || intra == 0.0) return 0.0;
  return (inter / static_cast<double>(inter_count)) /
         (intra / static_cast<double>(intra_count));
}

}  // namespace infuserki::eval
