#ifndef INFUSERKI_EVAL_DOWNSTREAM_H_
#define INFUSERKI_EVAL_DOWNSTREAM_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "model/transformer.h"
#include "text/tokenizer.h"

namespace infuserki::eval {

/// One downstream yes/no item (the synthetic PubMedQA stand-in): a claim
/// derived from a KG fact, possibly corrupted, asked in a phrasing never
/// used during training.
struct ClaimItem {
  size_t triplet_index = 0;
  std::string prompt;
  bool label = true;  // claim is true
};

/// Builds the PubMedQA-substitute task: "it is claimed that <statement> .
/// is this claim true ?" with half the claims corrupted by swapping the
/// object for another same-relation entity.
std::vector<ClaimItem> BuildClaimVerificationTask(
    const kg::KnowledgeGraph& kg, const kg::TemplateEngine& templates,
    const std::vector<size_t>& triplet_indices, util::Rng* rng);

/// Scores the claim task by yes/no continuation likelihood; returns the
/// binary macro-F1.
double EvaluateClaimTask(const model::TransformerLM& lm,
                         const text::Tokenizer& tokenizer,
                         const std::vector<ClaimItem>& items,
                         const model::ForwardOptions& options = {});

/// One open (no options shown) 1-hop KGQA item — the MetaQA-1Hop stand-in.
struct OneHopItem {
  size_t triplet_index = 0;
  std::string prompt;                   // unseen-template question
  std::vector<std::string> candidates;  // answer pool incl. the gold answer
  int gold = 0;                         // index into candidates
};

/// Builds the 1-hop task over `triplet_indices` using an unseen QA template
/// and a per-question candidate pool from the relation's tails.
std::vector<OneHopItem> Build1HopTask(const kg::KnowledgeGraph& kg,
                                      const kg::TemplateEngine& templates,
                                      const std::vector<size_t>& indices,
                                      size_t max_candidates,
                                      util::Rng* rng);

/// Scores the 1-hop task by candidate likelihood; returns accuracy (the
/// paper reports it as a Hits@1-style F1).
double Evaluate1HopTask(const model::TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::vector<OneHopItem>& items,
                        const model::ForwardOptions& options = {});

/// A compositional two-hop item (MetaQA's 2-hop category, which the paper
/// leaves to future evaluation): the bridge entity is the unique tail of
/// (head, first_relation), and the answer is the tail of
/// (bridge, second_relation). Example: "what is the genre of the movie
/// whose director is X?" Reuses OneHopItem's candidate-scoring shape.
struct TwoHopItem {
  size_t first_triplet = 0;   // (head, r1, bridge)
  size_t second_triplet = 0;  // (bridge, r2, answer)
  std::string prompt;
  std::vector<std::string> candidates;
  int gold = 0;
};

/// Enumerates 2-hop chains (a, r1, b), (b, r2, c) with a != b, b != c and
/// r1 != r2, phrases them compositionally, and attaches a candidate pool
/// from r2's tails. At most `max_items` items are produced.
std::vector<TwoHopItem> Build2HopTask(const kg::KnowledgeGraph& kg,
                                      const kg::TemplateEngine& templates,
                                      size_t max_items,
                                      size_t max_candidates,
                                      util::Rng* rng);

/// Scores the 2-hop task by candidate likelihood; returns accuracy.
double Evaluate2HopTask(const model::TransformerLM& lm,
                        const text::Tokenizer& tokenizer,
                        const std::vector<TwoHopItem>& items,
                        const model::ForwardOptions& options = {});

}  // namespace infuserki::eval

#endif  // INFUSERKI_EVAL_DOWNSTREAM_H_
