#ifndef INFUSERKI_EVAL_TSNE_H_
#define INFUSERKI_EVAL_TSNE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace infuserki::eval {

/// Options for the exact (O(N^2)) t-SNE used to reproduce Fig. 1.
struct TsneOptions {
  double perplexity = 15.0;
  size_t iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  double early_exaggeration = 4.0;
  size_t exaggeration_iters = 80;
  uint64_t seed = 3;
};

/// Projects `points` (row-major N x dim) to `coords` (N x 2). PCA provides
/// the initialization, then standard Kullback-Leibler gradient descent with
/// momentum runs (van der Maaten & Hinton, 2008).
std::vector<double> Tsne(const std::vector<double>& points, size_t n,
                         size_t dim, const TsneOptions& options);

/// Top-`k` principal component projection of `points` (N x dim) ->
/// (N x k), computed by power iteration with deflation.
std::vector<double> PcaProject(const std::vector<double>& points, size_t n,
                               size_t dim, size_t k, uint64_t seed = 3);

/// Cluster-separation diagnostic for a binary labeling of embedded points:
/// mean inter-class distance divided by mean intra-class distance. Larger
/// means better-separated groups (the numeric counterpart of "the clusters
/// in Fig. 1 look separated").
double SeparationRatio(const std::vector<double>& coords, size_t n,
                       size_t dim, const std::vector<int>& labels);

}  // namespace infuserki::eval

#endif  // INFUSERKI_EVAL_TSNE_H_
