// Extension example: zero-downtime incremental knowledge integration
// (DESIGN.md §12). A deployed model serves traffic while new KG facts
// arrive as a delta; the delta is integrated with an InfuserKI pass in a
// BACKGROUND thread, published to the versioned adapter registry, and
// hot-swapped into the live server — requests in flight finish on the
// version they were admitted under, and not one request is dropped.
//
// Run:  ./incremental_updates [--triplets=96] [--qa_epochs=60]

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/infuserki.h"
#include "eval/experiment.h"
#include "serve/adapter_registry.h"
#include "serve/server.h"
#include "util/flags.h"

using namespace infuserki;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  eval::ExperimentConfig config;
  config.domain = eval::ExperimentConfig::Domain::kUmls;
  config.num_triplets = static_cast<size_t>(flags.GetInt("triplets", 96));
  config.arch.dim = 64;
  config.arch.num_layers = 8;
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = 128;
  config.pretrain_steps =
      static_cast<size_t>(flags.GetInt("pretrain_steps", 1200));
  config.eval_cap = 40;
  config.downstream_cap = 24;
  config.cache_dir = flags.GetString("cache_dir", "model_cache");

  eval::Experiment experiment(config);
  experiment.Setup();
  core::KiTrainData delta = experiment.BuildTrainData();
  std::printf("\nKG delta: %zu unknown facts to integrate.\n",
              delta.unknown_qa.size() / 2);

  // The production server: continuous batching over the deployed base
  // model, graceful drain on shutdown. It starts serving immediately —
  // integration happens entirely behind its back.
  serve::ServeOptions serve_options;
  serve_options.max_batch_rows = 4;
  serve_options.kv_budget_tokens = 512;
  serve_options.drain_deadline = std::chrono::milliseconds(5000);
  serve::InferenceServer server(experiment.base_lm(),
                                experiment.tokenizer(), serve_options);

  // A handful of the delta's QA prompts double as the live traffic.
  std::vector<std::string> queries;
  for (size_t i = 0; i < delta.unknown_qa.size() && queries.size() < 4;
       i += 2) {
    queries.push_back(delta.unknown_qa[i].prompt);
  }

  auto ask_all = [&](const char* label) {
    std::vector<serve::Response> responses;
    for (const std::string& query : queries) {
      serve::Response response = server.Run({query, 8});
      std::printf("  [%s v%llu] %s\n", label,
                  static_cast<unsigned long long>(response.adapter_sequence),
                  response.status.ok() ? response.text.c_str()
                                       : response.status.message().c_str());
      responses.push_back(std::move(response));
    }
    return responses;
  };

  std::printf("\nPre-swap answers (base model, version 0):\n");
  std::vector<serve::Response> before = ask_all("pre ");

  // Background integration: train adapters for the delta on a CLONE of
  // the base model (the served instance is never touched), export the
  // position-wise snapshot, and publish it as a registry version. The
  // ungated (use_infuser = false, w/o-Ro) form is the exportable one —
  // position-wise, so it takes the server's KV-cached batched path.
  serve::AdapterRegistry registry(
      flags.GetString("registry_dir", "adapter_registry"));
  std::promise<serve::AdapterVersion> published;
  std::future<serve::AdapterVersion> pending = published.get_future();
  std::thread trainer([&] {
    auto model = experiment.CloneBaseModel();
    core::InfuserKiOptions options;
    options.adapters.first_layer = 1;
    options.adapters.use_infuser = false;
    options.qa_epochs =
        static_cast<size_t>(flags.GetInt("qa_epochs", 60));
    core::InfuserKi method(model.get(), options);
    method.Train(delta);

    auto exported = method.stack().ExportPositionWise();
    if (!exported.ok()) {
      std::printf("export failed: %s\n",
                  exported.status().message().c_str());
      std::exit(1);
    }
    auto version = registry.Publish(std::move(exported).value());
    if (!version.ok()) {
      std::printf("publish failed: %s\n",
                  version.status().message().c_str());
      std::exit(1);
    }
    published.set_value(std::move(version).value());
  });

  // The server keeps answering while the trainer works.
  std::printf("\nTraining the delta in the background; serving meanwhile:\n");
  (void)ask_all("live");
  serve::AdapterVersion version = pending.get();
  trainer.join();

  // Load back through the registry — the same quarantine-and-rollback
  // path production restarts take — then swap with zero downtime.
  auto loaded = registry.LoadLatest();
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().message().c_str());
    return 1;
  }
  server.SwapAdapters(std::move(loaded).value());
  std::printf("\nHot-swapped to adapter version %llu (file: %s).\n",
              static_cast<unsigned long long>(version.sequence),
              version.path.c_str());

  std::printf("\nPost-swap answers (same live server, no restart):\n");
  std::vector<serve::Response> after = ask_all("post");

  size_t changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i].status.ok() && after[i].status.ok() &&
        before[i].text != after[i].text) {
      ++changed;
    }
  }
  std::printf(
      "\n%zu of %zu answers changed across the swap; every response above\n"
      "reports the adapter version it was pinned to at admission.\n",
      changed, before.size());
  server.Shutdown();  // graceful drain: in-flight work completes first
  return 0;
}
