// Extension example: incremental knowledge updates. A deployed model
// receives new KG facts in waves (e.g. weekly product updates); each wave
// is integrated with a fresh InfuserKI pass while earlier integrations
// must survive. This exercises the lifelong-editing angle the paper's
// related-work section contrasts with (GRACE, T-Patcher).
//
// Run:  ./incremental_updates [--triplets=96] [--waves=2]

#include <cstdio>
#include <memory>
#include <vector>

#include "core/infuserki.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace infuserki;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  eval::ExperimentConfig config;
  config.domain = eval::ExperimentConfig::Domain::kUmls;
  config.num_triplets = static_cast<size_t>(flags.GetInt("triplets", 96));
  config.arch.dim = 64;
  config.arch.num_layers = 8;
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = 128;
  config.pretrain_steps =
      static_cast<size_t>(flags.GetInt("pretrain_steps", 1200));
  config.eval_cap = 40;
  config.downstream_cap = 24;
  config.cache_dir = flags.GetString("cache_dir", "model_cache");

  eval::Experiment experiment(config);
  experiment.Setup();

  size_t waves = static_cast<size_t>(flags.GetInt("waves", 2));
  core::KiTrainData all = experiment.BuildTrainData();
  size_t per_wave = (all.unknown_qa.size() / 2 + waves - 1) / waves;

  auto lm = experiment.CloneBaseModel();
  // One adapter stack per wave, chained as independent hooks is not
  // supported by a single ForwardOptions slot; instead each wave extends
  // the SAME method's training data (replay of earlier waves), the
  // simplest production-honest policy.
  std::vector<std::unique_ptr<core::InfuserKi>> methods;
  core::KiTrainData accumulated;
  accumulated.tokenizer = all.tokenizer;
  accumulated.kg = all.kg;
  accumulated.known_qa = all.known_qa;

  std::printf("\nIntegrating %zu unknown facts in %zu waves.\n",
              all.unknown_qa.size() / 2, waves);
  for (size_t wave = 0; wave < waves; ++wave) {
    // Each triplet contributes two template variants, adjacent in the
    // list; take a contiguous slice of triplets per wave.
    size_t begin = wave * per_wave * 2;
    size_t end = std::min(all.unknown_qa.size(), begin + per_wave * 2);
    if (begin >= end) break;
    for (size_t i = begin; i < end; ++i) {
      accumulated.unknown_qa.push_back(all.unknown_qa[i]);
    }
    for (const kg::StatementSample& statement : all.unknown_statements) {
      // Keep statements for the facts integrated so far.
      bool in_wave = false;
      for (size_t i = 0; i < accumulated.unknown_qa.size(); ++i) {
        if (accumulated.unknown_qa[i].triplet_index ==
            statement.triplet_index) {
          in_wave = true;
          break;
        }
      }
      if (in_wave) accumulated.unknown_statements.push_back(statement);
    }

    // Fresh adapters per wave would stack hooks; retraining the single
    // stack on the accumulated data is the replay policy shown here.
    auto model = experiment.CloneBaseModel();
    core::InfuserKiOptions options;
    options.adapters.first_layer = 1;
    options.qa_epochs = static_cast<size_t>(flags.GetInt("qa_epochs", 60));
    auto method = std::make_unique<core::InfuserKi>(model.get(), options);
    method->Train(accumulated);
    eval::MethodScores scores = experiment.EvaluateMethod(
        "wave " + std::to_string(wave + 1), *model, method->Forward());
    std::printf("after wave %zu: NR=%s RR=%s (facts integrated so far: "
                "%zu)\n",
                wave + 1, util::FormatFloat(scores.nr, 2).c_str(),
                util::FormatFloat(scores.rr, 2).c_str(),
                accumulated.unknown_qa.size() / 2);
    methods.push_back(std::move(method));
    lm = std::move(model);
  }
  std::printf(
      "\nNR counts ALL originally-unknown facts, so early waves show\n"
      "partial NR by construction; RR staying high across waves is the\n"
      "locality property under repeated updates.\n");
  return 0;
}
