// Quickstart: the InfuserKI pipeline end to end on a tiny synthetic
// medical KG.
//
//   1. Generate a knowledge graph and pretrain a small base LM on part of it.
//   2. Detect which facts the model already knows (§3.2).
//   3. Integrate the unknown facts with Infuser-guided knowledge adapters.
//   4. Compare NR (reliability) / RR (locality) before and after.
//
// Run:  ./quickstart [--triplets=96] [--pretrain_steps=1200]

#include <cstdio>

#include "core/infuserki.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace infuserki;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  eval::ExperimentConfig config;
  config.domain = eval::ExperimentConfig::Domain::kUmls;
  config.num_triplets =
      static_cast<size_t>(flags.GetInt("triplets", 96));
  config.pretrain_steps =
      static_cast<size_t>(flags.GetInt("pretrain_steps", 1200));
  config.arch.dim = 64;
  config.arch.num_layers = 8;
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = 128;
  config.eval_cap = 60;
  config.downstream_cap = 40;
  config.cache_dir = flags.GetString("cache_dir", "model_cache");

  eval::Experiment experiment(config);
  experiment.Setup();

  std::printf("\nBase model knows %zu of %zu facts (%.0f%%).\n",
              experiment.detection().known.size(), config.num_triplets,
              100.0 * experiment.detection().KnownFraction());

  // Vanilla scores: how the untouched model does on the evaluation sets.
  eval::MethodScores before = experiment.EvaluateVanilla();

  // Integrate the unknown knowledge.
  auto lm = experiment.CloneBaseModel();
  core::InfuserKiOptions options;
  options.adapters.first_layer = 1;
  options.qa_epochs =
      static_cast<size_t>(flags.GetInt("qa_epochs", 70));
  core::InfuserKi method(lm.get(), options);
  method.Train(experiment.BuildTrainData());

  eval::MethodScores after =
      experiment.EvaluateMethod(method.name(), *lm, method.Forward());

  std::printf("\n%-22s %8s %8s %10s %11s\n", "", "NR", "RR", "F1_Unseen",
              "Downstream");
  std::printf("%-22s %8s %8s %10s %11s\n", "Vanilla", "-", "-",
              util::FormatFloat(before.f1_unseen, 2).c_str(),
              util::FormatFloat(before.downstream, 2).c_str());
  std::printf("%-22s %8s %8s %10s %11s\n", "InfuserKI",
              util::FormatFloat(after.nr, 2).c_str(),
              util::FormatFloat(after.rr, 2).c_str(),
              util::FormatFloat(after.f1_unseen, 2).c_str(),
              util::FormatFloat(after.downstream, 2).c_str());
  std::printf(
      "\nInfuserKI added %zu trainable parameters; the base model's %zu "
      "parameters stayed frozen.\n",
      method.NumTrainableParameters(), lm->NumParameters());
  std::printf(
      "Expected shape: NR near 1 (new facts learned) with RR near 1 "
      "(known facts kept).\n");
  return 0;
}
