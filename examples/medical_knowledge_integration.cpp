// Domain example: enriching a base model with a private medical KG — the
// "hospital customizes a model with its case data" scenario from the
// paper's introduction.
//
// Walks through the full InfuserKI workflow with commentary:
//   1. knowledge detection over the UMLS-style KG,
//   2. Infuser-guided integration of the unknown facts,
//   3. a side-by-side audit against LoRA on reliability (NR) and
//      locality (RR), plus the claim-verification downstream task.
//
// Run:  ./medical_knowledge_integration [--triplets=96]

#include <cstdio>

#include "core/infuserki.h"
#include "eval/experiment.h"
#include "peft/lora.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace infuserki;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  eval::ExperimentConfig config;
  config.domain = eval::ExperimentConfig::Domain::kUmls;
  config.num_triplets = static_cast<size_t>(flags.GetInt("triplets", 96));
  config.arch.dim = 64;
  config.arch.num_layers = 8;
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = 128;
  config.pretrain_steps =
      static_cast<size_t>(flags.GetInt("pretrain_steps", 1200));
  config.eval_cap = 48;
  config.downstream_cap = 32;
  config.cache_dir = flags.GetString("cache_dir", "model_cache");

  eval::Experiment experiment(config);
  experiment.Setup();

  const auto& detection = experiment.detection();
  std::printf("\n-- Step 1: knowledge detection --\n");
  std::printf("The hospital's KG holds %zu facts over %zu concepts.\n",
              experiment.kg().num_triplets(),
              experiment.kg().num_entities());
  std::printf("The base model already answers %zu (%.0f%%); %zu are "
              "unknown and need integration.\n",
              detection.known.size(), 100.0 * detection.KnownFraction(),
              detection.unknown.size());
  // Show one unknown fact.
  if (!experiment.nr_set().empty()) {
    const kg::Mcq& example = experiment.nr_set().front();
    std::printf("Example unknown question: \"%s\"\n",
                example.question.c_str());
  }

  std::printf("\n-- Step 2: Infuser-guided integration --\n");
  auto ki_lm = experiment.CloneBaseModel();
  core::InfuserKiOptions ki_options;
  ki_options.adapters.first_layer = 1;
  ki_options.qa_epochs =
      static_cast<size_t>(flags.GetInt("qa_epochs", 80));
  core::InfuserKi infuserki(ki_lm.get(), ki_options);
  infuserki.Train(experiment.BuildTrainData());
  std::printf("Trained %zu adapter/Infuser parameters; base model frozen.\n",
              infuserki.NumTrainableParameters());

  std::printf("\n-- Step 3: audit vs LoRA --\n");
  auto lora_lm = experiment.CloneBaseModel();
  peft::LoraOptions lora_options;
  lora_options.epochs = static_cast<size_t>(flags.GetInt("epochs", 40));
  lora_options.rank = 8;
  lora_options.alpha = 16.0f;
  lora_options.lr = 3e-3f;
  peft::LoraMethod lora(lora_lm.get(), lora_options);
  lora.Train(experiment.BuildTrainData());

  eval::MethodScores vanilla = experiment.EvaluateVanilla();
  eval::MethodScores ki_scores =
      experiment.EvaluateMethod("InfuserKI", *ki_lm, infuserki.Forward());
  eval::MethodScores lora_scores =
      experiment.EvaluateMethod("LoRA", *lora_lm, lora.Forward());

  auto row = [](const eval::MethodScores& s) {
    std::printf("%-12s %6s %6s %10s %11s\n", s.method.c_str(),
                s.has_nr_rr ? util::FormatFloat(s.nr, 2).c_str() : "-",
                s.has_nr_rr ? util::FormatFloat(s.rr, 2).c_str() : "-",
                util::FormatFloat(s.f1_unseen, 2).c_str(),
                util::FormatFloat(s.downstream, 2).c_str());
  };
  std::printf("%-12s %6s %6s %10s %11s\n", "", "NR", "RR", "F1_Unseen",
              "ClaimTask");
  row(vanilla);
  row(lora_scores);
  row(ki_scores);
  std::printf(
      "\nReading: NR = newly-learned rate on previously-unknown facts;\n"
      "RR = remembering rate on facts the base model already knew.\n"
      "InfuserKI's gate suppresses adapter output on known inputs, which\n"
      "is what keeps RR high while NR rises.\n");
  return 0;
}
