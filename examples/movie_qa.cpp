// Domain example: a movie-streaming catalogue assistant (the MetaQA
// setting). Integrates a synthetic movie KG into the base model and then
// answers open 1-hop questions — no options shown — by candidate scoring,
// printing its per-candidate confidence for a few sample questions.
//
// Run:  ./movie_qa [--triplets=96] [--questions=5]

#include <algorithm>
#include <cstdio>

#include "core/infuserki.h"
#include "eval/downstream.h"
#include "eval/experiment.h"
#include "model/generation.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace infuserki;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  eval::ExperimentConfig config;
  config.domain = eval::ExperimentConfig::Domain::kMetaQa;
  config.num_triplets = static_cast<size_t>(flags.GetInt("triplets", 96));
  config.arch.dim = 64;
  config.arch.num_layers = 8;
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = 128;
  config.pretrain_steps =
      static_cast<size_t>(flags.GetInt("pretrain_steps", 1200));
  config.eval_cap = 48;
  config.downstream_cap = 32;
  config.cache_dir = flags.GetString("cache_dir", "model_cache");

  eval::Experiment experiment(config);
  experiment.Setup();
  std::printf("\nCatalogue KG: %zu facts about %zu movies/people, "
              "%zu relation types.\n",
              experiment.kg().num_triplets(),
              experiment.kg().num_entities(),
              experiment.kg().num_relations());

  auto lm = experiment.CloneBaseModel();
  core::InfuserKiOptions options;
  options.adapters.first_layer = 1;
  options.qa_epochs = static_cast<size_t>(flags.GetInt("qa_epochs", 80));
  core::InfuserKi method(lm.get(), options);
  method.Train(experiment.BuildTrainData());

  // Build a small open-QA demo from the integration targets.
  util::Rng rng(42);
  std::vector<size_t> indices = experiment.detection().unknown;
  if (indices.size() > 12) indices.resize(12);
  std::vector<eval::OneHopItem> items = eval::Build1HopTask(
      experiment.kg(), experiment.templates(), indices,
      /*max_candidates=*/6, &rng);

  size_t to_show = static_cast<size_t>(flags.GetInt("questions", 5));
  size_t correct = 0;
  std::printf("\nAsking the assistant (no options shown to the model):\n");
  for (size_t i = 0; i < items.size(); ++i) {
    model::OptionScores scores =
        model::ScoreOptions(*lm, experiment.tokenizer(), items[i].prompt,
                            items[i].candidates, method.Forward());
    bool ok = scores.best == items[i].gold;
    if (ok) ++correct;
    if (i < to_show) {
      std::printf("\nQ: %s\n", items[i].prompt.c_str());
      // Top-2 candidates by probability.
      std::vector<size_t> order(items[i].candidates.size());
      for (size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores.probabilities[a] > scores.probabilities[b];
      });
      for (size_t rank = 0; rank < 2 && rank < order.size(); ++rank) {
        size_t j = order[rank];
        std::printf("   %s (confidence %s)%s\n",
                    items[i].candidates[j].c_str(),
                    util::FormatFloat(scores.probabilities[j], 2).c_str(),
                    static_cast<int>(j) == items[i].gold ? "  [gold]" : "");
      }
      std::printf("   -> %s\n", ok ? "correct" : "wrong");
    }
  }
  std::printf("\n1-hop accuracy over %zu integrated facts: %s\n",
              items.size(),
              util::FormatFloat(static_cast<double>(correct) /
                                    static_cast<double>(items.size()),
                                2)
                  .c_str());
  return 0;
}
