#!/bin/sh
# Paper-scale reproduction runs. These use the full KG sizes from the
# paper (hours-to-days on a single CPU core; size the machine accordingly
# or scale --triplets down). The smoke-scale defaults used by CI are the
# bare binaries with no flags.
set -eu

BENCH_DIR="${1:-build/bench}"

"$BENCH_DIR/bench_table1_umls"    --triplets=2500  --epochs=60 --infuserki_qa_epochs=140 --eval_cap=200 --downstream_cap=150
"$BENCH_DIR/bench_table2_metaqa"  --triplets=2900  --epochs=60 --infuserki_qa_epochs=140 --eval_cap=200 --downstream_cap=150
"$BENCH_DIR/bench_table3_umls25k" --triplets=25000 --epochs=60 --infuserki_qa_epochs=140 --eval_cap=200 --downstream_cap=150
"$BENCH_DIR/bench_table4_ablation"        --triplets=2500 --infuserki_qa_epochs=140 --eval_cap=200
"$BENCH_DIR/bench_fig1_tsne"              --triplets=2500 --eval_cap=150
"$BENCH_DIR/bench_fig5_adapter_position"  --triplets=2500 --infuserki_qa_epochs=140 --eval_cap=200
"$BENCH_DIR/bench_fig6_infusing_scores"   --triplets=2500 --infuserki_qa_epochs=140
"$BENCH_DIR/bench_fig7_case_study"        --triplets=2500 --infuserki_qa_epochs=140
