#!/bin/sh
# Tier-1 verification plus observability and inference-engine smoke tests.
#
#   scripts/check_build.sh [build_dir]
#
# 1. Configures + builds the default (Release) tree and runs the full test
#    suite — the same gate CI applies.
# 2. Builds bench_micro_tensor under RelWithDebInfo and runs one benchmark
#    with --metrics_out, asserting the run manifest is non-empty valid JSON.
# 3. Runs the cached-vs-uncached decode comparison (--decode_compare) and
#    asserts the KV-cache engine delivers at least a 3x decode speedup at
#    max_seq_len, with the numbers recorded in the manifest.
# 4. Builds the durability tests under ASan+UBSan and runs them, so the
#    corruption-fuzz and fault-injection paths are exercised with memory
#    and UB checking on.
# 5. Runs the crash/resume smoke: a training run killed by an injected
#    crash failpoint (exit 42) must resume from its snapshot and finish
#    with parameters bit-identical to an uninterrupted run.
# 6. Runs the serving chaos smoke: bench_serve sweeping batch widths under
#    injected compute + I/O faults with an undersized KV budget must keep
#    its request accounting conserved ("serve_accounting=ok"), keep its
#    obs-derived latency quantiles within one bucket of the sorted-vector
#    reference ("serve_quantiles=ok"), exit 0, append a schema-valid
#    NDJSON line to the BENCH_serve.json trajectory, and leave a non-empty
#    NDJSON metrics stream behind from the live exporter.
# 7. Runs the fault-free batched-vs-sequential throughput gate: the
#    continuous-batching scheduler at batch 8 must deliver at least 2x the
#    sequential (batch 1) request throughput on the small bench model.
#    Best of three runs — a single-core shared box is noisy.
# 8. Builds the ThreadSanitizer preset and runs the concurrency gate
#    (race_stress_test plus the threadpool / kv-cache / obs / exporter /
#    serve suites, including the chaos soak and the batched-decode
#    bit-exactness suite) with fail-fast TSAN_OPTIONS — zero reports
#    allowed (tsan.supp is reserved for documented third-party noise; see
#    DESIGN.md §9).
# 9. Builds the whole tree under the Clang Thread Safety Analysis
#    (-Werror=thread-safety, the tsa preset) and runs the
#    tests/tsa_violation/ negative compile tests, so the locking contracts
#    of DESIGN.md §13 are machine-checked. Skipped with a notice when no
#    clang++ with -Wthread-safety is installed (the scale-run container
#    has none); CI runs it for real.
# 10. Lint: clang-format --dry-run --Werror and clang-tidy over src/ when
#    the LLVM tools are installed (skipped with a notice otherwise — the
#    scale-run container has no LLVM), then the repo invariant linter
#    (tools/lint/check_invariants.py) and its self-test, which must always
#    pass.
# 11. Checks that file paths referenced from DESIGN.md / EXPERIMENTS.md /
#    README.md / ARCHITECTURE.md exist, so the docs cannot drift from the
#    tree silently.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SMOKE_DIR="${BUILD_DIR}-relwithdebinfo"

echo "== tier-1: configure + build + ctest (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "== obs smoke: bench_micro_tensor --metrics_out (${SMOKE_DIR}) =="
cmake -B "$SMOKE_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SMOKE_DIR" -j --target bench_micro_tensor

METRICS_OUT="${TMPDIR:-/tmp}/check_build_metrics.json"
rm -f "$METRICS_OUT"
"$SMOKE_DIR/bench/bench_micro_tensor" \
  --benchmark_filter=BM_Softmax \
  --benchmark_min_time=0.05 \
  --metrics_out="$METRICS_OUT"

test -s "$METRICS_OUT" || {
  echo "FAIL: $METRICS_OUT is missing or empty" >&2
  exit 1
}
if command -v python3 > /dev/null 2>&1; then
  python3 - "$METRICS_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    manifest = json.load(f)
for key in ("bench", "metrics", "spans"):
    assert key in manifest, f"manifest missing {key!r}"
counters = manifest["metrics"]["counters"]
assert counters.get("tensor/softmax_ops", 0) > 0, counters
print("manifest OK:", sys.argv[1])
EOF
else
  # No python3: at least check it looks like our manifest object.
  grep -q '"bench"' "$METRICS_OUT" && grep -q '"metrics"' "$METRICS_OUT" || {
    echo "FAIL: $METRICS_OUT does not look like a run manifest" >&2
    exit 1
  }
  echo "manifest OK (grep check): $METRICS_OUT"
fi

echo "== engine smoke: cached vs uncached decode (${SMOKE_DIR}) =="
DECODE_OUT="${TMPDIR:-/tmp}/check_build_decode.txt"
DECODE_METRICS="${TMPDIR:-/tmp}/check_build_decode_metrics.json"
"$SMOKE_DIR/bench/bench_micro_tensor" \
  --benchmark_filter='^$' \
  --decode_compare \
  --metrics_out="$DECODE_METRICS" | tee "$DECODE_OUT"
SPEEDUP="$(sed -n 's/^decode_speedup=//p' "$DECODE_OUT")"
test -n "$SPEEDUP" || {
  echo "FAIL: decode_speedup line missing from --decode_compare output" >&2
  exit 1
}
awk "BEGIN { exit !($SPEEDUP >= 3.0) }" || {
  echo "FAIL: cached decode speedup ${SPEEDUP}x is below the 3x floor" >&2
  exit 1
}
grep -q '"engine/bench_decode_speedup"' "$DECODE_METRICS" || {
  echo "FAIL: engine/bench_decode_speedup missing from $DECODE_METRICS" >&2
  exit 1
}
echo "decode speedup OK: ${SPEEDUP}x (>= 3x)"

echo "== durability: ASan+UBSan serialize/checkpoint/fault tests =="
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DINFUSERKI_SANITIZE=address
cmake --build "$ASAN_DIR" -j --target durability_test train_state_test
"$ASAN_DIR/tests/durability_test"
"$ASAN_DIR/tests/train_state_test"
echo "sanitized durability tests OK"

echo "== durability smoke: injected crash + resume (${SMOKE_DIR}) =="
RESUME_DIR="${TMPDIR:-/tmp}/check_build_resume"
FRESH_DIR="${TMPDIR:-/tmp}/check_build_resume_fresh"
rm -rf "$RESUME_DIR" "$FRESH_DIR"

# Crash run: the failpoint kills the process at the 60th training step
# (exit 42), after snapshots landed at steps 20 and 40.
set +e
INFUSERKI_FAULTS="trainer/step=crash@60" \
  "$SMOKE_DIR/bench/bench_micro_tensor" --resume_smoke_dir="$RESUME_DIR" \
  > /dev/null 2>&1
CRASH_CODE=$?
set -e
[ "$CRASH_CODE" -eq 42 ] || {
  echo "FAIL: crash run exited with $CRASH_CODE, expected 42" >&2
  exit 1
}

# Resumed run: must pick up the step-40 snapshot and finish.
RESUMED="$("$SMOKE_DIR/bench/bench_micro_tensor" \
  --resume_smoke_dir="$RESUME_DIR" 2> /dev/null)"
RESUME_STEP="$(echo "$RESUMED" | sed -n 's/^resume_smoke_resume_step=//p')"
RESUMED_CRC="$(echo "$RESUMED" | sed -n 's/^resume_smoke_params_crc=//p')"
[ "$RESUME_STEP" = "40" ] || {
  echo "FAIL: resumed run restarted from step '$RESUME_STEP', expected 40" >&2
  exit 1
}

# Reference run: same job, fresh directory, never interrupted.
FRESH="$("$SMOKE_DIR/bench/bench_micro_tensor" \
  --resume_smoke_dir="$FRESH_DIR" 2> /dev/null)"
FRESH_CRC="$(echo "$FRESH" | sed -n 's/^resume_smoke_params_crc=//p')"
[ -n "$RESUMED_CRC" ] && [ "$RESUMED_CRC" = "$FRESH_CRC" ] || {
  echo "FAIL: resumed params CRC $RESUMED_CRC != uninterrupted $FRESH_CRC" >&2
  exit 1
}
rm -rf "$RESUME_DIR" "$FRESH_DIR"
echo "crash/resume smoke OK: resumed from step 40, params CRC $RESUMED_CRC"

echo "== serve chaos smoke: bench_serve under injected faults (${SMOKE_DIR}) =="
cmake --build "$SMOKE_DIR" -j --target bench_serve
SERVE_OUT="${TMPDIR:-/tmp}/check_build_serve.txt"
SERVE_JSON="${TMPDIR:-/tmp}/check_build_serve_bench.json"
SERVE_NDJSON="${TMPDIR:-/tmp}/check_build_serve_metrics.ndjson"
rm -f "$SERVE_JSON" "$SERVE_NDJSON"
INFUSERKI_FAULTS="serve/decode_step=prob:0.05:7;serve/prefill=prob:0.1:3;serve/tokenize=fail@11;io/atomic_write=prob:0.5:3" \
  "$SMOKE_DIR/bench/bench_serve" \
  --batch_sweep=1,4 --requests=64 --kv_budget=8 \
  --arrival=burst --offered_qps=500 \
  --bench_json="$SERVE_JSON" \
  --metrics_export_every=20 \
  --metrics_export_ndjson="$SERVE_NDJSON" | tee "$SERVE_OUT"
grep -q '^serve_accounting=ok$' "$SERVE_OUT" || {
  echo "FAIL: serve accounting not conserved under chaos" >&2
  exit 1
}
grep -q '^serve_quantiles=ok$' "$SERVE_OUT" || {
  echo "FAIL: obs-derived quantiles diverged from the sorted reference" >&2
  exit 1
}
grep -q '^serve_shed_hints=ok$' "$SERVE_OUT" || {
  echo "FAIL: a shed response was missing its retry_after hint" >&2
  exit 1
}
test -s "$SERVE_NDJSON" || {
  echo "FAIL: live exporter left no NDJSON stream at $SERVE_NDJSON" >&2
  exit 1
}
if command -v python3 > /dev/null 2>&1; then
  python3 - "$SERVE_JSON" <<'EOF'
import json, sys
# The SLO file is an NDJSON trajectory: one JSON object per line, newest
# last. Every line must parse; the line this smoke just appended (the
# last) must be a schema-3 batch-sweep record (open-loop arrival fields
# plus the overload-control SLO counters, DESIGN.md §14).
with open(sys.argv[1]) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "trajectory must be non-empty"
bench = lines[-1]
assert bench.get("bench") == "bench_serve", bench.get("bench")
assert bench.get("schema") == 3, bench.get("schema")
for key in ("requests", "queue", "kv_budget", "max_new",
            "max_batch_tokens", "arrival", "offered_qps"):
    assert key in bench["config"], f"config missing {key!r}"
assert bench["rounds"], "rounds must be non-empty"
for row in bench["rounds"]:
    for key in ("batch_rows", "completed", "shed", "shed_rate",
                "p50_ms", "p99_ms", "p999_ms", "ttft_p50_ms",
                "inter_token_p50_ms", "req_per_s", "offered_qps",
                "achieved_qps", "brownout_mean_level"):
        assert key in row, f"round missing {key!r}"
assert "batched_speedup" in bench, "missing batched_speedup"
slo = bench["slo"]
for key in ("requests", "shed_rate", "e2e", "ttft", "inter_token",
            "shed_queue_full", "shed_tenant_cap", "shed_rate_limited",
            "shed_brownout", "shed_infeasible", "watchdog_stalls",
            "watchdog_recoveries", "brownout_mean_level"):
    assert key in slo, f"slo missing {key!r}"
for key in ("count", "p50_ms", "p99_ms", "p999_ms"):
    assert key in slo["e2e"], f"slo.e2e missing {key!r}"
print("BENCH_serve.json schema OK:", sys.argv[1])
EOF
else
  echo "FAIL: python3 is required to schema-check $SERVE_JSON" >&2
  exit 1
fi
echo "serve chaos smoke OK (accounting + quantiles conserved under faults)"

echo "== serve throughput gate: batched vs sequential (${SMOKE_DIR}) =="
BATCH_OUT="${TMPDIR:-/tmp}/check_build_batch.txt"
BATCH_SPEEDUP=""
for attempt in 1 2 3; do
  "$SMOKE_DIR/bench/bench_serve" \
    --batch_sweep=1,8 --dim=8 --layers=1 --max_new=16 \
    --requests=256 --queue=512 --kv_budget=64 \
    --bench_json="" | tee "$BATCH_OUT"
  BATCH_SPEEDUP="$(sed -n 's/^batched_speedup=//p' "$BATCH_OUT")"
  test -n "$BATCH_SPEEDUP" || {
    echo "FAIL: batched_speedup line missing from the batch sweep" >&2
    exit 1
  }
  if awk "BEGIN { exit !($BATCH_SPEEDUP >= 2.0) }"; then
    break
  fi
  echo "batched speedup ${BATCH_SPEEDUP}x below 2x on attempt ${attempt}"
done
awk "BEGIN { exit !($BATCH_SPEEDUP >= 2.0) }" || {
  echo "FAIL: batched speedup ${BATCH_SPEEDUP}x is below the 2x floor" >&2
  exit 1
}
echo "batched throughput OK: ${BATCH_SPEEDUP}x at batch 8 (>= 2x)"

echo "== tsan: race gate (build-tsan) =="
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DINFUSERKI_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target \
  race_stress_test threadpool_test kv_cache_test obs_test \
  obs_exporter_test serve_test serve_chaos_test batched_decode_test \
  adapter_registry_test admission_test
for tsan_test in race_stress_test threadpool_test kv_cache_test obs_test \
                 obs_exporter_test serve_test serve_chaos_test \
                 batched_decode_test adapter_registry_test \
                 admission_test; do
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$(pwd)/tsan.supp" \
    "$TSAN_DIR/tests/$tsan_test"
done
echo "tsan race gate OK (zero reports)"

echo "== tsa: thread-safety analysis (build-tsa) =="
TSA_OK=0
if command -v clang++ > /dev/null 2>&1; then
  # Probe the actual flag: a clang++ shim over gcc (or an ancient clang)
  # would otherwise fail the configure with a confusing error.
  if echo 'int main(){}' | clang++ -x c++ -Wthread-safety -fsyntax-only \
      - > /dev/null 2>&1; then
    TSA_OK=1
  fi
fi
if [ "$TSA_OK" -eq 1 ]; then
  TSA_DIR="${BUILD_DIR}-tsa"
  cmake -B "$TSA_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ -DINFUSERKI_THREAD_SAFETY=ON
  cmake --build "$TSA_DIR" -j
  (cd "$TSA_DIR" && ctest --output-on-failure -R '^tsa_violation_')
  echo "tsa gate OK (tree clean, seeded violations rejected)"
else
  echo "tsa: skipped (no clang++ with -Wthread-safety installed in this" \
       "container; CI runs it)"
fi

echo "== lint: format + tidy + invariants =="
if command -v clang-format > /dev/null 2>&1; then
  find src tests bench examples \
      \( -name '*.cc' -o -name '*.h' \) -print0 |
    xargs -0 clang-format --dry-run --Werror
  echo "clang-format OK"
else
  echo "clang-format: skipped (not installed in this container; CI runs it)"
fi
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  find src \( -name '*.cc' \) -print0 |
    xargs -0 clang-tidy -p "$BUILD_DIR" --quiet
  echo "clang-tidy OK"
else
  echo "clang-tidy: skipped (not installed in this container; CI runs it)"
fi
if command -v python3 > /dev/null 2>&1; then
  python3 tools/lint/check_invariants.py --root .
  python3 tools/lint/lint_selftest.py
else
  echo "FAIL: python3 is required for the invariant linter" >&2
  exit 1
fi
echo "lint stage OK"

echo "== docs: referenced paths exist =="
DOCS_FAIL=0
for doc in DESIGN.md EXPERIMENTS.md README.md ARCHITECTURE.md; do
  [ -f "$doc" ] || continue
  # Check repo-relative code/script/doc paths named in backticks. Paths
  # with shell metacharacters or flags are skipped by the grep pattern.
  # Extension-less references name build targets (bench/<target>,
  # examples/<target>) whose source carries .cc/.cpp.
  for path in $(grep -o '`[A-Za-z0-9_./-]*`' "$doc" | tr -d '`' |
                grep -E '^(src|tests|bench|scripts|examples|docs|tools)/' |
                sort -u); do
    if [ ! -e "$path" ] && [ ! -e "$path.cc" ] && [ ! -e "$path.cpp" ]; then
      echo "FAIL: $doc references missing path: $path" >&2
      DOCS_FAIL=1
    fi
  done
done
[ "$DOCS_FAIL" -eq 0 ] || exit 1
echo "docs link check OK"

echo "== check_build.sh: all green =="
