#!/bin/sh
# Tier-1 verification plus an observability smoke test.
#
#   scripts/check_build.sh [build_dir]
#
# 1. Configures + builds the default (Release) tree and runs the full test
#    suite — the same gate CI applies.
# 2. Builds bench_micro_tensor under RelWithDebInfo and runs one benchmark
#    with --metrics_out, asserting the run manifest is non-empty valid JSON.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SMOKE_DIR="${BUILD_DIR}-relwithdebinfo"

echo "== tier-1: configure + build + ctest (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "== obs smoke: bench_micro_tensor --metrics_out (${SMOKE_DIR}) =="
cmake -B "$SMOKE_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SMOKE_DIR" -j --target bench_micro_tensor

METRICS_OUT="${TMPDIR:-/tmp}/check_build_metrics.json"
rm -f "$METRICS_OUT"
"$SMOKE_DIR/bench/bench_micro_tensor" \
  --benchmark_filter=BM_Softmax \
  --benchmark_min_time=0.05 \
  --metrics_out="$METRICS_OUT"

test -s "$METRICS_OUT" || {
  echo "FAIL: $METRICS_OUT is missing or empty" >&2
  exit 1
}
if command -v python3 > /dev/null 2>&1; then
  python3 - "$METRICS_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    manifest = json.load(f)
for key in ("bench", "metrics", "spans"):
    assert key in manifest, f"manifest missing {key!r}"
counters = manifest["metrics"]["counters"]
assert counters.get("tensor/softmax_ops", 0) > 0, counters
print("manifest OK:", sys.argv[1])
EOF
else
  # No python3: at least check it looks like our manifest object.
  grep -q '"bench"' "$METRICS_OUT" && grep -q '"metrics"' "$METRICS_OUT" || {
    echo "FAIL: $METRICS_OUT does not look like a run manifest" >&2
    exit 1
  }
  echo "manifest OK (grep check): $METRICS_OUT"
fi

echo "== check_build.sh: all green =="
