// Reproduces Fig. 5: the impact of adapter position on NR/RR. The paper
// places adapters in the bottom (3-12th), middle (13-22nd), top (23-32nd),
// and all (3-32nd) FFN layers of a 32-layer model, plus all attention
// layers; positions scale proportionally to the simulator's depth.
//
// Expected shape: NR decreases from bottom to top placements, and the
// attention placement underperforms FFN placement (knowledge lives in FFN
// layers).

#include <algorithm>

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

struct Placement {
  const char* label;
  int first;
  int last;  // inclusive; -1 = deepest
  core::AdapterPlacement kind;
};

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  // Five full InfuserKI trainings: reduced per-run budget by default.
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 45;

  ObsSession obs("bench_fig5_adapter_position", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();

  int layers = static_cast<int>(config.arch.num_layers);
  // Proportional mapping of the paper's 32-layer bands onto our depth.
  // Layer 0 is always excluded: the paper's bands start at its 3rd layer,
  // and adapting the embedding-adjacent layer destabilizes training at
  // simulator scale.
  auto scaled = [&](int paper_layer) {
    return std::max(1, paper_layer * layers / 32);
  };
  const Placement placements[] = {
      {"FFN all (3-32nd)", scaled(2), -1, core::AdapterPlacement::kFfn},
      {"FFN bottom (3-12th)", scaled(2), scaled(11),
       core::AdapterPlacement::kFfn},
      {"FFN middle (13-22nd)", scaled(12), scaled(21),
       core::AdapterPlacement::kFfn},
      {"FFN top (23-32nd)", scaled(22), layers - 1,
       core::AdapterPlacement::kFfn},
      {"Attention all (3-32nd)", scaled(2), -1,
       core::AdapterPlacement::kAttention},
  };

  util::TablePrinter table({"Placement", "NR", "RR", "F1_Unseen"});
  for (const Placement& placement : placements) {
    eval::MethodScores scores =
        RunMethod(experiment, [&](model::TransformerLM* lm) {
          core::InfuserKiOptions options;
          options.adapters.first_layer = placement.first;
          options.adapters.last_layer = placement.last;
          options.adapters.placement = placement.kind;
          options.qa_epochs = budget.infuserki_qa_epochs;
          return std::make_unique<core::InfuserKi>(lm, options);
        });
    table.AddRow({placement.label, Fmt(scores.nr), Fmt(scores.rr),
                  Fmt(scores.f1_unseen)});
    std::cerr << "[bench] " << placement.label << " done\n";
  }
  std::cout << "\n=== Fig. 5: impact of adapter positions ===\n\n";
  table.Print(std::cout);
  (void)table.WriteCsv("fig5_adapter_position.csv");
  std::cout << "\nPaper shape: NR highest for bottom/all FFN placements, "
               "declining toward top layers; attention placement lowest "
               "NR.\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
