// Serving-layer bench (DESIGN.md §10/§11): floods InferenceServer with
// asynchronous requests at each batch width in the sweep and reports
// throughput, p50/p99 latency, and shed rate, plus a conservation check
// over the serve/ accounting counters. The `batched_speedup=` line is the
// continuous-batching headline: throughput at the widest batch over the
// sequential (--batch_sweep row 1) baseline, gated at >= 2x by
// check_build.sh. Doubles as the check_build.sh chaos smoke: run with
// INFUSERKI_FAULTS armed and an undersized --kv_budget, the final
// "serve_accounting=ok" line proves no request was lost or double-counted
// under fault churn.
//
// Flags: --batch_sweep=1,2,4,8 (comma list of max_batch_rows)
// --max_batch_tokens=256 --requests=96 --queue=32 --kv_budget=64
// --max_new=8 --deadline_ms=0 (0 = none) --seed=17
// --arrival=closed|poisson|burst (closed = flood everything up front;
// poisson/burst pace submissions open-loop at --offered_qps from the
// seeded RNG — poisson draws exponential gaps, burst sends groups of 16
// back-to-back — and additionally report offered vs achieved qps plus the
// mean brownout level observed while the round ran, DESIGN.md §14)
// --bench_json=<path> (SLO trajectory output, e.g. BENCH_serve.json;
// appended as one NDJSON line per run so the file accumulates a
// trajectory across commits) plus the shared --trace_out / --metrics_out /
// --metrics_export_every / --metrics_export_ndjson / --prom_out
// observability outputs.
//
// Latency quantiles are derived from the obs registry's exponential-bucket
// histograms and cross-checked against this binary's own sorted-vector
// percentiles: both must land in the same (or an adjacent) histogram
// bucket, printed as the "serve_quantiles=ok" gate line.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "model/transformer.h"
#include "obs/atomic_io.h"
#include "obs/json.h"
#include "obs/slo_report.h"
#include "serve/server.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace infuserki {
namespace {

std::vector<size_t> ParseBatchList(const std::string& spec) {
  std::vector<size_t> batch_rows;
  for (const std::string& piece : util::Split(spec, ",")) {
    int64_t value = std::atoll(piece.c_str());
    if (value > 0) batch_rows.push_back(static_cast<size_t>(value));
  }
  if (batch_rows.empty()) batch_rows = {1, 2, 4, 8};
  return batch_rows;
}

/// Latency percentile over completed requests, nearest-rank with
/// k = ceil(p * n) — the same rank convention as obs::HistogramQuantile,
/// so the cross-check below compares the same underlying sample.
double PercentileMs(const std::vector<double>& sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  size_t n = sorted_seconds.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted_seconds[rank - 1] * 1e3;
}

/// "Within one bucket": the obs-derived quantile and the sorted-vector
/// reference must land in the same or an adjacent exponential bucket
/// (adjacency absorbs boundary interpolation), i.e. within 2x relative.
bool WithinOneBucket(double obs_ms, double local_ms) {
  double obs_s = obs_ms * 1e-3;
  double local_s = local_ms * 1e-3;
  size_t obs_bucket = obs::Histogram::BucketIndexFor(obs_s);
  size_t local_bucket = obs::Histogram::BucketIndexFor(local_s);
  size_t hi = std::max(obs_bucket, local_bucket);
  size_t lo = std::min(obs_bucket, local_bucket);
  return hi - lo <= 1;
}

/// One batch-width round of the sweep, as persisted to --bench_json.
struct RoundResult {
  size_t batch_rows = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t degraded = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double ttft_p50_ms = 0.0;
  double ttft_p99_ms = 0.0;
  double inter_token_p50_ms = 0.0;
  double inter_token_p99_ms = 0.0;
  double req_per_s = 0.0;
  // Open-loop fields (zero in the closed-loop default): the offered
  // arrival rate, the rate the server actually sustained, and the mean
  // brownout level sampled by the watchdog while the round ran.
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double brownout_mean_level = 0.0;
};

std::string RoundJson(const RoundResult& round) {
  obs::JsonWriter out;
  out.AddUint("batch_rows", round.batch_rows)
      .AddUint("completed", round.completed)
      .AddUint("shed", round.shed)
      .AddUint("deadline_misses", round.deadline)
      .AddUint("degraded", round.degraded)
      .AddNumber("shed_rate", round.shed_rate)
      .AddNumber("p50_ms", round.p50_ms)
      .AddNumber("p99_ms", round.p99_ms)
      .AddNumber("p999_ms", round.p999_ms)
      .AddNumber("ttft_p50_ms", round.ttft_p50_ms)
      .AddNumber("ttft_p99_ms", round.ttft_p99_ms)
      .AddNumber("inter_token_p50_ms", round.inter_token_p50_ms)
      .AddNumber("inter_token_p99_ms", round.inter_token_p99_ms)
      .AddNumber("req_per_s", round.req_per_s)
      .AddNumber("offered_qps", round.offered_qps)
      .AddNumber("achieved_qps", round.achieved_qps)
      .AddNumber("brownout_mean_level", round.brownout_mean_level);
  return out.Finish();
}

/// Cumulative-delta view of one histogram between two registry snapshots.
obs::HistogramStats HistogramDelta(const obs::Registry::Snapshot& before,
                                   const obs::Registry::Snapshot& after,
                                   const std::string& name) {
  auto after_it = after.histograms.find(name);
  if (after_it == after.histograms.end()) return obs::HistogramStats{};
  auto before_it = before.histograms.find(name);
  if (before_it == before.histograms.end()) return after_it->second;
  return obs::SubtractHistogramStats(after_it->second, before_it->second);
}

struct CounterSnapshot {
  uint64_t requests, completed, shed, deadline, cancelled, failures;
  uint64_t degraded, retries, evictions, prefix_hits;
};

CounterSnapshot ReadCounters() {
  obs::Registry& registry = obs::Registry::Get();
  auto value = [&](const char* name) {
    return registry.GetCounter(name)->Value();
  };
  return {value("serve/requests"),       value("serve/completed"),
          value("serve/shed"),           value("serve/deadline_misses"),
          value("serve/cancelled"),      value("serve/failures"),
          value("serve/degraded"),       value("serve/retries"),
          value("serve/evictions"),      value("serve/prefix_hits")};
}

}  // namespace
}  // namespace infuserki

int main(int argc, char** argv) {
  using namespace infuserki;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);
  bench::ObsSession obs_session("bench_serve", flags);

  const std::vector<size_t> batch_sweep =
      ParseBatchList(flags.GetString("batch_sweep", "1,2,4,8"));
  const size_t max_batch_tokens =
      static_cast<size_t>(flags.GetInt("max_batch_tokens", 256));
  const size_t requests =
      static_cast<size_t>(flags.GetInt("requests", 96));
  const size_t queue = static_cast<size_t>(flags.GetInt("queue", 32));
  const size_t kv_budget =
      static_cast<size_t>(flags.GetInt("kv_budget", 64));
  const size_t max_new = static_cast<size_t>(flags.GetInt("max_new", 8));
  const int64_t deadline_ms = flags.GetInt("deadline_ms", 0);
  const std::string bench_json = flags.GetString("bench_json", "");
  const std::string arrival = flags.GetString("arrival", "closed");
  const double offered_qps = flags.GetDouble("offered_qps", 0.0);
  if (arrival != "closed" && arrival != "poisson" && arrival != "burst") {
    std::cerr << "unknown --arrival=" << arrival
              << " (want closed|poisson|burst)\n";
    return 1;
  }
  const bool open_loop = arrival != "closed";
  if (open_loop && offered_qps <= 0.0) {
    std::cerr << "--arrival=" << arrival
              << " requires --offered_qps > 0\n";
    return 1;
  }

  obs_session.manifest().AddConfig("requests",
                                   static_cast<int64_t>(requests));
  obs_session.manifest().AddConfig("queue", static_cast<int64_t>(queue));
  obs_session.manifest().AddConfig("kv_budget",
                                   static_cast<int64_t>(kv_budget));

  // Untrained model: serving cost does not depend on weight values.
  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa",
      "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi",
  };
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = static_cast<size_t>(flags.GetInt("dim", 32));
  config.num_layers = static_cast<size_t>(flags.GetInt("layers", 4));
  config.num_heads = 2;
  config.ffn_hidden = config.dim * 2;
  config.max_seq_len = 48;
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 17)));
  model::TransformerLM lm(config, &rng);

  const std::vector<std::string> prompts = {
      "alpha beta gamma",
      "lambda mu nu xi",
      "sigma tau upsilon phi chi",
      "theta iota kappa lambda mu nu",
      "epsilon zeta",
      "pi rho sigma",
      "chi phi upsilon tau",
      "beta delta zeta theta kappa",
  };

  util::TablePrinter table({"batch", "completed", "shed", "deadline",
                            "degraded", "p50_ms", "p99_ms", "p999_ms",
                            "ttft_p50_ms", "req_per_s"});
  // Each round's server owns the export thread (queue-depth sampling per
  // tick); taking the options stops the session's own exporter so the two
  // never write the same files.
  obs::ExporterOptions exporter_options = obs_session.TakeExporterOptions();
  obs::Registry& registry = obs::Registry::Get();
  bool accounting_ok = true;
  bool quantiles_ok = true;
  bool hints_ok = true;
  std::vector<RoundResult> rounds;
  obs::Registry::Snapshot run_before = registry.TakeSnapshot();

  for (size_t batch_rows : batch_sweep) {
    CounterSnapshot before = ReadCounters();
    obs::Registry::Snapshot round_before = registry.TakeSnapshot();
    serve::ServeOptions options;
    options.max_batch_rows = batch_rows;
    options.max_batch_tokens = max_batch_tokens;
    options.queue_capacity = queue;
    options.kv_budget_tokens = kv_budget;
    options.default_max_new_tokens = max_new;
    options.retry = {.max_attempts = 3, .base_delay_ms = 1};
    options.exporter = exporter_options;
    serve::InferenceServer server(lm, tokenizer, options);

    // Open-loop arrival schedule: target submit times in seconds from the
    // round start, drawn from the seeded RNG so every run replays the same
    // offered trace. Poisson draws exponential inter-arrival gaps at
    // `offered_qps`; burst sends groups of 16 back-to-back, then one gap
    // sized for the whole group (same mean rate, spiky shape).
    util::Rng arrivals(static_cast<uint64_t>(flags.GetInt("seed", 17)) +
                       batch_rows);
    std::vector<double> arrival_times(requests, 0.0);
    if (open_loop) {
      double at = 0.0;
      for (size_t k = 0; k < requests; ++k) {
        arrival_times[k] = at;
        if (arrival == "poisson") {
          double u = arrivals.Uniform(0.0, 1.0);
          at += -std::log(1.0 - u) / offered_qps;
        } else if (k % 16 == 15) {
          at += 16.0 / offered_qps * arrivals.Uniform(0.5, 1.5);
        }
      }
    }

    util::Stopwatch watch;
    std::vector<std::future<serve::Response>> pending;
    pending.reserve(requests);
    for (size_t k = 0; k < requests; ++k) {
      if (open_loop) {
        // Open-loop contract: never wait on the server, only on the clock.
        double wait_s = arrival_times[k] - watch.ElapsedSeconds();
        if (wait_s > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
        }
      }
      serve::Request request;
      request.prompt = prompts[k % prompts.size()];
      request.max_new_tokens = max_new;
      if (deadline_ms > 0) {
        request.deadline = std::chrono::milliseconds(deadline_ms);
      }
      pending.push_back(server.Submit(std::move(request)));
    }
    std::vector<double> latencies;
    latencies.reserve(requests);
    for (std::future<serve::Response>& future : pending) {
      serve::Response response = future.get();
      if (response.status.ok()) {
        latencies.push_back(response.total_seconds);
      } else if (response.status.code() ==
                 util::StatusCode::kResourceExhausted) {
        // Every shed response must carry a usable client backoff hint
        // (DESIGN.md §14) — in the field and parseable from the status.
        if (response.retry_after_seconds <= 0.0 ||
            util::RetryAfterSeconds(response.status) <= 0.0) {
          hints_ok = false;
          std::cerr << "shed response without retry_after hint at "
                       "batch_rows="
                    << batch_rows << ": " << response.status << "\n";
        }
      }
    }
    double elapsed = watch.ElapsedSeconds();
    server.Shutdown();

    CounterSnapshot after = ReadCounters();
    uint64_t round_requests = after.requests - before.requests;
    uint64_t completed = after.completed - before.completed;
    uint64_t shed = after.shed - before.shed;
    uint64_t deadline = after.deadline - before.deadline;
    uint64_t degraded = after.degraded - before.degraded;
    uint64_t classified = completed + shed + deadline +
                          (after.cancelled - before.cancelled) +
                          (after.failures - before.failures);
    if (round_requests != requests || classified != round_requests) {
      accounting_ok = false;
      std::cerr << "accounting mismatch at batch_rows=" << batch_rows
                << ": submitted=" << round_requests
                << " classified=" << classified << "\n";
    }

    // Headline quantiles come from the obs registry's exponential-bucket
    // histograms; the locally sorted latency vector is kept as the
    // cross-check reference ("within one bucket" = same underlying rank,
    // bounded bucket-interpolation error).
    obs::Registry::Snapshot round_after = registry.TakeSnapshot();
    obs::HistogramStats e2e =
        HistogramDelta(round_before, round_after, "serve/e2e_ok_seconds");
    obs::HistogramStats ttft =
        HistogramDelta(round_before, round_after, "serve/ttft_seconds");
    obs::HistogramStats inter_token = HistogramDelta(
        round_before, round_after, "serve/inter_token_seconds");

    std::sort(latencies.begin(), latencies.end());
    double p50 = e2e.p50 * 1e3;
    double p99 = e2e.p99 * 1e3;
    double p999 = e2e.p999 * 1e3;
    double local_p50 = PercentileMs(latencies, 0.50);
    double local_p99 = PercentileMs(latencies, 0.99);
    if (!latencies.empty()) {
      if (e2e.count != latencies.size()) {
        quantiles_ok = false;
        std::cerr << "quantile count mismatch at batch_rows=" << batch_rows
                  << ": obs=" << e2e.count
                  << " local=" << latencies.size() << "\n";
      }
      if (!WithinOneBucket(p50, local_p50) ||
          !WithinOneBucket(p99, local_p99)) {
        quantiles_ok = false;
        std::cerr << "quantile divergence at batch_rows=" << batch_rows
                  << ": obs p50_ms=" << p50 << " local=" << local_p50
                  << ", obs p99_ms=" << p99 << " local=" << local_p99
                  << "\n";
      }
    }
    double throughput =
        elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;

    RoundResult round;
    round.batch_rows = batch_rows;
    round.completed = completed;
    round.shed = shed;
    round.deadline = deadline;
    round.degraded = degraded;
    round.shed_rate = round_requests > 0
                          ? static_cast<double>(shed) /
                                static_cast<double>(round_requests)
                          : 0.0;
    round.p50_ms = p50;
    round.p99_ms = p99;
    round.p999_ms = p999;
    round.ttft_p50_ms = ttft.p50 * 1e3;
    round.ttft_p99_ms = ttft.p99 * 1e3;
    round.inter_token_p50_ms = inter_token.p50 * 1e3;
    round.inter_token_p99_ms = inter_token.p99 * 1e3;
    round.req_per_s = throughput;
    if (open_loop) {
      round.offered_qps = offered_qps;
      round.achieved_qps = throughput;
      obs::HistogramStats brownout = HistogramDelta(
          round_before, round_after, "serve/brownout_level_samples");
      round.brownout_mean_level =
          brownout.count > 0
              ? brownout.sum / static_cast<double>(brownout.count)
              : 0.0;
    }
    rounds.push_back(round);

    table.AddRow({std::to_string(batch_rows), std::to_string(completed),
                  std::to_string(shed), std::to_string(deadline),
                  std::to_string(degraded), util::FormatFloat(p50, 2),
                  util::FormatFloat(p99, 2), util::FormatFloat(p999, 2),
                  util::FormatFloat(round.ttft_p50_ms, 2),
                  util::FormatFloat(throughput, 1)});
    std::cout << "serve_bench: batch_rows=" << batch_rows
              << " requests=" << round_requests
              << " completed=" << completed << " shed=" << shed
              << " deadline_misses=" << deadline
              << " degraded=" << degraded
              << " retries=" << (after.retries - before.retries)
              << " evictions=" << (after.evictions - before.evictions)
              << " prefix_hits=" << (after.prefix_hits - before.prefix_hits)
              << " p50_ms=" << util::FormatFloat(p50, 3)
              << " p99_ms=" << util::FormatFloat(p99, 3)
              << " p999_ms=" << util::FormatFloat(p999, 3)
              << " ttft_p50_ms=" << util::FormatFloat(round.ttft_p50_ms, 3)
              << " inter_token_p50_ms="
              << util::FormatFloat(round.inter_token_p50_ms, 3)
              << " req_per_s=" << util::FormatFloat(throughput, 1);
    if (open_loop) {
      std::cout << " arrival=" << arrival << " offered_qps="
                << util::FormatFloat(round.offered_qps, 1)
                << " achieved_qps="
                << util::FormatFloat(round.achieved_qps, 1)
                << " shed_rate=" << util::FormatFloat(round.shed_rate, 3)
                << " brownout_mean_level="
                << util::FormatFloat(round.brownout_mean_level, 3);
    }
    std::cout << "\n";

    // Published per batch width under the bench_* glob (DESIGN.md §6) so
    // --metrics_out manifests carry the headline numbers; later rounds
    // overwrite earlier ones, the table keeps the full sweep.
    registry.GetGauge("serve/bench_p50_ms")->Set(p50);
    registry.GetGauge("serve/bench_p99_ms")->Set(p99);
    registry.GetGauge("serve/bench_p999_ms")->Set(p999);
    registry.GetGauge("serve/bench_ttft_p50_ms")->Set(round.ttft_p50_ms);
    registry.GetGauge("serve/bench_req_per_s")->Set(throughput);
    registry.GetGauge("serve/bench_completed")
        ->Set(static_cast<double>(completed));
    registry.GetGauge("serve/bench_shed")->Set(static_cast<double>(shed));
  }

  std::cout << "\n=== bench_serve (requests=" << requests
            << " queue=" << queue << " kv_budget=" << kv_budget
            << " max_new=" << max_new
            << " max_batch_tokens=" << max_batch_tokens << ") ===\n\n";
  table.Print(std::cout);
  std::cout << "\nserve_accounting=" << (accounting_ok ? "ok" : "FAILED")
            << "\n";
  std::cout << "serve_quantiles=" << (quantiles_ok ? "ok" : "FAILED")
            << "\n";
  std::cout << "serve_shed_hints=" << (hints_ok ? "ok" : "FAILED") << "\n";

  // Continuous-batching headline: throughput at the widest batch in the
  // sweep over the sequential baseline (the batch_rows=1 round). Printed
  // only when the sweep contains both, which is how check_build.sh invokes
  // it for the >= 2x floor.
  double batched_speedup = 0.0;
  {
    const RoundResult* baseline = nullptr;
    const RoundResult* widest = nullptr;
    for (const RoundResult& round : rounds) {
      if (round.batch_rows == 1) baseline = &round;
      if (widest == nullptr || round.batch_rows > widest->batch_rows) {
        widest = &round;
      }
    }
    if (baseline != nullptr && widest != nullptr &&
        widest->batch_rows > 1 && baseline->req_per_s > 0.0) {
      batched_speedup = widest->req_per_s / baseline->req_per_s;
      registry.GetGauge("serve/bench_batched_speedup")
          ->Set(batched_speedup);
      std::cout << "batched_speedup="
                << util::FormatFloat(batched_speedup, 3) << "\n";
    }
  }

  // SLO trajectory point (ROADMAP items 2 and 5): per-round quantiles plus
  // the whole-run SLO summary, everything sourced from the obs registry.
  // Appended as one NDJSON line so BENCH_serve.json accumulates one point
  // per commit — the across-PR trajectory README.md describes.
  if (!bench_json.empty()) {
    obs::Registry::Snapshot run_after = registry.TakeSnapshot();
    obs::SloReport slo = obs::BuildSloReport(run_before, run_after);
    obs::JsonWriter config_json;
    config_json.AddUint("requests", requests)
        .AddUint("queue", queue)
        .AddUint("kv_budget", kv_budget)
        .AddUint("max_new", max_new)
        .AddUint("max_batch_tokens", max_batch_tokens)
        .AddInt("deadline_ms", deadline_ms)
        .AddString("arrival", arrival)
        .AddNumber("offered_qps", offered_qps);
    std::ostringstream rounds_json;
    rounds_json << "[";
    for (size_t i = 0; i < rounds.size(); ++i) {
      if (i > 0) rounds_json << ",";
      rounds_json << RoundJson(rounds[i]);
    }
    rounds_json << "]";
    obs::JsonWriter out;
    // Schema 3: rounds carry offered_qps/achieved_qps/brownout_mean_level
    // and the slo block the per-reason shed + watchdog counters (§14).
    out.AddString("bench", "bench_serve")
        .AddUint("schema", 3)
        .AddRaw("config", config_json.Finish())
        .AddNumber("batched_speedup", batched_speedup)
        .AddRaw("rounds", rounds_json.str())
        .AddRaw("slo", obs::SloReportJson(slo));
    std::string history;
    {
      std::ifstream existing(bench_json);
      if (existing) {
        std::ostringstream os;
        os << existing.rdbuf();
        history = os.str();
        if (!history.empty() && history.back() != '\n') history += '\n';
      }
    }
    if (obs::WriteFileAtomically(bench_json,
                                 history + out.Finish() + "\n")) {
      std::cout << "(appended SLO trajectory point to " << bench_json
                << ")\n";
    } else {
      std::cerr << "bench_json write failed: " << bench_json << "\n";
    }
  }
  obs_session.Finish();
  return (accounting_ok && quantiles_ok && hints_ok) ? 0 : 1;
}
