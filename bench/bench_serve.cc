// Serving-layer bench (DESIGN.md §10): floods InferenceServer with
// asynchronous requests at each worker count and reports throughput,
// p50/p99 latency, and shed rate, plus a conservation check over the
// serve/ accounting counters. Doubles as the check_build.sh chaos smoke:
// run with INFUSERKI_FAULTS armed and an undersized --kv_budget, the final
// "serve_accounting=ok" line proves no request was lost or double-counted
// under fault churn.
//
// Flags: --workers=1,2,4 (comma list) --requests=96 --queue=32
// --kv_budget=64 --max_new=8 --deadline_ms=0 (0 = none) --seed=17
// plus the shared --trace_out / --metrics_out observability outputs.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "model/transformer.h"
#include "serve/server.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace infuserki {
namespace {

std::vector<size_t> ParseWorkerList(const std::string& spec) {
  std::vector<size_t> workers;
  for (const std::string& piece : util::Split(spec, ",")) {
    int64_t value = std::atoll(piece.c_str());
    if (value > 0) workers.push_back(static_cast<size_t>(value));
  }
  if (workers.empty()) workers = {1, 2, 4};
  return workers;
}

/// Latency percentile over completed requests (nearest-rank).
double PercentileMs(std::vector<double> sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * (sorted_seconds.size() - 1));
  return sorted_seconds[rank] * 1e3;
}

struct CounterSnapshot {
  uint64_t requests, completed, shed, deadline, cancelled, failures;
  uint64_t degraded, retries, evictions, prefix_hits;
};

CounterSnapshot ReadCounters() {
  obs::Registry& registry = obs::Registry::Get();
  auto value = [&](const char* name) {
    return registry.GetCounter(name)->Value();
  };
  return {value("serve/requests"),       value("serve/completed"),
          value("serve/shed"),           value("serve/deadline_misses"),
          value("serve/cancelled"),      value("serve/failures"),
          value("serve/degraded"),       value("serve/retries"),
          value("serve/evictions"),      value("serve/prefix_hits")};
}

}  // namespace
}  // namespace infuserki

int main(int argc, char** argv) {
  using namespace infuserki;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);
  bench::ObsSession obs_session("bench_serve", flags);

  const std::vector<size_t> worker_counts =
      ParseWorkerList(flags.GetString("workers", "1,2,4"));
  const size_t requests =
      static_cast<size_t>(flags.GetInt("requests", 96));
  const size_t queue = static_cast<size_t>(flags.GetInt("queue", 32));
  const size_t kv_budget =
      static_cast<size_t>(flags.GetInt("kv_budget", 64));
  const size_t max_new = static_cast<size_t>(flags.GetInt("max_new", 8));
  const int64_t deadline_ms = flags.GetInt("deadline_ms", 0);

  obs_session.manifest().AddConfig("requests",
                                   static_cast<int64_t>(requests));
  obs_session.manifest().AddConfig("queue", static_cast<int64_t>(queue));
  obs_session.manifest().AddConfig("kv_budget",
                                   static_cast<int64_t>(kv_budget));

  // Untrained model: serving cost does not depend on weight values.
  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa",
      "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi",
  };
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = static_cast<size_t>(flags.GetInt("dim", 32));
  config.num_layers = static_cast<size_t>(flags.GetInt("layers", 4));
  config.num_heads = 2;
  config.ffn_hidden = config.dim * 2;
  config.max_seq_len = 48;
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 17)));
  model::TransformerLM lm(config, &rng);

  const std::vector<std::string> prompts = {
      "alpha beta gamma",
      "lambda mu nu xi",
      "sigma tau upsilon phi chi",
      "theta iota kappa lambda mu nu",
      "epsilon zeta",
      "pi rho sigma",
      "chi phi upsilon tau",
      "beta delta zeta theta kappa",
  };

  util::TablePrinter table({"workers", "completed", "shed", "deadline",
                            "degraded", "p50_ms", "p99_ms", "req_per_s"});
  obs::Registry& registry = obs::Registry::Get();
  bool accounting_ok = true;

  for (size_t workers : worker_counts) {
    CounterSnapshot before = ReadCounters();
    serve::ServeOptions options;
    options.num_workers = workers;
    options.queue_capacity = queue;
    options.kv_budget_tokens = kv_budget;
    options.default_max_new_tokens = max_new;
    options.retry = {.max_attempts = 3, .base_delay_ms = 1};
    serve::InferenceServer server(lm, tokenizer, options);

    util::Stopwatch watch;
    std::vector<std::future<serve::Response>> pending;
    pending.reserve(requests);
    for (size_t k = 0; k < requests; ++k) {
      serve::Request request;
      request.prompt = prompts[k % prompts.size()];
      request.max_new_tokens = max_new;
      if (deadline_ms > 0) {
        request.deadline = std::chrono::milliseconds(deadline_ms);
      }
      pending.push_back(server.Submit(std::move(request)));
    }
    std::vector<double> latencies;
    latencies.reserve(requests);
    for (std::future<serve::Response>& future : pending) {
      serve::Response response = future.get();
      if (response.status.ok()) {
        latencies.push_back(response.total_seconds);
      }
    }
    double elapsed = watch.ElapsedSeconds();
    server.Shutdown();

    CounterSnapshot after = ReadCounters();
    uint64_t round_requests = after.requests - before.requests;
    uint64_t completed = after.completed - before.completed;
    uint64_t shed = after.shed - before.shed;
    uint64_t deadline = after.deadline - before.deadline;
    uint64_t degraded = after.degraded - before.degraded;
    uint64_t classified = completed + shed + deadline +
                          (after.cancelled - before.cancelled) +
                          (after.failures - before.failures);
    if (round_requests != requests || classified != round_requests) {
      accounting_ok = false;
      std::cerr << "accounting mismatch at workers=" << workers
                << ": submitted=" << round_requests
                << " classified=" << classified << "\n";
    }

    std::sort(latencies.begin(), latencies.end());
    double p50 = PercentileMs(latencies, 0.50);
    double p99 = PercentileMs(latencies, 0.99);
    double throughput =
        elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;

    table.AddRow({std::to_string(workers), std::to_string(completed),
                  std::to_string(shed), std::to_string(deadline),
                  std::to_string(degraded), util::FormatFloat(p50, 2),
                  util::FormatFloat(p99, 2),
                  util::FormatFloat(throughput, 1)});
    std::cout << "serve_bench: workers=" << workers
              << " requests=" << round_requests
              << " completed=" << completed << " shed=" << shed
              << " deadline_misses=" << deadline
              << " degraded=" << degraded
              << " retries=" << (after.retries - before.retries)
              << " evictions=" << (after.evictions - before.evictions)
              << " prefix_hits=" << (after.prefix_hits - before.prefix_hits)
              << " p50_ms=" << util::FormatFloat(p50, 3)
              << " p99_ms=" << util::FormatFloat(p99, 3)
              << " req_per_s=" << util::FormatFloat(throughput, 1) << "\n";

    // Published per worker count under the bench_* glob (DESIGN.md §6) so
    // --metrics_out manifests carry the headline numbers; later rounds
    // overwrite earlier ones, the table keeps the full sweep.
    registry.GetGauge("serve/bench_p50_ms")->Set(p50);
    registry.GetGauge("serve/bench_p99_ms")->Set(p99);
    registry.GetGauge("serve/bench_req_per_s")->Set(throughput);
    registry.GetGauge("serve/bench_completed")
        ->Set(static_cast<double>(completed));
    registry.GetGauge("serve/bench_shed")->Set(static_cast<double>(shed));
  }

  std::cout << "\n=== bench_serve (requests=" << requests
            << " queue=" << queue << " kv_budget=" << kv_budget
            << " max_new=" << max_new << ") ===\n\n";
  table.Print(std::cout);
  std::cout << "\nserve_accounting=" << (accounting_ok ? "ok" : "FAILED")
            << "\n";
  obs_session.Finish();
  return accounting_ok ? 0 : 1;
}
