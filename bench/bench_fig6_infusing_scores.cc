// Reproduces Fig. 6: the distribution of infusing scores r^l for known vs
// unknown test samples, per transformer layer.
//
// Expected shape: scores are much lower on known samples (the gate blocks
// interference), and unknown-sample scores concentrate in the bottom
// layers.

#include "bench/bench_common.h"
#include "kg/mcq.h"

namespace infuserki::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 55;

  ObsSession obs("bench_fig6_infusing_scores", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();

  std::unique_ptr<model::TransformerLM> lm = experiment.CloneBaseModel();
  core::InfuserKiOptions options;
  options.adapters.first_layer = 1;
  options.qa_epochs = budget.infuserki_qa_epochs;
  core::InfuserKi method(lm.get(), options);
  method.Train(experiment.BuildTrainData());

  // Mean per-layer infusing score over gold-continuation forwards.
  auto layer_means = [&](const std::vector<kg::Mcq>& set) {
    std::vector<double> total(config.arch.num_layers, 0.0);
    std::vector<size_t> count(config.arch.num_layers, 0);
    tensor::NoGradGuard no_grad;
    model::ForwardOptions forward = method.Forward();
    for (const kg::Mcq& mcq : set) {
      std::string text = kg::FormatQuestionPrompt(mcq) + " " +
                         mcq.options[static_cast<size_t>(mcq.correct)];
      (void)lm->Hidden(
          experiment.tokenizer().EncodeWithSpecials(text, false), forward);
      for (const auto& [layer, score] : method.stack().infusing_scores()) {
        total[static_cast<size_t>(layer)] += score;
        ++count[static_cast<size_t>(layer)];
      }
    }
    std::vector<double> means;
    for (size_t l = 0; l < total.size(); ++l) {
      means.push_back(count[l] == 0 ? 0.0
                                    : total[l] /
                                          static_cast<double>(count[l]));
    }
    return means;
  };

  std::vector<double> known = layer_means(experiment.rr_set());
  std::vector<double> unknown = layer_means(experiment.nr_set());

  std::cout << "\n=== Fig. 6: infusing scores, known vs unknown ===\n\n";
  util::TablePrinter table({"Layer", "known r^l", "unknown r^l"});
  double known_mean = 0.0, unknown_mean = 0.0;
  size_t adapted = 0;
  for (size_t l = 0; l < known.size(); ++l) {
    if (!method.stack().IsAdapted(static_cast<int>(l))) continue;
    table.AddRow({std::to_string(l), Fmt(known[l]), Fmt(unknown[l])});
    known_mean += known[l];
    unknown_mean += unknown[l];
    ++adapted;
  }
  table.Print(std::cout);
  (void)table.WriteCsv("fig6_infusing_scores.csv");
  std::cout << "\nmean known r = " << Fmt(known_mean / adapted)
            << ", mean unknown r = " << Fmt(unknown_mean / adapted)
            << "\nPaper shape: known scores near zero; unknown scores "
               "substantially higher, concentrated in lower layers.\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
