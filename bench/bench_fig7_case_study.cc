// Reproduces Fig. 7 (case study): per-option probability distributions for
// the vanilla model, LoRA, and InfuserKI on two cases —
//   (a) a fact the vanilla model gets wrong (successful injection), and
//   (b) a fact the vanilla model knows (LoRA-style forgetting risk).

#include "bench/bench_common.h"
#include "kg/mcq.h"
#include "model/generation.h"

namespace infuserki::bench {
namespace {

void PrintCase(const eval::Experiment& experiment, const kg::Mcq& mcq,
               const model::TransformerLM& vanilla,
               const model::TransformerLM& lora_lm,
               const model::ForwardOptions& lora_fwd,
               const model::TransformerLM& ki_lm,
               const model::ForwardOptions& ki_fwd) {
  std::cout << "Q: " << mcq.question << "\n";
  for (size_t i = 0; i < mcq.options.size(); ++i) {
    std::cout << "  (" << kg::OptionLetter(static_cast<int>(i)) << ") "
              << mcq.options[i]
              << (static_cast<int>(i) == mcq.correct ? "   <- gold" : "")
              << "\n";
  }
  std::string prompt = kg::FormatQuestionPrompt(mcq);
  std::vector<std::string> options(mcq.options.begin(), mcq.options.end());
  auto row = [&](const char* name, const model::TransformerLM& lm,
                 const model::ForwardOptions& fwd) {
    model::OptionScores scores =
        model::ScoreOptions(lm, experiment.tokenizer(), prompt, options, fwd);
    std::cout << "  " << name << ":";
    for (size_t i = 0; i < scores.probabilities.size(); ++i) {
      std::cout << "  " << kg::OptionLetter(static_cast<int>(i)) << "="
                << util::FormatFloat(scores.probabilities[i], 3);
    }
    std::cout << "  -> picks (" << kg::OptionLetter(scores.best) << ")"
              << (scores.best == mcq.correct ? " CORRECT" : " wrong")
              << "\n";
  };
  row("LLaMa*    ", vanilla, {});
  row("LoRA      ", lora_lm, lora_fwd);
  row("InfuserKI ", ki_lm, ki_fwd);
  std::cout << "\n";
}

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 55;

  ObsSession obs("bench_fig7_case_study", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();

  // Train LoRA without the known-sample replay mix: Fig. 7(b) demonstrates
  // forgetting on a knowledge-integration run focused on new facts.
  std::unique_ptr<model::TransformerLM> lora_lm =
      experiment.CloneBaseModel();
  peft::LoraOptions lora_options;
  lora_options.epochs = budget.baseline_epochs;
  lora_options.rank = 8;
  lora_options.alpha = 16.0f;
  lora_options.lr = 3e-3f;
  peft::LoraMethod lora(lora_lm.get(), lora_options);
  core::KiTrainData lora_data = experiment.BuildTrainData();
  lora_data.known_qa.clear();  // no replay: the Fig. 1/7 forgetting setup
  lora.Train(lora_data);

  std::unique_ptr<model::TransformerLM> ki_lm = experiment.CloneBaseModel();
  core::InfuserKiOptions ki_options;
  ki_options.adapters.first_layer = 1;
  ki_options.qa_epochs = budget.infuserki_qa_epochs;
  core::InfuserKi ki(ki_lm.get(), ki_options);
  ki.Train(experiment.BuildTrainData());

  std::cout << "\n=== Fig. 7: case study ===\n\n";
  // (a) injection case: a previously-unknown fact.
  std::cout << "(a) Injecting knowledge LLaMa* lacks:\n";
  PrintCase(experiment, experiment.nr_set().front(), experiment.base_lm(),
            *lora_lm, lora.Forward(), *ki_lm, ki.Forward());

  // (b) forgetting case: find a known fact LoRA flips but InfuserKI keeps.
  std::cout << "(b) Retaining knowledge LLaMa* already has:\n";
  const kg::Mcq* chosen = &experiment.rr_set().front();
  for (const kg::Mcq& mcq : experiment.rr_set()) {
    int lora_pick = core::AnswerMcq(*lora_lm, experiment.tokenizer(), mcq,
                                    core::AnswerMode::kLikelihood,
                                    lora.Forward());
    int ki_pick = core::AnswerMcq(*ki_lm, experiment.tokenizer(), mcq,
                                  core::AnswerMode::kLikelihood,
                                  ki.Forward());
    if (lora_pick != mcq.correct && ki_pick == mcq.correct) {
      chosen = &mcq;
      break;
    }
  }
  PrintCase(experiment, *chosen, experiment.base_lm(), *lora_lm,
            lora.Forward(), *ki_lm, ki.Forward());
  std::cout << "* vanilla base model (the LLaMa-2-7B stand-in)\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
