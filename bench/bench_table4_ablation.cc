// Reproduces Table 4 (ablation on UMLS): InfuserKI vs
//   - InfuserKI-w/o-RL: no Infuser (pre)training loss (Eq. 5 skipped; the
//     gate only learns from the QA gradient),
//   - InfuserKI-w/o-Ro: no Infuser module (raw adapter merge, Eq. 3),
//   - InfuserKI-w/o-RC: no relation-classification task (the third phase
//     runs next-token loss only).

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

const std::vector<PaperRow> kPaperRows = {
    {"InfuserKI", "NR=0.99 RR=0.99 F1_Unseen=0.88"},
    {"InfuserKI-w/o-RL", "NR=0.89 RR=0.97 F1_Unseen=0.77"},
    {"InfuserKI-w/o-Ro", "NR=0.97 RR=0.92 F1_Unseen=0.87"},
    {"InfuserKI-w/o-RC", "NR=0.96 RR=0.97 F1_Unseen=0.83"},
};

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  // Four full InfuserKI trainings: run each at a reduced budget unless
  // overridden.
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 45;

  ObsSession obs("bench_table4_ablation", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();

  struct Variant {
    const char* label;
    bool infuser_pretrain;
    bool use_infuser;
    bool use_rc;
  };
  const Variant variants[] = {
      {"InfuserKI", true, true, true},
      {"InfuserKI-w/o-RL", false, true, true},
      {"InfuserKI-w/o-Ro", true, false, true},
      {"InfuserKI-w/o-RC", true, true, false},
  };

  util::TablePrinter table({"Variant", "NR", "RR", "F1_Unseen"});
  for (const Variant& variant : variants) {
    eval::MethodScores scores =
        RunMethod(experiment, [&](model::TransformerLM* lm) {
          core::InfuserKiOptions options;
          options.adapters.first_layer = 1;
          options.qa_epochs = budget.infuserki_qa_epochs;
          options.infuser_pretrain = variant.infuser_pretrain;
          options.adapters.use_infuser = variant.use_infuser;
          options.use_rc = variant.use_rc;
          return std::make_unique<core::InfuserKi>(lm, options);
        });
    table.AddRow({variant.label, Fmt(scores.nr), Fmt(scores.rr),
                  Fmt(scores.f1_unseen)});
    std::cerr << "[bench] " << variant.label << " done\n";
  }
  std::cout << "\n=== Table 4: ablation study (UMLS) ===\n\n";
  table.Print(std::cout);
  (void)table.WriteCsv("table4_ablation.csv");
  std::cout << "\nPaper reference:\n";
  for (const PaperRow& row : kPaperRows) {
    std::cout << "  " << row.method << ": " << row.values << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
