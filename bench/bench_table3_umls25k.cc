// Reproduces Table 3: scaling from UMLS 2.5k to 25k triplets. The key
// finding is the *shape*: model-editing methods (CALINET, T-Patcher)
// degrade at 10x scale while InfuserKI holds its reliability/locality.
//
// The default run uses a 3x scale-up of the Table 1 default under the same
// training budget (the budget squeeze is exactly what exposes ME methods'
// small-scale bias). Pass --triplets=25000 for paper scale.

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

const std::vector<PaperRow> kPaperRows = {
    {"LLaMa-2-7B", "F1_T1=0.35 F1_T2=0.47 F1_Unseen=0.41 PubMedQA=0.38"},
    {"CALINET", "NR=0.86 RR=0.44 F1_Unseen=0.63 PubMedQA=0.45"},
    {"T-Patcher", "NR=0.63 RR=0.20 F1_Unseen=0.43 PubMedQA=0.43"},
    {"Prefix-Tuning", "NR=0.82 RR=0.80 F1_Unseen=0.72 PubMedQA=0.47"},
    {"LoRA", "NR=0.96 RR=0.90 F1_Unseen=0.81 PubMedQA=0.40"},
    {"QLoRA", "NR=0.94 RR=0.91 F1_Unseen=0.82 PubMedQA=0.45"},
    {"Ours", "NR=0.99 RR=0.99 F1_Unseen=0.90 PubMedQA=0.58"},
};

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/240);
  // Same per-method budget as Table 1 spread over 3x the knowledge.
  EpochBudget budget = MakeBudget(flags);
  budget.baseline_epochs = budget.baseline_epochs / 3 * 2;
  budget.infuserki_qa_epochs = budget.infuserki_qa_epochs / 3 * 2;

  ObsSession obs("bench_table3_umls25k", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();
  std::vector<eval::MethodScores> rows =
      RunStandardRoster(experiment, budget);
  PrintStandardTable(
      "Table 3: UMLS scale-up (" + std::to_string(config.num_triplets) +
          " triplets)",
      "PubMedQA*", rows, kPaperRows, "table3_umls25k.csv");
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
