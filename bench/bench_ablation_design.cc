// Design-choice ablations beyond the paper's Table 4: the simulator-scale
// adaptations documented in DESIGN.md are themselves experiments, and this
// bench quantifies each one on the Table-1 configuration:
//   * gate sharpness k in r = sigmoid(k * f_In(.)),
//   * known-replay-through-open-gate on/off,
//   * adapter bottleneck width d'.

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 45;

  ObsSession obs("bench_ablation_design", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();

  struct Variant {
    const char* label;
    float sharpness;
    bool replay_open_gate;
    size_t bottleneck;
  };
  const Variant variants[] = {
      {"default (k=3, replay-open, d'=96)", 3.0f, true, 96},
      {"soft gate (k=1)", 1.0f, true, 96},
      {"no open-gate replay", 3.0f, false, 96},
      {"narrow adapter (d'=32)", 3.0f, true, 32},
  };

  util::TablePrinter table({"Variant", "NR", "RR", "F1_Unseen"});
  for (const Variant& variant : variants) {
    eval::MethodScores scores =
        RunMethod(experiment, [&](model::TransformerLM* lm) {
          core::InfuserKiOptions options;
          options.adapters.first_layer = 1;
          options.adapters.gate_sharpness = variant.sharpness;
          options.adapters.bottleneck = variant.bottleneck;
          options.replay_open_gate = variant.replay_open_gate;
          options.qa_epochs = budget.infuserki_qa_epochs;
          return std::make_unique<core::InfuserKi>(lm, options);
        });
    table.AddRow({variant.label, Fmt(scores.nr), Fmt(scores.rr),
                  Fmt(scores.f1_unseen)});
    std::cerr << "[bench] " << variant.label << " done\n";
  }
  std::cout << "\n=== Design ablations (simulator-scale adaptations) ===\n\n";
  table.Print(std::cout);
  (void)table.WriteCsv("ablation_design.csv");
  std::cout << "\nExpected: softening the gate or dropping open-gate replay "
               "costs RR; narrowing the adapter costs NR.\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
