// Reproduces Table 1: InfuserKI vs PEFT and model-editing methods on the
// (synthetic) UMLS 2.5k knowledge graph.
//
// Default scale is reduced for single-core CI runs; pass --triplets=2500
// for the paper-scale KG. The reproduction targets the table's *shape*
// (see DESIGN.md): InfuserKI best-in-class RR at near-top NR, ME methods
// weaker, PEFT in between.

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

const std::vector<PaperRow> kPaperRows = {
    {"LLaMa-2-7B", "F1_T1=0.41 F1_T2=0.53 F1_Unseen=0.44 PubMedQA=0.38"},
    {"CALINET", "NR=1.00 RR=0.52 F1_Unseen=0.55 PubMedQA=0.46"},
    {"T-Patcher", "NR=0.73 RR=0.06 F1_Unseen=0.42 PubMedQA=0.40"},
    {"Prefix Tuning", "NR=0.70 RR=0.90 F1_Unseen=0.59 PubMedQA=0.44"},
    {"LoRA", "NR=0.92 RR=0.80 F1_Unseen=0.77 PubMedQA=0.47"},
    {"QLoRA", "NR=0.97 RR=0.88 F1_Unseen=0.75 PubMedQA=0.49"},
    {"Ours", "NR=0.99 RR=0.99 F1_Unseen=0.88 PubMedQA=0.58"},
};

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);

  ObsSession obs("bench_table1_umls", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();
  std::vector<eval::MethodScores> rows =
      RunStandardRoster(experiment, budget);
  PrintStandardTable(
      "Table 1: UMLS " + std::to_string(config.num_triplets) + " triplets",
      "PubMedQA*", rows, kPaperRows, "table1_umls.csv");
  std::cout << "\n* downstream = synthetic claim-verification stand-in for "
               "PubMedQA (DESIGN.md)\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
