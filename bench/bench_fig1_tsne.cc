// Reproduces Fig. 1: t-SNE of 10th-layer representations of test samples
// under (a) the vanilla LLM, (b) a directly fine-tuned LLM, and (c) the
// knowledge-infused LLM.
//
// The output is numeric: 2-D t-SNE coordinates (CSV) plus a cluster-
// separation ratio per model. Expected shape: fine-tuning shifts/merges
// the known-sample cluster (forgetting); InfuserKI keeps known and unknown
// representations separated like the vanilla model while still answering
// the unknown set.

#include "bench/bench_common.h"
#include "eval/tsne.h"
#include "kg/mcq.h"

namespace infuserki::bench {
namespace {

// Mean-pooled residual-stream representation at the layer corresponding to
// the paper's 10th of 32.
std::vector<double> Representations(const eval::Experiment& experiment,
                                    const model::TransformerLM& lm,
                                    const model::ForwardOptions& base_fwd,
                                    const std::vector<kg::Mcq>& set,
                                    size_t layer) {
  tensor::NoGradGuard no_grad;
  std::vector<double> out;
  for (const kg::Mcq& mcq : set) {
    model::ForwardTrace trace;
    trace.record_layer_outputs = true;
    model::ForwardOptions forward = base_fwd;
    forward.trace = &trace;
    std::string prompt = kg::FormatQuestionPrompt(mcq);
    (void)lm.Hidden(experiment.tokenizer().EncodeWithSpecials(prompt, false),
                    forward);
    const tensor::Tensor& h = trace.layer_outputs[layer];
    size_t rows = h.dim(0), cols = h.dim(1);
    for (size_t c = 0; c < cols; ++c) {
      double mean = 0.0;
      for (size_t r = 0; r < rows; ++r) mean += h.at(r, c);
      out.push_back(mean / static_cast<double>(rows));
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kUmls,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);
  if (!flags.Has("infuserki_qa_epochs")) budget.infuserki_qa_epochs = 50;

  ObsSession obs("bench_fig1_tsne", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();
  size_t layer = config.arch.num_layers * 10 / 32;  // "10th of 32" scaled

  // Fine-tuned model: direct full fine-tuning on the unknown facts only.
  std::unique_ptr<model::TransformerLM> ft_lm = experiment.CloneBaseModel();
  peft::FullFinetuneOptions ft_options;
  ft_options.epochs = budget.baseline_epochs / 3;
  peft::FullFinetuneMethod finetuned(ft_lm.get(), ft_options);
  finetuned.Train(experiment.BuildTrainData());

  // Knowledge-infused model.
  std::unique_ptr<model::TransformerLM> ki_lm = experiment.CloneBaseModel();
  core::InfuserKiOptions ki_options;
  ki_options.adapters.first_layer = 1;
  ki_options.qa_epochs = budget.infuserki_qa_epochs;
  core::InfuserKi ki(ki_lm.get(), ki_options);
  ki.Train(experiment.BuildTrainData());

  const std::vector<kg::Mcq>& known = experiment.rr_set();
  const std::vector<kg::Mcq>& unknown = experiment.nr_set();
  std::vector<int> labels;
  for (size_t i = 0; i < known.size(); ++i) labels.push_back(0);
  for (size_t i = 0; i < unknown.size(); ++i) labels.push_back(1);
  size_t n = labels.size();

  struct ModelUnderTest {
    const char* name;
    const model::TransformerLM* lm;
    model::ForwardOptions forward;
  };
  const ModelUnderTest models[] = {
      {"vanilla", &experiment.base_lm(), {}},
      {"fine_tuned", ft_lm.get(), finetuned.Forward()},
      {"infuserki", ki_lm.get(), ki.Forward()},
  };

  std::cout << "\n=== Fig. 1: t-SNE of layer-" << layer
            << " representations ===\n\n";
  util::TablePrinter table(
      {"Model", "separation(high-dim)", "separation(t-SNE 2D)"});
  for (const ModelUnderTest& m : models) {
    std::vector<double> reps =
        Representations(experiment, *m.lm, m.forward, known, layer);
    std::vector<double> reps_unknown =
        Representations(experiment, *m.lm, m.forward, unknown, layer);
    reps.insert(reps.end(), reps_unknown.begin(), reps_unknown.end());
    size_t dim = reps.size() / n;
    eval::TsneOptions tsne_options;
    std::vector<double> coords = eval::Tsne(reps, n, dim, tsne_options);
    double sep_high = eval::SeparationRatio(reps, n, dim, labels);
    double sep_2d = eval::SeparationRatio(coords, n, 2, labels);
    table.AddRow({m.name, util::FormatFloat(sep_high, 3),
                  util::FormatFloat(sep_2d, 3)});
    // Emit coordinates for plotting.
    util::TablePrinter points({"x", "y", "label"});
    for (size_t i = 0; i < n; ++i) {
      points.AddRow({util::FormatFloat(coords[2 * i], 4),
                     util::FormatFloat(coords[2 * i + 1], 4),
                     labels[i] == 0 ? "known" : "unknown"});
    }
    (void)points.WriteCsv(std::string("fig1_tsne_") + m.name + ".csv");
    std::cerr << "[bench] " << m.name << " t-SNE done\n";
  }
  table.Print(std::cout);
  std::cout << "\n(point clouds written to fig1_tsne_<model>.csv)\n"
            << "Paper shape: known/unknown clusters visible for the "
               "vanilla model; direct fine-tuning disturbs the known "
               "cluster; InfuserKI preserves the vanilla geometry.\n";
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
