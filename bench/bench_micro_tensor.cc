// Engineering micro-benchmarks (google-benchmark) for the tensor/autograd
// substrate: the per-op costs that dominate experiment wall-clock.

#include <benchmark/benchmark.h>

#include "model/transformer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace infuserki::tensor {
namespace {

void BM_MatmulNT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatmulNT(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(128)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  util::Rng rng(2);
  Tensor a = Tensor::Randn({64, 512}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a));
  }
}
BENCHMARK(BM_Softmax);

void BM_CausalSelfAttention(benchmark::State& state) {
  size_t t = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  Tensor q = Tensor::Randn({t, 64}, &rng);
  Tensor k = Tensor::Randn({t, 64}, &rng);
  Tensor v = Tensor::Randn({t, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CausalSelfAttention(q, k, v, 4));
  }
}
BENCHMARK(BM_CausalSelfAttention)->Arg(16)->Arg(64);

void BM_LmForward(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(4);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Logits(tokens));
  }
}
BENCHMARK(BM_LmForward);

void BM_LmTrainStep(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(5);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  for (auto _ : state) {
    Tensor loss = lm.NextTokenLoss(tokens);
    loss.Backward();
    for (Tensor& p : lm.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_LmTrainStep);

}  // namespace
}  // namespace infuserki::tensor

BENCHMARK_MAIN();
