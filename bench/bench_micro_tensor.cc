// Engineering micro-benchmarks (google-benchmark) for the tensor/autograd
// substrate: the per-op costs that dominate experiment wall-clock.
//
// Accepts --metrics_out=<path> / --trace_out=<path> plus the live-export
// flags --metrics_export_every=<ms> / --metrics_export_ndjson=<path> /
// --prom_out=<path> in addition to the standard google-benchmark flags;
// these are stripped from argv before benchmark::Initialize (which rejects
// flags it does not know).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/decode_session.h"
#include "model/pretrain.h"
#include "model/transformer.h"
#include "obs/exporter.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace infuserki::tensor {
namespace {

void BM_MatmulNT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatmulNT(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(128)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  util::Rng rng(2);
  Tensor a = Tensor::Randn({64, 512}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a));
  }
}
BENCHMARK(BM_Softmax);

void BM_CausalSelfAttention(benchmark::State& state) {
  size_t t = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  Tensor q = Tensor::Randn({t, 64}, &rng);
  Tensor k = Tensor::Randn({t, 64}, &rng);
  Tensor v = Tensor::Randn({t, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CausalSelfAttention(q, k, v, 4));
  }
}
BENCHMARK(BM_CausalSelfAttention)->Arg(16)->Arg(64);

void BM_LmForward(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(4);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Logits(tokens));
  }
}
BENCHMARK(BM_LmForward);

model::TransformerConfig BenchLmConfig() {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  return config;
}

/// Pre-engine decode: one full-sequence forward per generated token.
void BM_LmDecodeUncached(benchmark::State& state) {
  util::Rng rng(6);
  model::TransformerLM lm(BenchLmConfig(), &rng);
  size_t target = static_cast<size_t>(state.range(0));
  NoGradGuard no_grad;
  for (auto _ : state) {
    std::vector<int> sequence(8, 5);
    while (sequence.size() < target) {
      benchmark::DoNotOptimize(lm.Logits(sequence));
      sequence.push_back(5);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target - 8));
}
BENCHMARK(BM_LmDecodeUncached)->Arg(32)->Arg(96);

/// KV-cached decode: prefill once, then single-token incremental steps.
void BM_LmDecodeCached(benchmark::State& state) {
  util::Rng rng(6);
  model::TransformerLM lm(BenchLmConfig(), &rng);
  size_t target = static_cast<size_t>(state.range(0));
  NoGradGuard no_grad;
  for (auto _ : state) {
    model::DecodeSession session(lm);
    std::vector<int> prompt(8, 5);
    benchmark::DoNotOptimize(session.Prefill(prompt));
    for (size_t t = prompt.size(); t < target; ++t) {
      benchmark::DoNotOptimize(session.Decode(5));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target - 8));
}
BENCHMARK(BM_LmDecodeCached)->Arg(32)->Arg(96);

void BM_LmTrainStep(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(5);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  for (auto _ : state) {
    Tensor loss = lm.NextTokenLoss(tokens);
    loss.Backward();
    for (Tensor& p : lm.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_LmTrainStep);

/// Head-to-head cached vs. uncached decode at max_seq_len, run outside the
/// google-benchmark harness so the numbers land in the obs registry (and
/// thus the --metrics_out manifest) as engine/bench_* gauges. Prints a
/// "decode_speedup=<x>" line that scripts/check_build.sh asserts on.
void RunDecodeCompare() {
  model::TransformerConfig config = BenchLmConfig();
  util::Rng rng(6);
  model::TransformerLM lm(config, &rng);
  NoGradGuard no_grad;
  const size_t prompt_len = 8;
  const size_t target = config.max_seq_len;
  const std::vector<int> prompt(prompt_len, 5);
  const size_t new_tokens = target - prompt_len;

  // Warm both paths once (thread pool spin-up, allocator warm-up).
  benchmark::DoNotOptimize(lm.Logits(prompt));
  {
    model::DecodeSession warm(lm);
    benchmark::DoNotOptimize(warm.Prefill(prompt));
    benchmark::DoNotOptimize(warm.Decode(5));
  }

  // Pre-engine path: one full-sequence forward per generated token.
  double uncached_seconds;
  {
    std::vector<int> sequence = prompt;
    util::Stopwatch watch;
    while (sequence.size() < target) {
      benchmark::DoNotOptimize(lm.Logits(sequence));
      sequence.push_back(5);
    }
    uncached_seconds = watch.ElapsedSeconds();
  }

  // Engine path: prefill once, then single-token incremental steps.
  double cached_seconds;
  double prefill_seconds;
  {
    model::DecodeSession session(lm);
    util::Stopwatch watch;
    benchmark::DoNotOptimize(session.Prefill(prompt));
    prefill_seconds = watch.ElapsedSeconds();
    for (size_t t = prompt_len; t < target; ++t) {
      benchmark::DoNotOptimize(session.Decode(5));
    }
    cached_seconds = watch.ElapsedSeconds();
  }

  double speedup = uncached_seconds / cached_seconds;
  double cached_tps = static_cast<double>(new_tokens) / cached_seconds;
  double uncached_tps = static_cast<double>(new_tokens) / uncached_seconds;
  obs::Registry& registry = obs::Registry::Get();
  registry.GetGauge("engine/bench_uncached_decode_seconds")
      ->Set(uncached_seconds);
  registry.GetGauge("engine/bench_cached_decode_seconds")
      ->Set(cached_seconds);
  registry.GetGauge("engine/bench_cached_prefill_seconds")
      ->Set(prefill_seconds);
  registry.GetGauge("engine/bench_decode_speedup")->Set(speedup);
  registry.GetGauge("engine/bench_cached_tokens_per_second")
      ->Set(cached_tps);
  registry.GetGauge("engine/bench_uncached_tokens_per_second")
      ->Set(uncached_tps);
  std::printf(
      "decode_compare: seq_len=%zu new_tokens=%zu uncached=%.4fs "
      "cached=%.4fs (prefill %.4fs) uncached_tok_s=%.1f cached_tok_s=%.1f\n",
      target, new_tokens, uncached_seconds, cached_seconds, prefill_seconds,
      uncached_tps, cached_tps);
  std::printf("decode_speedup=%.2f\n", speedup);
}

/// Crash/resume smoke harness for scripts/check_build.sh. Runs a tiny
/// pretraining job with checkpointing under `dir`. A first invocation with
/// INFUSERKI_FAULTS="trainer/step=crash@60" dies mid-run (exit 42); a
/// second invocation resumes from the newest snapshot; a third with a
/// fresh dir trains uninterrupted. All three print a CRC over the final
/// parameters — the resumed and uninterrupted runs must match bit-exactly.
int RunResumeSmoke(const std::string& dir) {
  model::PretrainSpec spec;
  spec.arch.dim = 16;
  spec.arch.num_layers = 2;
  spec.arch.num_heads = 2;
  spec.arch.ffn_hidden = 32;
  spec.plain_docs = {
      "the infuser gate decides which adapter outputs pass through",
      "knowledge integration adds new facts without erasing old ones",
      "a transformer block mixes attention and feed forward layers",
      "checkpoints make long training runs survive sudden crashes",
      "the optimizer keeps first and second moment estimates per weight",
      "atomic renames publish files completely or not at all",
  };
  spec.steps = 120;
  spec.batch_size = 4;
  spec.lr = 1e-3f;
  spec.seed = 11;
  spec.cache_dir = "";  // always train; the point is the training loop
  spec.checkpoint_dir = dir;
  spec.checkpoint_every_n_steps = 20;
  spec.checkpoint_keep_last = 3;
  model::PretrainedModel model = model::PretrainOrLoad(spec);

  uint32_t crc = 0;
  for (const Tensor& p : model.lm->Parameters()) {
    crc = infuserki::util::Crc32(p.data(), p.size() * sizeof(float), crc);
  }
  double resume_step =
      obs::Registry::Get().GetGauge("trainer/resume_step")->Value();
  std::printf("resume_smoke_resume_step=%d\n",
              static_cast<int>(resume_step));
  std::printf("resume_smoke_params_crc=%08x\n", crc);
  return 0;
}

}  // namespace
}  // namespace infuserki::tensor

namespace {

/// Pulls `--<name>=<value>` out of argv (compacting it) and returns the
/// value, or "" if the flag is absent.
std::string TakeFlag(int* argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string resume_smoke_dir = TakeFlag(&argc, argv, "resume_smoke_dir");
  if (!resume_smoke_dir.empty()) {
    return infuserki::tensor::RunResumeSmoke(resume_smoke_dir);
  }
  std::string metrics_out = TakeFlag(&argc, argv, "metrics_out");
  std::string trace_out = TakeFlag(&argc, argv, "trace_out");
  // Boolean flag: --decode_compare or --decode_compare=1 runs the cached
  // vs. uncached decode comparison after the registered benchmarks.
  bool decode_compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--decode_compare") == 0) {
      decode_compare = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  decode_compare |= TakeFlag(&argc, argv, "decode_compare") == "1";
  std::string export_every = TakeFlag(&argc, argv, "metrics_export_every");
  infuserki::obs::ExporterOptions exporter_options;
  exporter_options.period = std::chrono::milliseconds(
      export_every.empty() ? 0 : std::atoll(export_every.c_str()));
  exporter_options.ndjson_path =
      TakeFlag(&argc, argv, "metrics_export_ndjson");
  exporter_options.prometheus_path = TakeFlag(&argc, argv, "prom_out");
  if (!metrics_out.empty() || !trace_out.empty()) {
    infuserki::obs::Tracer::Get().Enable();
  }
  std::unique_ptr<infuserki::obs::MetricsExporter> exporter;
  if (exporter_options.period.count() > 0) {
    exporter = std::make_unique<infuserki::obs::MetricsExporter>(
        exporter_options);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (decode_compare) infuserki::tensor::RunDecodeCompare();

  if (!trace_out.empty() &&
      !infuserki::obs::Tracer::Get().WriteChromeTrace(trace_out)) {
    std::fprintf(stderr, "trace write failed: %s\n", trace_out.c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    infuserki::obs::RunManifest manifest("bench_micro_tensor");
    if (!manifest.Write(metrics_out)) {
      std::fprintf(stderr, "metrics manifest write failed: %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
