// Engineering micro-benchmarks (google-benchmark) for the tensor/autograd
// substrate: the per-op costs that dominate experiment wall-clock.
//
// Accepts --metrics_out=<path> / --trace_out=<path> in addition to the
// standard google-benchmark flags; these are stripped from argv before
// benchmark::Initialize (which rejects flags it does not know).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "model/transformer.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace infuserki::tensor {
namespace {

void BM_MatmulNT(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatmulNT(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(128)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  util::Rng rng(2);
  Tensor a = Tensor::Randn({64, 512}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a));
  }
}
BENCHMARK(BM_Softmax);

void BM_CausalSelfAttention(benchmark::State& state) {
  size_t t = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  Tensor q = Tensor::Randn({t, 64}, &rng);
  Tensor k = Tensor::Randn({t, 64}, &rng);
  Tensor v = Tensor::Randn({t, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CausalSelfAttention(q, k, v, 4));
  }
}
BENCHMARK(BM_CausalSelfAttention)->Arg(16)->Arg(64);

void BM_LmForward(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(4);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Logits(tokens));
  }
}
BENCHMARK(BM_LmForward);

void BM_LmTrainStep(benchmark::State& state) {
  model::TransformerConfig config;
  config.vocab_size = 1000;
  config.dim = 64;
  config.num_layers = 8;
  config.num_heads = 4;
  config.ffn_hidden = 128;
  util::Rng rng(5);
  model::TransformerLM lm(config, &rng);
  std::vector<int> tokens(32, 5);
  for (auto _ : state) {
    Tensor loss = lm.NextTokenLoss(tokens);
    loss.Backward();
    for (Tensor& p : lm.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_LmTrainStep);

}  // namespace
}  // namespace infuserki::tensor

namespace {

/// Pulls `--<name>=<value>` out of argv (compacting it) and returns the
/// value, or "" if the flag is absent.
std::string TakeFlag(int* argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out = TakeFlag(&argc, argv, "metrics_out");
  std::string trace_out = TakeFlag(&argc, argv, "trace_out");
  if (!metrics_out.empty() || !trace_out.empty()) {
    infuserki::obs::Tracer::Get().Enable();
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty() &&
      !infuserki::obs::Tracer::Get().WriteChromeTrace(trace_out)) {
    std::fprintf(stderr, "trace write failed: %s\n", trace_out.c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    infuserki::obs::RunManifest manifest("bench_micro_tensor");
    if (!manifest.Write(metrics_out)) {
      std::fprintf(stderr, "metrics manifest write failed: %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
