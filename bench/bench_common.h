#ifndef INFUSERKI_BENCH_BENCH_COMMON_H_
#define INFUSERKI_BENCH_BENCH_COMMON_H_

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/infuserki.h"
#include "eval/experiment.h"
#include "obs/exporter.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "peft/calinet.h"
#include "peft/full_finetune.h"
#include "peft/lora.h"
#include "peft/prefix_tuning.h"
#include "peft/tpatcher.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace infuserki::bench {

/// Fine-tuning epoch budgets shared by the table benches. Overridable via
/// --epochs / --infuserki_qa_epochs flags.
// Defaults sized for a single-core smoke run of the full suite; scale up
// with --epochs / --infuserki_qa_epochs (and --triplets) for tighter
// numbers.
struct EpochBudget {
  size_t baseline_epochs = 28;
  size_t infuserki_qa_epochs = 75;
};

/// The paper's reference numbers for one method row (used to print
/// "paper: ..." columns next to measured values in EXPERIMENTS.md style).
struct PaperRow {
  const char* method;
  const char* values;  // e.g. "NR=1.00 RR=0.52 ... (paper)"
};

inline std::string Fmt(double v) { return util::FormatFloat(v, 2); }

/// Builds the default experiment config for the table benches, reading
/// shared flags: --triplets, --seed, --pretrain_steps, --cache_dir, plus
/// the durability knobs --checkpoint_dir (empty disables snapshots),
/// --checkpoint_every, and --resume.
inline eval::ExperimentConfig MakeConfig(const util::Flags& flags,
                                         eval::ExperimentConfig::Domain
                                             domain,
                                         size_t default_triplets) {
  eval::ExperimentConfig config;
  config.domain = domain;
  config.num_triplets = static_cast<size_t>(
      flags.GetInt("triplets", static_cast<int64_t>(default_triplets)));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  config.arch.dim = static_cast<size_t>(flags.GetInt("dim", 64));
  config.arch.num_layers =
      static_cast<size_t>(flags.GetInt("layers", 8));
  config.arch.num_heads = 4;
  config.arch.ffn_hidden = config.arch.dim * 2;
  config.pretrain_steps = static_cast<size_t>(flags.GetInt(
      "pretrain_steps",
      static_cast<int64_t>(1200 + config.num_triplets * 4)));
  config.eval_cap = static_cast<size_t>(flags.GetInt("eval_cap", 36));
  config.downstream_cap =
      static_cast<size_t>(flags.GetInt("downstream_cap", 24));
  config.cache_dir = flags.GetString("cache_dir", "model_cache");
  config.checkpoint_dir = flags.GetString("checkpoint_dir", "");
  config.checkpoint_every =
      static_cast<size_t>(flags.GetInt("checkpoint_every", 250));
  config.resume = flags.GetBool("resume", true);
  return config;
}

inline EpochBudget MakeBudget(const util::Flags& flags) {
  EpochBudget budget;
  budget.baseline_epochs = static_cast<size_t>(
      flags.GetInt("epochs", static_cast<int64_t>(budget.baseline_epochs)));
  budget.infuserki_qa_epochs = static_cast<size_t>(flags.GetInt(
      "infuserki_qa_epochs",
      static_cast<int64_t>(budget.infuserki_qa_epochs)));
  return budget;
}

/// Per-run observability plumbing shared by the bench binaries: reads
/// --trace_out=<path> / --metrics_out=<path>, enables span recording when
/// either output is requested, and on destruction (or Finish()) writes the
/// Chrome trace and the JSON run manifest.
///
/// Live-export flags (period > 0 starts a session-owned background
/// exporter immediately; Finish() stops it with a final flush):
///   --metrics_export_every=<ms>   exporter tick period; 0 disables
///   --metrics_export_ndjson=<p>   NDJSON time-series output path
///   --prom_out=<p>                Prometheus text-exposition output path
///   --metrics_window_s=<s>        sliding-window horizon (default 30)
/// A bench that wants a component to own the export thread instead (e.g.
/// serve::ServeOptions::exporter) calls TakeExporterOptions(), which stops
/// the session's exporter so two threads never write the same files.
///
/// Construct it before Experiment::Setup() so the setup spans are captured.
class ObsSession {
 public:
  ObsSession(const std::string& bench_name, const util::Flags& flags)
      : manifest_(bench_name),
        trace_out_(flags.GetString("trace_out", "")),
        metrics_out_(flags.GetString("metrics_out", "")) {
    exporter_options_.period = std::chrono::milliseconds(
        flags.GetInt("metrics_export_every", 0));
    exporter_options_.ndjson_path =
        flags.GetString("metrics_export_ndjson", "");
    exporter_options_.prometheus_path = flags.GetString("prom_out", "");
    exporter_options_.window_seconds = static_cast<double>(
        flags.GetInt("metrics_window_s", 30));
    if (!trace_out_.empty() || !metrics_out_.empty()) {
      obs::Tracer::Get().Enable();
    }
    if (exporter_options_.period.count() > 0) {
      exporter_ = std::make_unique<obs::MetricsExporter>(exporter_options_);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() { Finish(); }

  obs::RunManifest& manifest() { return manifest_; }

  /// Hands exporter ownership to the caller: stops the session-owned
  /// export thread (with a final flush) and returns the parsed options for
  /// a component to run its own exporter against the same outputs.
  obs::ExporterOptions TakeExporterOptions() {
    if (exporter_ != nullptr) {
      exporter_->Stop();
      exporter_.reset();
    }
    return exporter_options_;
  }

  /// Records the shared experiment configuration into the manifest.
  void AddExperimentConfig(const eval::ExperimentConfig& config) {
    manifest_.AddConfig(
        "domain", config.domain == eval::ExperimentConfig::Domain::kUmls
                      ? "umls"
                      : "metaqa");
    manifest_.AddConfig("triplets",
                        static_cast<int64_t>(config.num_triplets));
    manifest_.AddConfig("seed", static_cast<int64_t>(config.seed));
    manifest_.AddConfig("dim", static_cast<int64_t>(config.arch.dim));
    manifest_.AddConfig("layers",
                        static_cast<int64_t>(config.arch.num_layers));
    manifest_.AddConfig("pretrain_steps",
                        static_cast<int64_t>(config.pretrain_steps));
    manifest_.AddConfig("eval_cap", static_cast<int64_t>(config.eval_cap));
    if (!config.checkpoint_dir.empty()) {
      manifest_.AddConfig("checkpoint_dir", config.checkpoint_dir);
      manifest_.AddConfig("checkpoint_every",
                          static_cast<int64_t>(config.checkpoint_every));
    }
  }

  void AddBudget(const EpochBudget& budget) {
    manifest_.AddConfig("epochs",
                        static_cast<int64_t>(budget.baseline_epochs));
    manifest_.AddConfig(
        "infuserki_qa_epochs",
        static_cast<int64_t>(budget.infuserki_qa_epochs));
  }

  /// Writes the requested outputs once; later calls (and the destructor)
  /// are no-ops.
  void Finish() {
    if (finished_) return;
    finished_ = true;
    if (exporter_ != nullptr) exporter_->Stop();
    if (!trace_out_.empty()) {
      if (obs::Tracer::Get().WriteChromeTrace(trace_out_)) {
        std::cout << "(wrote chrome trace " << trace_out_
                  << " — open via chrome://tracing)\n";
      } else {
        std::cerr << "trace write failed: " << trace_out_ << "\n";
      }
    }
    if (!metrics_out_.empty()) {
      if (manifest_.Write(metrics_out_)) {
        std::cout << "(wrote metrics manifest " << metrics_out_ << ")\n";
      } else {
        std::cerr << "metrics manifest write failed: " << metrics_out_
                  << "\n";
      }
    }
  }

 private:
  obs::RunManifest manifest_;
  std::string trace_out_;
  std::string metrics_out_;
  obs::ExporterOptions exporter_options_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  bool finished_ = false;
};

/// Runs one method lifecycle: clone base, construct via `make`, train,
/// evaluate. The method object is destroyed afterwards (detaching any LoRA
/// state from the clone, which is then also dropped).
inline eval::MethodScores RunMethod(
    const eval::Experiment& experiment,
    const std::function<std::unique_ptr<core::KiMethod>(
        model::TransformerLM*)>& make) {
  std::unique_ptr<model::TransformerLM> lm = experiment.CloneBaseModel();
  std::unique_ptr<core::KiMethod> method = make(lm.get());
  core::KiTrainData data = experiment.BuildTrainData();
  // Train time is published to (and read back from) the metrics registry so
  // the printed table and the --metrics_out manifest report the same number.
  obs::Gauge* train_gauge = obs::Registry::Get().GetGauge(
      "method/" + method->name() + "/train_seconds");
  util::Stopwatch watch;
  method->Train(data);
  train_gauge->Set(watch.ElapsedSeconds());
  eval::MethodScores scores =
      experiment.EvaluateMethod(method->name(), *lm, method->Forward());
  scores.trainable_params = method->NumTrainableParameters();
  scores.train_seconds = train_gauge->Value();
  return scores;
}

/// Runs the full method roster of Tables 1-3 and returns the rows in paper
/// order (Vanilla, CALINET, T-Patcher, Prefix Tuning, LoRA, QLoRA,
/// InfuserKI).
inline std::vector<eval::MethodScores> RunStandardRoster(
    const eval::Experiment& experiment, const EpochBudget& budget) {
  std::vector<eval::MethodScores> rows;
  rows.push_back(experiment.EvaluateVanilla());
  std::cerr << "[bench] vanilla row done\n";

  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    peft::CalinetOptions options;
    options.epochs = budget.baseline_epochs;
    return std::make_unique<peft::CalinetMethod>(lm, options);
  }));
  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    peft::TPatcherOptions options;
    options.epochs = budget.baseline_epochs;
    return std::make_unique<peft::TPatcherMethod>(lm, options);
  }));
  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    peft::PrefixTuningOptions options;
    options.epochs = budget.baseline_epochs;
    return std::make_unique<peft::PrefixTuningMethod>(lm, options);
  }));
  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    peft::LoraOptions options;
    options.epochs = budget.baseline_epochs;
    options.rank = 8;
    options.alpha = 16.0f;
    options.lr = 3e-3f;
    return std::make_unique<peft::LoraMethod>(lm, options);
  }));
  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    peft::LoraOptions options;
    options.epochs = budget.baseline_epochs;
    options.rank = 8;
    options.alpha = 16.0f;
    options.lr = 3e-3f;
    options.quantize_base = true;
    return std::make_unique<peft::LoraMethod>(lm, options);
  }));
  rows.push_back(RunMethod(experiment, [&](model::TransformerLM* lm) {
    core::InfuserKiOptions options;
    options.adapters.first_layer = 1;
    options.qa_epochs = budget.infuserki_qa_epochs;
    return std::make_unique<core::InfuserKi>(lm, options);
  }));
  return rows;
}

/// Prints a Table 1/2/3-shaped results table plus the paper's reference
/// rows, and writes a CSV.
inline void PrintStandardTable(const std::string& title,
                               const std::string& downstream_name,
                               const std::vector<eval::MethodScores>& rows,
                               const std::vector<PaperRow>& paper_rows,
                               const std::string& csv_path) {
  std::cout << "\n=== " << title << " ===\n\n";
  util::TablePrinter table({"Method", "NR", "RR", "F1_T1", "F1_T2", "F1_T3",
                            "F1_T4", "F1_T5", "F1_Unseen", downstream_name,
                            "params", "train_s"});
  for (const eval::MethodScores& row : rows) {
    table.AddRow({row.method, row.has_nr_rr ? Fmt(row.nr) : "-",
                  row.has_nr_rr ? Fmt(row.rr) : "-", Fmt(row.f1[0]),
                  Fmt(row.f1[1]), Fmt(row.f1[2]), Fmt(row.f1[3]),
                  Fmt(row.f1[4]), Fmt(row.f1_unseen), Fmt(row.downstream),
                  std::to_string(row.trainable_params),
                  util::FormatFloat(row.train_seconds, 1)});
  }
  table.Print(std::cout);
  util::Status status = table.WriteCsv(csv_path);
  if (!status.ok()) {
    std::cerr << "CSV write failed: " << status << "\n";
  } else {
    std::cout << "\n(wrote " << csv_path << ")\n";
  }
  if (!paper_rows.empty()) {
    std::cout << "\nPaper reference (" << title << "):\n";
    for (const PaperRow& row : paper_rows) {
      std::cout << "  " << row.method << ": " << row.values << "\n";
    }
  }
  std::cout.flush();
}

}  // namespace infuserki::bench

#endif  // INFUSERKI_BENCH_BENCH_COMMON_H_
