// Reproduces Table 2: the method roster on the (synthetic) MetaQA movie
// KG with the 1-hop QA downstream task.
//
// Pass --triplets=2900 for the paper-scale KG.

#include "bench/bench_common.h"

namespace infuserki::bench {
namespace {

const std::vector<PaperRow> kPaperRows = {
    {"LLaMa-2-7B", "F1_T1=0.57 F1_T2=0.45 F1_Unseen=0.49 1HopQA=0.47"},
    {"CALINET", "NR=0.97 RR=0.84 F1_Unseen=0.79 1HopQA=0.44"},
    {"T-Patcher", "NR=0.39 RR=0.75 F1_Unseen=0.81 1HopQA=0.36"},
    {"Prefix Tuning", "NR=0.12 RR=0.88 F1_Unseen=0.52 1HopQA=0.45"},
    {"LoRA", "NR=0.90 RR=0.80 F1_Unseen=0.80 1HopQA=0.62"},
    {"QLoRA", "NR=0.93 RR=0.90 F1_Unseen=0.86 1HopQA=0.69"},
    {"Ours", "NR=0.99 RR=0.96 F1_Unseen=0.92 1HopQA=0.67"},
};

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  eval::ExperimentConfig config =
      MakeConfig(flags, eval::ExperimentConfig::Domain::kMetaQa,
                 /*default_triplets=*/96);
  EpochBudget budget = MakeBudget(flags);

  ObsSession obs("bench_table2_metaqa", flags);
  obs.AddExperimentConfig(config);
  obs.AddBudget(budget);

  eval::Experiment experiment(config);
  experiment.Setup();
  std::vector<eval::MethodScores> rows =
      RunStandardRoster(experiment, budget);
  PrintStandardTable(
      "Table 2: MetaQA " + std::to_string(config.num_triplets) +
          " triplets",
      "1HopQA", rows, kPaperRows, "table2_metaqa.csv");
  return 0;
}

}  // namespace
}  // namespace infuserki::bench

int main(int argc, char** argv) {
  return infuserki::bench::Run(argc, argv);
}
