#!/usr/bin/env python3
"""Repo-specific invariant linter (DESIGN.md §9).

Enforces rules the generic tools (clang-tidy, TSan) cannot express because
they are about *this* repo's conventions:

  raw-io        Durable writes must go through util::AtomicFileWriter /
                util::WriteFileAtomic / util::BinaryWriter (or the obs
                layer's WriteFileAtomically). Raw std::ofstream / std::fopen
                in src/ is banned outside the files that implement those
                primitives; escape hatch: a `lint: allow-raw-io(<reason>)`
                comment on the offending line.
  fault-points  Every fault-point name introduced at a sink (FAULT_POINT,
                fault_point defaults, BinaryWriter / AtomicFileWriter /
                WriteFileAtomic string args) must be documented in DESIGN.md
                and introduced from exactly one file.
  metric-names  Every obs metric name literal (GetCounter / GetGauge /
                GetHistogram) in src/ or bench/ must appear in the DESIGN.md
                "Observability" section's metric table (trailing-`*` globs
                in the table are honoured, e.g. `bench_*`).
  include-guards  Headers use #ifndef INFUSERKI_<PATH>_H_ derived from the
                repo-relative path (src/ stripped; tests/ and bench/ kept).
  rng-determinism  No std RNG seeded from wall-clock state: bans
                std::random_device, srand/rand, and time()/now() appearing
                in a seeding context. Every stochastic component takes an
                explicit util::Rng seed (DESIGN.md §5).
  arch-file-map  Every `src/...` path ARCHITECTURE.md names must exist on
                disk, and its layer map must mention every immediate
                subdirectory of src/ — the doc-drift rule family from the
                metric table, applied to the architecture overview.
  batching-metrics  Every `serve/...` / `engine/...` metric literal in the
                DESIGN.md "Batched decode" section (§11) must also appear
                in the §6 Observability metric table, so the batching
                narrative cannot drift from the metric registry. Names that
                are fault points in code (e.g. `serve/prefill`) are exempt.
  overload-metrics  Every `serve/...` metric literal in the DESIGN.md
                "Overload control" section (§14) must also appear in the §6
                Observability metric table (fault points exempt), and the
                `kBrownout*` degradation-level constants must match
                bidirectionally between §14 and src/serve/admission.h —
                the brownout ladder is a documented contract, so neither
                side may drift.
  raw-mutex     Raw std::mutex / std::lock_guard / std::unique_lock /
                std::condition_variable / std::scoped_lock / shared_mutex
                in src/ is banned outside the annotated wrapper
                (util::Mutex / util::MutexLock / util::CondVar in
                src/util/mutex.h) — the Thread Safety Analysis (DESIGN.md
                §13) can only track capabilities it can see. Escape hatch:
                `lint: allow-raw-mutex(<reason>)` on the offending line.
  mutex-guards  Every util::Mutex member declared in src/ must have at
                least one GUARDED_BY / PT_GUARDED_BY / REQUIRES peer
                naming it in the same file — a lock that guards nothing
                is either dead or (worse) silently believed to guard
                something the analysis is not told about.
  lock-order    Every lock named in the DESIGN.md §13 lock table must
                exist in src/ under the same class/member names, so the
                documented lock hierarchy cannot drift from the code.

Exit status: 0 when the tree is clean, 1 when any violation is found,
2 on usage errors. Each violation prints as `file:line: [rule] message`.
"""

import argparse
import fnmatch
import re
import sys
from pathlib import Path

CODE_DIRS = ("src", "tests", "bench", "examples", "tools")
CODE_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")

# Files allowed to perform raw file I/O: the atomic-write primitives
# themselves, and the durability fuzzers that corrupt files on purpose.
RAW_IO_ALLOWLIST = (
    "src/util/atomic_file.cc",
    "src/util/atomic_file.h",
    "src/obs/atomic_io.h",
)
RAW_IO_ANNOTATION = re.compile(r"lint:\s*allow-raw-io\(([^)]+)\)")
RAW_IO_PATTERN = re.compile(r"std::ofstream|std::fopen\b|\bfopen\s*\(")

FAULT_SINKS = (
    re.compile(r'FAULT_POINT\(\s*"([^"]+)"'),
    re.compile(r'fault_point\s*=\s*"([^"]+)"'),
)
# Sinks whose fault-point name is a trailing argument: capture the whole
# argument list and take its *last* string literal (the first may be a
# literal path or payload).
FAULT_TRAILING_SINKS = re.compile(
    r'(?:BinaryWriter|AtomicFileWriter)\s+\w+\s*\(([^;]*)\)'
    r'|WriteFileAtomic\(([^;]*)\)')
STRING_LITERAL = re.compile(r'"([^"]+)"')

METRIC_PATTERN = re.compile(r'Get(?:Counter|Gauge|Histogram)\("([^"]+)"\)')

RNG_PATTERNS = (
    (re.compile(r"std::random_device"), "std::random_device is nondeterministic"),
    (re.compile(r"\bsrand\s*\("), "srand() seeds the C RNG from ambient state"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand() is a hidden global RNG"),
    (
        re.compile(
            r"(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|Rng)"
            r"[^;\n]*(?:\btime\s*\(|::now\s*\()"
        ),
        "RNG seeded from wall-clock time breaks bit-exact reproducibility",
    ),
)

# The only files allowed to touch the raw standard-library primitives: the
# annotated wrapper itself (and the macro header its capability attributes
# come from).
RAW_MUTEX_ALLOWLIST = (
    "src/util/mutex.h",
    "src/util/thread_annotations.h",
)
RAW_MUTEX_ANNOTATION = re.compile(r"lint:\s*allow-raw-mutex\(([^)]+)\)")
RAW_MUTEX_PATTERN = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard"
    r"|unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b")

# A util::Mutex member declaration: optional `mutable`, optional namespace
# qualification, then the capitalised wrapper type and an identifier.
# Pointer/reference declarations (e.g. the leaked LogMutex singleton) are
# deliberately not matched — they alias a mutex declared elsewhere.
MUTEX_MEMBER_PATTERN = re.compile(
    r"(?:^|[\s(])(?:mutable\s+)?(?:util::|infuserki::util::)?"
    r"Mutex\s+(\w+)\s*[;={]")

# §13 lock-table rows: `| `Class::member` | ...` — the first backticked
# token of each table row is the lock's canonical code name.
LOCK_SECTION = re.compile(
    r"^##[^\n]*Locking contracts[^\n]*\n(.*?)(?=^## |\Z)",
    re.MULTILINE | re.DOTALL)
LOCK_TABLE_ROW = re.compile(r"^\|\s*`([^`]+)`")

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_FREE_LINE_COMMENT = re.compile(r"//[^\n]*")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text):
    """Blanks comments (preserving line structure) so rules never match doc
    text. String literals containing `//` are rare enough in this tree that
    the simple regex is acceptable; comment *markers* inside strings would
    only ever hide a violation on that same line, never invent one."""
    text = BLOCK_COMMENT.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
    return "\n".join(STRING_FREE_LINE_COMMENT.sub("", ln) for ln in text.split("\n"))


def iter_code_files(root, dirs):
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            # Exclude fixture trees relative to the scanned root, so the
            # fixtures themselves can be linted with --root pointing at them.
            if (path.suffix in CODE_SUFFIXES
                    and "testdata" not in path.relative_to(root).parts):
                yield path


def check_raw_io(root, violations):
    for path in iter_code_files(root, ("src",)):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_IO_ALLOWLIST:
            continue
        raw_lines = path.read_text().split("\n")
        stripped = strip_comments(path.read_text()).split("\n")
        for i, line in enumerate(stripped, 1):
            if RAW_IO_PATTERN.search(line):
                annotation = RAW_IO_ANNOTATION.search(raw_lines[i - 1])
                if annotation:
                    continue
                violations.append(Violation(
                    rel, i, "raw-io",
                    "raw file write; route durable artifacts through "
                    "util::AtomicFileWriter / WriteFileAtomic / BinaryWriter "
                    "(or annotate: lint: allow-raw-io(<reason>))"))


def collect_fault_points(root):
    """name -> list of (file, line) introduction sites in src/."""
    sites = {}
    for path in iter_code_files(root, ("src",)):
        rel = path.relative_to(root).as_posix()
        stripped = strip_comments(path.read_text())
        for i, line in enumerate(stripped.split("\n"), 1):
            for pattern in FAULT_SINKS:
                for match in pattern.finditer(line):
                    sites.setdefault(match.group(1), []).append((rel, i))
            for match in FAULT_TRAILING_SINKS.finditer(line):
                arguments = match.group(1) or match.group(2) or ""
                literals = STRING_LITERAL.findall(arguments)
                if literals:
                    sites.setdefault(literals[-1], []).append((rel, i))
    return sites


def check_fault_points(root, design_text, violations):
    documented = set(re.findall(r"`([^`]+)`", design_text))
    for name, sites in sorted(collect_fault_points(root).items()):
        rel, line = sites[0]
        if name not in documented:
            violations.append(Violation(
                rel, line, "fault-points",
                f'fault point "{name}" is not documented in DESIGN.md '
                "(add it, backticked, to the §8 failpoint list)"))
        files = sorted({site_file for site_file, _ in sites})
        if len(files) > 1:
            violations.append(Violation(
                rel, line, "fault-points",
                f'fault point "{name}" is introduced from multiple files '
                f"({', '.join(files)}); give each site a distinct name so "
                "INFUSERKI_FAULTS targets exactly one code path"))


def observability_section(design_text):
    match = re.search(
        r"^##[^\n]*Observability[^\n]*\n(.*?)(?=^## |\Z)",
        design_text, re.MULTILINE | re.DOTALL)
    return match.group(1) if match else None


def metric_documented(name, tokens):
    """True when `name` appears in the §6 metric-table tokens, either
    verbatim or as a `prefix/` row plus a leaf entry (globs honoured)."""
    if name in tokens:
        return True
    prefix, _, leaf = name.rpartition("/")
    if not prefix:
        return False
    if prefix + "/" not in tokens:
        return False
    return any(
        tok == leaf or (tok.endswith("*") and fnmatch.fnmatch(leaf, tok))
        for tok in tokens)


def check_metric_names(root, design_text, violations):
    section = observability_section(design_text)
    tokens = set(re.findall(r"`([^`]+)`", section)) if section else set()

    def documented(name):
        return metric_documented(name, tokens)

    for path in iter_code_files(root, ("src", "bench")):
        rel = path.relative_to(root).as_posix()
        stripped = strip_comments(path.read_text())
        for i, line in enumerate(stripped.split("\n"), 1):
            for match in METRIC_PATTERN.finditer(line):
                name = match.group(1)
                if section is None:
                    violations.append(Violation(
                        rel, i, "metric-names",
                        "DESIGN.md has no '## ... Observability' section to "
                        f'document metric "{name}" against'))
                elif not documented(name):
                    violations.append(Violation(
                        rel, i, "metric-names",
                        f'metric "{name}" is missing from the DESIGN.md §6 '
                        "metric table (document it or fix the name)"))


def expected_guard(rel_path):
    parts = list(rel_path.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "INFUSERKI_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_include_guards(root, violations):
    for path in iter_code_files(root, CODE_DIRS):
        if path.suffix not in (".h", ".hpp"):
            continue
        rel = path.relative_to(root)
        want = expected_guard(rel)
        text = path.read_text()
        ifndef = re.search(r"#ifndef\s+(\S+)", text)
        define = re.search(r"#define\s+(\S+)", text)
        if not ifndef or not define:
            violations.append(Violation(
                rel.as_posix(), 1, "include-guards",
                f"missing include guard (expected {want})"))
            continue
        if ifndef.group(1) != want or define.group(1) != want:
            violations.append(Violation(
                rel.as_posix(),
                text[:ifndef.start()].count("\n") + 1,
                "include-guards",
                f"guard {ifndef.group(1)} does not match path-derived "
                f"{want}"))


def check_rng_determinism(root, violations):
    for path in iter_code_files(root, CODE_DIRS):
        rel = path.relative_to(root).as_posix()
        stripped = strip_comments(path.read_text())
        for i, line in enumerate(stripped.split("\n"), 1):
            for pattern, why in RNG_PATTERNS:
                if pattern.search(line):
                    violations.append(Violation(
                        rel, i, "rng-determinism",
                        f"{why}; take an explicit seed / util::Rng instead"))


ARCH_PATH_PATTERN = re.compile(r"`(src/[A-Za-z0-9_./-]+)`")


def check_arch_file_map(root, violations):
    """ARCHITECTURE.md is the navigational contract: every src/ path it
    backticks must exist, and the layer map must cover every immediate
    subdirectory of src/. Fixture trees without the doc are exempt (the
    real tree always carries it)."""
    arch_path = root / "ARCHITECTURE.md"
    if not arch_path.is_file():
        return
    text = arch_path.read_text()
    for i, line in enumerate(text.split("\n"), 1):
        for match in ARCH_PATH_PATTERN.finditer(line):
            named = match.group(1)
            if not (root / named.rstrip("/")).exists():
                violations.append(Violation(
                    "ARCHITECTURE.md", i, "arch-file-map",
                    f'path "{named}" does not exist in the tree '
                    "(stale doc reference; update the file map)"))
    src = root / "src"
    if src.is_dir():
        for sub in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if f"src/{sub}/" not in text:
                violations.append(Violation(
                    "ARCHITECTURE.md", 1, "arch-file-map",
                    f'layer map omits "src/{sub}/" (every src/ subdirectory '
                    "must appear in ARCHITECTURE.md)"))


BATCHING_SECTION = re.compile(
    r"^##[^\n]*Batched decode[^\n]*\n(.*?)(?=^## |\Z)",
    re.MULTILINE | re.DOTALL)
BATCHING_METRIC_TOKEN = re.compile(r"^(?:serve|engine)/[A-Za-z0-9_]+$")


def check_batching_metrics(root, design_text, violations):
    match = BATCHING_SECTION.search(design_text)
    if not match:
        return
    section = observability_section(design_text)
    tokens = set(re.findall(r"`([^`]+)`", section)) if section else set()
    fault_points = set(collect_fault_points(root))
    first_line = design_text[:match.start(1)].count("\n") + 1
    for i, line in enumerate(match.group(1).split("\n"), first_line):
        for token in re.findall(r"`([^`]+)`", line):
            if not BATCHING_METRIC_TOKEN.match(token):
                continue
            if token in fault_points:
                continue
            if not metric_documented(token, tokens):
                violations.append(Violation(
                    "DESIGN.md", i, "batching-metrics",
                    f'§11 names metric "{token}" but the §6 metric table '
                    "does not document it (doc drift between the batching "
                    "narrative and the registry)"))


OVERLOAD_SECTION = re.compile(
    r"^##[^\n]*Overload control[^\n]*\n(.*?)(?=^## |\Z)",
    re.MULTILINE | re.DOTALL)
OVERLOAD_METRIC_TOKEN = re.compile(r"^serve/[A-Za-z0-9_]+$")
BROWNOUT_CONSTANT = re.compile(r"\bkBrownout\w+")
ADMISSION_HEADER = "src/serve/admission.h"


def check_overload_metrics(root, design_text, violations):
    """§14's overload narrative may only name metrics the §6 table
    documents (fault points exempt), and the brownout degradation ladder —
    the kBrownout* level constants — must agree between §14 and the code
    that defines it (src/serve/admission.h), in both directions."""
    match = OVERLOAD_SECTION.search(design_text)
    if not match:
        return
    section_text = match.group(1)
    section = observability_section(design_text)
    tokens = set(re.findall(r"`([^`]+)`", section)) if section else set()
    fault_points = set(collect_fault_points(root))
    first_line = design_text[:match.start(1)].count("\n") + 1
    for i, line in enumerate(section_text.split("\n"), first_line):
        for token in re.findall(r"`([^`]+)`", line):
            if not OVERLOAD_METRIC_TOKEN.match(token):
                continue
            if token in fault_points:
                continue
            if not metric_documented(token, tokens):
                violations.append(Violation(
                    "DESIGN.md", i, "overload-metrics",
                    f'§14 names metric "{token}" but the §6 metric table '
                    "does not document it (doc drift between the overload "
                    "narrative and the registry)"))
    admission = root / ADMISSION_HEADER
    if not admission.is_file():
        return
    code_constants = set(
        BROWNOUT_CONSTANT.findall(strip_comments(admission.read_text())))
    doc_constants = set(BROWNOUT_CONSTANT.findall(section_text))
    for name in sorted(doc_constants - code_constants):
        violations.append(Violation(
            "DESIGN.md", first_line, "overload-metrics",
            f'§14 names brownout constant "{name}" but '
            f"{ADMISSION_HEADER} defines no such constant (stale "
            "degradation ladder)"))
    for name in sorted(code_constants - doc_constants):
        violations.append(Violation(
            ADMISSION_HEADER, 1, "overload-metrics",
            f'brownout constant "{name}" is missing from the DESIGN.md §14 '
            "degradation ladder (document every level)"))


def check_raw_mutex(root, violations):
    for path in iter_code_files(root, ("src",)):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_MUTEX_ALLOWLIST:
            continue
        raw_lines = path.read_text().split("\n")
        stripped = strip_comments(path.read_text()).split("\n")
        for i, line in enumerate(stripped, 1):
            if RAW_MUTEX_PATTERN.search(line):
                if RAW_MUTEX_ANNOTATION.search(raw_lines[i - 1]):
                    continue
                violations.append(Violation(
                    rel, i, "raw-mutex",
                    "raw std::mutex-family primitive; use util::Mutex / "
                    "util::MutexLock / util::CondVar (src/util/mutex.h) so "
                    "the thread-safety analysis sees the capability "
                    "(or annotate: lint: allow-raw-mutex(<reason>))"))


def check_mutex_guards(root, violations):
    """A declared util::Mutex must be referenced by at least one GUARDED_BY /
    PT_GUARDED_BY / REQUIRES annotation in the same file. EXCLUDES alone
    does not count: it says callers must not hold the lock, but never ties
    the lock to any state, which is exactly the drift this rule exists to
    catch."""
    for path in iter_code_files(root, ("src",)):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_MUTEX_ALLOWLIST:
            continue
        stripped = strip_comments(path.read_text())
        for i, line in enumerate(stripped.split("\n"), 1):
            for match in MUTEX_MEMBER_PATTERN.finditer(line):
                name = match.group(1)
                peer = re.compile(
                    r"(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\("
                    r"[^)]*\b" + re.escape(name) + r"\b[^)]*\)")
                if not peer.search(stripped):
                    violations.append(Violation(
                        rel, i, "mutex-guards",
                        f'util::Mutex "{name}" has no GUARDED_BY / '
                        "PT_GUARDED_BY / REQUIRES peer in this file; "
                        "annotate the state it protects (DESIGN.md §13) "
                        "or delete the dead lock"))


def check_lock_order(root, design_text, violations):
    """Every lock the DESIGN.md §13 table names must exist in src/ under
    the same class/member spelling: some single file must mention both the
    class's last path component and the member as whole words. Catches
    renames that would silently orphan the documented hierarchy."""
    match = LOCK_SECTION.search(design_text)
    if not match:
        return
    file_texts = [
        strip_comments(p.read_text())
        for p in iter_code_files(root, ("src",))]
    first_line = design_text[:match.start(1)].count("\n") + 1
    for i, line in enumerate(match.group(1).split("\n"), first_line):
        row = LOCK_TABLE_ROW.match(line)
        if not row or "::" not in row.group(1):
            continue
        token = row.group(1)
        prefix, _, member = token.rpartition("::")
        cls = prefix.rpartition("::")[2]
        cls_re = re.compile(r"\b" + re.escape(cls) + r"\b")
        member_re = re.compile(r"\b" + re.escape(member) + r"\b")
        if not any(cls_re.search(t) and member_re.search(t)
                   for t in file_texts):
            violations.append(Violation(
                "DESIGN.md", i, "lock-order",
                f'§13 lock table names "{token}" but no src/ file mentions '
                f"both {cls} and {member}; the documented lock hierarchy "
                "has drifted from the code (update the table or the code)"))


RULES = {
    "raw-io": lambda root, design, v: check_raw_io(root, v),
    "fault-points": check_fault_points,
    "metric-names": check_metric_names,
    "include-guards": lambda root, design, v: check_include_guards(root, v),
    "rng-determinism": lambda root, design, v: check_rng_determinism(root, v),
    "arch-file-map": lambda root, design, v: check_arch_file_map(root, v),
    "batching-metrics": check_batching_metrics,
    "overload-metrics": check_overload_metrics,
    "raw-mutex": lambda root, design, v: check_raw_mutex(root, v),
    "mutex-guards": lambda root, design, v: check_mutex_guards(root, v),
    "lock-order": check_lock_order,
}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--only", action="append", choices=sorted(RULES),
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(sorted(RULES)))
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"check_invariants: no such directory: {root}", file=sys.stderr)
        return 2
    design_path = root / "DESIGN.md"
    design_text = design_path.read_text() if design_path.is_file() else ""

    violations = []
    for name in args.only or sorted(RULES):
        RULES[name](root, design_text, violations)

    for violation in violations:
        print(violation)
    if violations:
        print(f"check_invariants: {len(violations)} violation(s) in {root}",
              file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
