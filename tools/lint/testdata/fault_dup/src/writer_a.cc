#include "util/fault.h"

int SaveA() { return FAULT_POINT("dup/point").ok() ? 0 : 1; }
