#include "util/fault.h"

int SaveB() { return FAULT_POINT("dup/point").ok() ? 0 : 1; }
