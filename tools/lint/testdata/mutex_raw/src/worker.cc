// Fixture: seeds exactly one raw-mutex violation — a raw std::mutex where
// the annotated util::Mutex wrapper is required (DESIGN.md §13).
#include <mutex>

namespace infuserki {

class Worker {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;  // violation: invisible to the thread-safety analysis
  int count_ = 0;
};

}  // namespace infuserki
