#ifndef INFUSERKI_SERVE_ADMISSION_H_
#define INFUSERKI_SERVE_ADMISSION_H_

inline constexpr int kBrownoutClampLevel = 1;
inline constexpr int kBrownoutUndocumentedLevel = 2;

#endif  // INFUSERKI_SERVE_ADMISSION_H_
