#include <fstream>

void WriteReport(const char* path) {
  std::ofstream out(path);
  out << "torn on crash\n";
}
