#include "util/widget.h"

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/fault.h"

int Widget() {
  infuserki::obs::Registry::Get().GetCounter("widget/turns")->Increment();
  infuserki::util::AtomicFileWriter writer("/tmp/w", "widget/save");
  return FAULT_POINT("widget/step").ok() ? 0 : 1;
}
