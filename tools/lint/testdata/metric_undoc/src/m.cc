#include "obs/metrics.h"

void Bump() {
  infuserki::obs::Registry::Get().GetCounter("mystery/thing")->Increment();
}
