// Fixture support file: the `Real::mu_` row of the §13 table resolves to
// this file, so only the seeded `Ghost::mu_` row is a violation.
#ifndef INFUSERKI_REAL_H_
#define INFUSERKI_REAL_H_

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infuserki {

class Real {
 public:
  void Touch();

 private:
  mutable util::Mutex mu_;
  int epoch_ GUARDED_BY(mu_) = 0;
};

}  // namespace infuserki

#endif  // INFUSERKI_REAL_H_
