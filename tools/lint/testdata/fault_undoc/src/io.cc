#include "util/fault.h"

int Touch() { return FAULT_POINT("ghost/point").ok() ? 0 : 1; }
