// Fixture: seeds exactly one mutex-guards violation — a util::Mutex with
// no GUARDED_BY / PT_GUARDED_BY / REQUIRES peer anywhere in the file.
#ifndef INFUSERKI_STATE_H_
#define INFUSERKI_STATE_H_

#include "util/mutex.h"

namespace infuserki {

class State {
 public:
  void Touch();

 private:
  mutable util::Mutex mu_;  // violation: guards nothing the analysis knows
  int epoch_ = 0;
};

}  // namespace infuserki

#endif  // INFUSERKI_STATE_H_
