#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

int Thing();

#endif  // WRONG_GUARD_H
