#include <ctime>
#include <random>

std::mt19937_64 MakeEngine() {
  return std::mt19937_64(static_cast<unsigned long>(time(nullptr)));
}
