#!/usr/bin/env python3
"""Self-test for tools/lint/check_invariants.py (run by ctest).

Each fixture tree under testdata/ seeds exactly one violation class; the
linter must flag it (non-zero exit, the expected rule id and needle in the
output). The clean fixture and the real repository tree must both pass.
Plain python3 on purpose — the container has no pytest and the check must
run everywhere ctest does.
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINTER = HERE / "check_invariants.py"
REPO_ROOT = HERE.parent.parent

# fixture dir -> (rule to scope to, substring expected in the output)
EXPECTED_VIOLATIONS = {
    "raw_io": ("raw-io", "raw file write"),
    "fault_undoc": ("fault-points", '"ghost/point" is not documented'),
    "fault_dup": ("fault-points", '"dup/point" is introduced from multiple'),
    "metric_undoc": ("metric-names", '"mystery/thing" is missing'),
    "guard_bad": ("include-guards", "INFUSERKI_UTIL_THING_H_"),
    "rng_time": ("rng-determinism", "wall-clock time"),
    "arch_drift": ("arch-file-map", '"src/util/gone.cc" does not exist'),
    "batch_metric_drift": (
        "batching-metrics", '"serve/batch_size" but the §6 metric table'),
    "overload_metric_drift": (
        "overload-metrics", '"serve/brownout_level" but the §6 metric table'),
    "mutex_raw": ("raw-mutex", "raw std::mutex-family primitive"),
    "mutex_unguarded": ("mutex-guards", '"mu_" has no GUARDED_BY'),
    "lock_order_drift": ("lock-order", '"Ghost::mu_"'),
}


def run_linter(root, only=None):
    cmd = [sys.executable, str(LINTER), "--root", str(root)]
    if only:
        cmd += ["--only", only]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    for fixture, (rule, needle) in sorted(EXPECTED_VIOLATIONS.items()):
        root = HERE / "testdata" / fixture
        if not root.is_dir():
            failures.append(f"{fixture}: fixture directory missing")
            continue
        # Scoped run: the seeded rule alone must fire.
        code, out = run_linter(root, only=rule)
        if code != 1:
            failures.append(
                f"{fixture}: expected exit 1 from --only {rule}, got {code}\n{out}")
        elif needle not in out:
            failures.append(
                f"{fixture}: output missing {needle!r}:\n{out}")
        # Full run: the violation must also surface without scoping.
        code, out = run_linter(root)
        if code != 1 or f"[{rule}]" not in out:
            failures.append(
                f"{fixture}: full run did not report [{rule}] (exit {code})\n{out}")

    code, out = run_linter(HERE / "testdata" / "clean")
    if code != 0:
        failures.append(f"clean fixture: expected exit 0, got {code}\n{out}")

    code, out = run_linter(REPO_ROOT)
    if code != 0:
        failures.append(f"real tree: expected exit 0, got {code}\n{out}")

    if failures:
        print("lint_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print("  -", failure, file=sys.stderr)
        return 1
    print(f"lint_selftest: OK ({len(EXPECTED_VIOLATIONS)} violation fixtures, "
          "clean fixture, real tree)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
