#include <gtest/gtest.h>

#include <set>

#include "kg/dataset.h"
#include "kg/graph.h"
#include "kg/mcq.h"
#include "kg/synth.h"
#include "kg/templates.h"

namespace infuserki::kg {
namespace {

KnowledgeGraph TinyGraph() {
  KnowledgeGraph kg;
  int rel = kg.AddRelation("treats", "treatment target");
  int a = kg.AddEntity("aspirin");
  int h = kg.AddEntity("headache");
  int f = kg.AddEntity("fever");
  int c = kg.AddEntity("cold");
  EXPECT_TRUE(kg.AddTriplet(a, rel, h).ok());
  int b = kg.AddEntity("ibuprofen");
  EXPECT_TRUE(kg.AddTriplet(b, rel, f).ok());
  int d = kg.AddEntity("paracetamol");
  EXPECT_TRUE(kg.AddTriplet(d, rel, c).ok());
  return kg;
}

TEST(KnowledgeGraph, AddAndLookup) {
  KnowledgeGraph kg = TinyGraph();
  EXPECT_EQ(kg.num_triplets(), 3u);
  EXPECT_EQ(kg.num_relations(), 1u);
  int aspirin = kg.FindEntity("aspirin");
  ASSERT_GE(aspirin, 0);
  int treats = kg.FindRelation("treats");
  EXPECT_EQ(kg.TailOf(aspirin, treats), kg.FindEntity("headache"));
  EXPECT_EQ(kg.FindEntity("missing"), -1);
  EXPECT_EQ(kg.FindRelation("missing"), -1);
}

TEST(KnowledgeGraph, AddEntityIdempotent) {
  KnowledgeGraph kg;
  EXPECT_EQ(kg.AddEntity("x"), kg.AddEntity("x"));
  EXPECT_EQ(kg.num_entities(), 1u);
}

TEST(KnowledgeGraph, DuplicateHeadRelationRejected) {
  KnowledgeGraph kg;
  int rel = kg.AddRelation("r", "r");
  int a = kg.AddEntity("a");
  int b = kg.AddEntity("b");
  int c = kg.AddEntity("c");
  EXPECT_TRUE(kg.AddTriplet(a, rel, b).ok());
  util::Status dup = kg.AddTriplet(a, rel, c);
  EXPECT_EQ(dup.code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(kg.num_triplets(), 1u);
}

TEST(KnowledgeGraph, BoundsChecked) {
  KnowledgeGraph kg;
  int rel = kg.AddRelation("r", "r");
  int a = kg.AddEntity("a");
  EXPECT_EQ(kg.AddTriplet(a, rel, 99).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(kg.AddTriplet(a, 7, a).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(KnowledgeGraph, TailPool) {
  KnowledgeGraph kg = TinyGraph();
  int treats = kg.FindRelation("treats");
  const std::vector<int>& pool = kg.TailPool(treats);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(KnowledgeGraph, TripletsWithHead) {
  KnowledgeGraph kg;
  int r1 = kg.AddRelation("r1", "r1");
  int r2 = kg.AddRelation("r2", "r2");
  int a = kg.AddEntity("a");
  int b = kg.AddEntity("b");
  ASSERT_TRUE(kg.AddTriplet(a, r1, b).ok());
  ASSERT_TRUE(kg.AddTriplet(a, r2, b).ok());
  ASSERT_TRUE(kg.AddTriplet(b, r1, a).ok());
  EXPECT_EQ(kg.TripletsWithHead(a).size(), 2u);
  EXPECT_EQ(kg.TripletsWithHead(b).size(), 1u);
}

TEST(Templates, FiveDistinctQuestionForms) {
  KnowledgeGraph kg = TinyGraph();
  TemplateEngine engine;
  const Triplet& triplet = kg.triplets()[0];
  std::set<std::string> questions;
  for (int t = 1; t <= kNumTemplates; ++t) {
    std::string q = engine.Question(kg, triplet, t);
    EXPECT_NE(q.find("aspirin"), std::string::npos) << q;
    questions.insert(q);
  }
  EXPECT_EQ(questions.size(), static_cast<size_t>(kNumTemplates));
}

TEST(Templates, StatementContainsBothEntities) {
  KnowledgeGraph kg = TinyGraph();
  TemplateEngine engine;
  std::string statement = engine.Statement(kg, kg.triplets()[0]);
  EXPECT_NE(statement.find("aspirin"), std::string::npos);
  EXPECT_NE(statement.find("headache"), std::string::npos);
}

TEST(Templates, YesNoOverride) {
  KnowledgeGraph kg = TinyGraph();
  TemplateEngine engine;
  int fever = kg.FindEntity("fever");
  std::string fake = engine.YesNoQuestion(kg, kg.triplets()[0], fever);
  EXPECT_NE(fake.find("fever"), std::string::npos);
  EXPECT_EQ(fake.find("headache"), std::string::npos);
}

TEST(Templates, CustomOverrideRespected) {
  KnowledgeGraph kg = TinyGraph();
  TemplateEngine engine;
  RelationTemplates custom;
  custom.qa = {"q1 [S]", "q2 [S]", "q3 [S]", "q4 [S]", "q5 [S]"};
  custom.yes_no = "is it [O] for [S] ?";
  custom.statement = "[S] -> [O]";
  engine.SetTemplates(kg.FindRelation("treats"), custom);
  EXPECT_EQ(engine.Question(kg, kg.triplets()[0], 1), "q1 aspirin");
  EXPECT_EQ(engine.Statement(kg, kg.triplets()[0]), "aspirin -> headache");
}

TEST(Mcq, GoldAmongOptionsAndUnique) {
  util::Rng rng(5);
  KnowledgeGraph kg = SyntheticUmls({.num_triplets = 60, .seed = 2});
  TemplateEngine engine;
  McqBuilder builder(&kg, &engine);
  for (size_t i = 0; i < 20; ++i) {
    Mcq mcq = builder.Build(i, 1, &rng);
    const Triplet& triplet = kg.triplets()[i];
    EXPECT_EQ(mcq.options[static_cast<size_t>(mcq.correct)],
              kg.entity(triplet.tail).name);
    std::set<std::string> distinct(mcq.options.begin(), mcq.options.end());
    EXPECT_EQ(distinct.size(), 4u) << "duplicate options in MCQ " << i;
  }
}

TEST(Mcq, PromptFormats) {
  util::Rng rng(6);
  KnowledgeGraph kg = TinyGraph();
  TemplateEngine engine;
  McqBuilder builder(&kg, &engine);
  Mcq mcq = builder.Build(0, 1, &rng);
  std::string with_options = FormatMcqPrompt(mcq);
  EXPECT_NE(with_options.find("( a )"), std::string::npos);
  EXPECT_NE(with_options.find("answer :"), std::string::npos);
  std::string without = FormatQuestionPrompt(mcq);
  EXPECT_EQ(without.find("( a )"), std::string::npos);
  EXPECT_NE(without.find("question :"), std::string::npos);
  EXPECT_EQ(McqGoldResponse(mcq),
            mcq.options[static_cast<size_t>(mcq.correct)]);
}

TEST(Mcq, InstructionWrapper) {
  std::string prompt = FormatInstructionPrompt("do the thing");
  EXPECT_NE(prompt.find("### instruction : do the thing"),
            std::string::npos);
  EXPECT_NE(prompt.find("### response :"), std::string::npos);
}

TEST(Synth, UmlsSizes) {
  KnowledgeGraph kg = SyntheticUmls({.num_triplets = 120, .seed = 3});
  EXPECT_EQ(kg.num_triplets(), 120u);
  EXPECT_EQ(kg.num_relations(), 24u);
  EXPECT_GT(kg.num_entities(), 100u);
}

TEST(Synth, UmlsDeterministic) {
  KnowledgeGraph a = SyntheticUmls({.num_triplets = 50, .seed = 9});
  KnowledgeGraph b = SyntheticUmls({.num_triplets = 50, .seed = 9});
  ASSERT_EQ(a.num_triplets(), b.num_triplets());
  for (size_t i = 0; i < a.num_triplets(); ++i) {
    EXPECT_TRUE(a.triplets()[i] == b.triplets()[i]);
  }
}

TEST(Synth, MetaQaNineRelations) {
  KnowledgeGraph kg = SyntheticMetaQa({.num_triplets = 90, .seed = 4});
  EXPECT_EQ(kg.num_triplets(), 90u);
  EXPECT_EQ(kg.num_relations(), 9u);
  EXPECT_GE(kg.FindRelation("directed_by"), 0);
  EXPECT_GE(kg.FindRelation("has_imdb_votes"), 0);
}

TEST(Synth, UniqueHeadRelationPairs) {
  KnowledgeGraph kg = SyntheticUmls({.num_triplets = 100, .seed = 5});
  std::set<std::pair<int, int>> seen;
  for (const Triplet& triplet : kg.triplets()) {
    EXPECT_TRUE(seen.insert({triplet.head, triplet.relation}).second);
  }
}

TEST(Dataset, QaSamplesWellFormed) {
  KnowledgeGraph kg = SyntheticUmls({.num_triplets = 40, .seed = 6});
  TemplateEngine engine;
  DatasetBuilder builder(&kg, &engine);
  util::Rng rng(7);
  std::vector<QaSample> samples = builder.BuildQa({0, 1, 2}, 2, &rng);
  ASSERT_EQ(samples.size(), 3u);
  for (const QaSample& sample : samples) {
    EXPECT_EQ(sample.template_id, 2);
    EXPECT_NE(sample.prompt.find("answer :"), std::string::npos);
    EXPECT_EQ(sample.response, McqGoldResponse(sample.mcq));
  }
}

TEST(Dataset, YesNoBalancedish) {
  KnowledgeGraph kg = SyntheticUmls({.num_triplets = 60, .seed = 8});
  TemplateEngine engine;
  DatasetBuilder builder(&kg, &engine);
  util::Rng rng(9);
  std::vector<size_t> indices(60);
  for (size_t i = 0; i < 60; ++i) indices[i] = i;
  std::vector<YesNoSample> samples = builder.BuildYesNo(indices, &rng);
  size_t positives = 0;
  for (const YesNoSample& sample : samples) {
    if (sample.answer) ++positives;
  }
  EXPECT_GT(positives, 15u);
  EXPECT_LT(positives, 45u);
}

TEST(Dataset, FillerSentencesNonEmpty) {
  util::Rng rng(10);
  std::vector<std::string> filler = FillerSentences(5, &rng);
  EXPECT_EQ(filler.size(), 5u);
  for (const std::string& sentence : filler) {
    EXPECT_FALSE(sentence.empty());
  }
}

}  // namespace
}  // namespace infuserki::kg
