#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <numeric>
#include <vector>

#include "obs/metrics.h"
#include "util/table_printer.h"
#include "util/threadpool.h"

namespace infuserki::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PublishesObsMetrics) {
  obs::Registry& registry = obs::Registry::Get();
  registry.ResetAll();
  constexpr int kTasks = 20;
  {
    // An explicit 2-worker pool: on a single-core host the global pool has
    // one worker and ParallelFor runs inline without ever scheduling.
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), kTasks);
  }
  EXPECT_EQ(registry.GetCounter("threadpool/tasks_scheduled")->Value(),
            static_cast<uint64_t>(kTasks));
  EXPECT_EQ(registry.GetCounter("threadpool/tasks_completed")->Value(),
            static_cast<uint64_t>(kTasks));
  EXPECT_GE(registry.GetGauge("threadpool/queue_depth_max")->Value(), 1.0);
  obs::HistogramStats waits =
      registry.GetHistogram("threadpool/queue_wait_seconds")->Stats();
  EXPECT_EQ(waits.count, static_cast<uint64_t>(kTasks));
  EXPECT_GE(waits.min, 0.0);
  obs::HistogramStats runs =
      registry.GetHistogram("threadpool/task_seconds")->Stats();
  EXPECT_EQ(runs.count, static_cast<uint64_t>(kTasks));

  // ResetAll returns every pool metric to zero for the next measurement.
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("threadpool/tasks_scheduled")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("threadpool/tasks_completed")->Value(), 0u);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("threadpool/queue_depth_max")->Value(), 0.0);
  EXPECT_EQ(
      registry.GetHistogram("threadpool/task_seconds")->Stats().count, 0u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(200, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSmallRanges) {
  bool called = false;
  ParallelFor(0, 8, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  size_t total = 0;
  ParallelFor(3, 8, [&](size_t begin, size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total, 3u);
}

TEST(TablePrinter, AlignedOutputAndCsv) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22,2\"x\""});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| alpha |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);

  std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1");
  std::getline(in, line);
  // Quoted cell with escaped quotes.
  EXPECT_EQ(line, "b,\"22,2\"\"x\"\"\"");
  std::remove(path.c_str());
}

TEST(TablePrinter, CsvToBadPathFails) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  EXPECT_FALSE(table.WriteCsv("/nonexistent-dir/x.csv").ok());
}

}  // namespace
}  // namespace infuserki::util
