#include <gtest/gtest.h>

#include "eval/downstream.h"
#include "kg/synth.h"

namespace infuserki::eval {
namespace {

class DownstreamFixture : public ::testing::Test {
 protected:
  DownstreamFixture()
      : kg_(kg::SyntheticMetaQa({.num_triplets = 60, .seed = 1})),
        rng_(2) {}

  kg::KnowledgeGraph kg_;
  kg::TemplateEngine templates_;
  util::Rng rng_;
};

TEST_F(DownstreamFixture, ClaimTaskMixesTrueAndFalse) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < 40; ++i) indices.push_back(i);
  std::vector<ClaimItem> items =
      BuildClaimVerificationTask(kg_, templates_, indices, &rng_);
  ASSERT_EQ(items.size(), 40u);
  size_t positives = 0;
  for (const ClaimItem& item : items) {
    EXPECT_NE(item.prompt.find("is this claim true"), std::string::npos);
    if (item.label) ++positives;
  }
  EXPECT_GT(positives, 8u);
  EXPECT_LT(positives, 32u);
}

TEST_F(DownstreamFixture, ClaimTaskCorruptionUsesSameRelationPool) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < 30; ++i) indices.push_back(i);
  std::vector<ClaimItem> items =
      BuildClaimVerificationTask(kg_, templates_, indices, &rng_);
  for (const ClaimItem& item : items) {
    if (item.label) continue;
    // A corrupted claim must NOT contain the gold tail.
    const kg::Triplet& triplet = kg_.triplets()[item.triplet_index];
    const std::string& gold = kg_.entity(triplet.tail).name;
    // (gold may coincidentally be a substring of another entity; use a
    // spaced form to reduce false positives)
    EXPECT_EQ(item.prompt.find(" " + gold + " "), std::string::npos)
        << item.prompt;
  }
}

TEST_F(DownstreamFixture, OneHopItemsContainGold) {
  std::vector<size_t> indices = {0, 5, 10, 15};
  std::vector<OneHopItem> items =
      Build1HopTask(kg_, templates_, indices, 5, &rng_);
  ASSERT_EQ(items.size(), 4u);
  for (const OneHopItem& item : items) {
    ASSERT_GE(item.gold, 0);
    ASSERT_LT(static_cast<size_t>(item.gold), item.candidates.size());
    EXPECT_LE(item.candidates.size(), 5u);
    const kg::Triplet& triplet = kg_.triplets()[item.triplet_index];
    EXPECT_EQ(item.candidates[static_cast<size_t>(item.gold)],
              kg_.entity(triplet.tail).name);
    EXPECT_NE(item.prompt.find("question :"), std::string::npos);
  }
}

TEST_F(DownstreamFixture, EvaluatorsRunOnTinyModel) {
  std::vector<size_t> indices = {0, 1, 2, 3};
  std::vector<ClaimItem> claims =
      BuildClaimVerificationTask(kg_, templates_, indices, &rng_);
  std::vector<OneHopItem> onehop =
      Build1HopTask(kg_, templates_, indices, 4, &rng_);
  std::vector<std::string> corpus = {"yes no question answer claim true"};
  for (const ClaimItem& item : claims) corpus.push_back(item.prompt);
  for (const OneHopItem& item : onehop) {
    corpus.push_back(item.prompt);
    for (const std::string& candidate : item.candidates) {
      corpus.push_back(candidate);
    }
  }
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 128;
  util::Rng model_rng(7);
  model::TransformerLM lm(config, &model_rng);
  double claim_f1 = EvaluateClaimTask(lm, tokenizer, claims);
  EXPECT_GE(claim_f1, 0.0);
  EXPECT_LE(claim_f1, 1.0);
  double onehop_acc = Evaluate1HopTask(lm, tokenizer, onehop);
  EXPECT_GE(onehop_acc, 0.0);
  EXPECT_LE(onehop_acc, 1.0);
}

}  // namespace
}  // namespace infuserki::eval
