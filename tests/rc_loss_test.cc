// Unit tests for the relation-classification machinery (Eq. 9): entity-
// span pooling, the InfoNCE-style scoring path, and the cosine schedule of
// the shared trainer.

#include <gtest/gtest.h>

#include <cmath>

#include "model/trainer.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace infuserki {
namespace {

using tensor::Tensor;

// The RC scoring path: v^r = [v^h ; v^t], scores = f1(v^r) . f2(r') / tau,
// trained with cross entropy against the true relation. On a separable toy
// problem it must learn to classify relations.
TEST(RcLoss, LearnsToyRelationClassification) {
  constexpr size_t kDim = 8;
  constexpr size_t kRcDim = 6;
  constexpr int kNumRelations = 3;
  constexpr float kTau = 0.7f;
  util::Rng rng(1);
  tensor::Linear proj(2 * kDim, kRcDim, &rng);
  tensor::Embedding rel_emb(kNumRelations, kRcDim, &rng, 0.1f);

  // Toy data: relation r's head vector is e_r, tail vector is e_{r+3}.
  auto make_vr = [&](int relation) {
    std::vector<float> head(kDim, 0.0f), tail(kDim, 0.0f);
    head[static_cast<size_t>(relation)] = 1.0f;
    tail[static_cast<size_t>(relation) + 3] = 1.0f;
    Tensor vh = Tensor::FromData({kDim}, head);
    Tensor vt = Tensor::FromData({kDim}, tail);
    return tensor::Reshape(tensor::Concat1d(vh, vt), {1, 2 * kDim});
  };

  std::vector<Tensor> params;
  for (const Tensor& t : proj.Parameters()) params.push_back(t);
  for (const Tensor& t : rel_emb.Parameters()) params.push_back(t);
  tensor::AdamW optimizer(params, {.lr = 0.05f, .weight_decay = 0.0f});

  float last_loss = 0.0f;
  for (int step = 0; step < 80; ++step) {
    float total = 0.0f;
    for (int relation = 0; relation < kNumRelations; ++relation) {
      Tensor scores = tensor::MulScalar(
          tensor::MatmulNT(proj.Forward(make_vr(relation)),
                           rel_emb.table()),
          1.0f / kTau);
      Tensor loss = tensor::CrossEntropy(scores, {relation});
      total += loss.item();
      loss.Backward();
    }
    optimizer.Step();
    optimizer.ZeroGrad();
    last_loss = total / kNumRelations;
  }
  EXPECT_LT(last_loss, 0.1f);

  // And the argmax relation is recovered for each toy input.
  tensor::NoGradGuard no_grad;
  for (int relation = 0; relation < kNumRelations; ++relation) {
    Tensor scores =
        tensor::MatmulNT(proj.Forward(make_vr(relation)), rel_emb.table());
    int best = 0;
    for (int r = 1; r < kNumRelations; ++r) {
      if (scores.at(0, static_cast<size_t>(r)) >
          scores.at(0, static_cast<size_t>(best))) {
        best = r;
      }
    }
    EXPECT_EQ(best, relation);
  }
}

TEST(RcLoss, SpanPoolingMatchesManualMean) {
  Tensor h = Tensor::FromData({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor pooled = tensor::MeanAxis0(tensor::GatherRows(h, {1, 3}));
  EXPECT_FLOAT_EQ(pooled.data()[0], 5.0f);  // (3 + 7) / 2
  EXPECT_FLOAT_EQ(pooled.data()[1], 6.0f);  // (4 + 8) / 2
}

TEST(CosineSchedule, DecaysAndRestoresLr) {
  // Train a trivial model and verify the optimizer's lr returns to base
  // after TrainSteps (the schedule must not leak into later phases).
  text::Tokenizer tokenizer = text::Tokenizer::Build({"a b c"});
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 8;
  config.num_layers = 1;
  config.num_heads = 1;
  config.ffn_hidden = 16;
  util::Rng rng(2);
  model::TransformerLM lm(config, &rng);
  model::LmTrainer::Options options;
  options.lr = 0.5f;
  options.batch_size = 1;
  options.cosine_decay = true;
  options.min_lr_fraction = 0.1f;
  model::LmTrainer trainer(&lm, lm.Parameters(), options);
  std::vector<model::LmExample> examples = {
      model::MakePlainExample(tokenizer, "a b c")};
  trainer.TrainSteps(examples, 10);
  EXPECT_FLOAT_EQ(trainer.optimizer().lr(), 0.5f);
}

}  // namespace
}  // namespace infuserki
