// Tests for the background MetricsExporter (src/obs/exporter.h): periodic
// NDJSON appends + Prometheus text exposition, final flush on Stop(), and
// data-race freedom while application threads mutate the registry (this
// binary runs under the TSan gate — see tools/check_build.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace infuserki::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MetricsExporter, PeriodZeroDisablesTheThreadButTickNowWorks) {
  std::string ndjson = TempPath("exporter_manual.ndjson");
  std::remove(ndjson.c_str());
  ExporterOptions options;
  options.ndjson_path = ndjson;  // period stays 0
  MetricsExporter exporter(options);
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.ticks(), 0u);

  Registry::Get().GetCounter("test/exporter_manual")->Reset();
  Registry::Get().GetCounter("test/exporter_manual")->Increment(5);
  exporter.TickNow();
  exporter.TickNow();
  EXPECT_EQ(exporter.ticks(), 2u);
  std::vector<std::string> lines = ReadLines(ndjson);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"test/exporter_manual\":5"), std::string::npos);
  std::remove(ndjson.c_str());
}

TEST(MetricsExporter, NdjsonLineCountMatchesTicks) {
  std::string ndjson = TempPath("exporter_lines.ndjson");
  std::remove(ndjson.c_str());
  ExporterOptions options;
  options.period = std::chrono::milliseconds(5);
  options.ndjson_path = ndjson;
  uint64_t final_ticks = 0;
  {
    MetricsExporter exporter(options);
    EXPECT_TRUE(exporter.running());
    while (exporter.ticks() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    exporter.Stop();
    EXPECT_FALSE(exporter.running());
    final_ticks = exporter.ticks();
    // Stop() is idempotent and the destructor tolerates a prior Stop().
    exporter.Stop();
    EXPECT_EQ(exporter.ticks(), final_ticks);
  }
  // Every tick appended exactly one line, including the final flush.
  EXPECT_EQ(ReadLines(ndjson).size(), final_ticks);
  std::remove(ndjson.c_str());
}

TEST(MetricsExporter, StopFlushesTheLatestCounters) {
  std::string ndjson = TempPath("exporter_flush.ndjson");
  std::remove(ndjson.c_str());
  Registry::Get().GetCounter("test/exporter_flush")->Reset();
  ExporterOptions options;
  // A period far longer than the test: only the final flush can see the
  // increment below.
  options.period = std::chrono::milliseconds(60'000);
  options.ndjson_path = ndjson;
  {
    MetricsExporter exporter(options);
    Registry::Get().GetCounter("test/exporter_flush")->Increment(123);
  }  // destructor -> Stop() -> final TickNow()
  std::vector<std::string> lines = ReadLines(ndjson);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines.back().find("\"test/exporter_flush\":123"),
            std::string::npos);
  std::remove(ndjson.c_str());
}

TEST(MetricsExporter, PrometheusTextExposition) {
  std::string prom = TempPath("exporter.prom");
  std::remove(prom.c_str());
  Registry::Get().GetCounter("test/prom_counter")->Reset();
  Registry::Get().GetCounter("test/prom_counter")->Increment(9);
  Registry::Get().GetGauge("test/prom_gauge")->Set(2.5);
  Histogram* histogram = Registry::Get().GetHistogram("test/prom_histogram");
  histogram->Reset();
  histogram->Record(0.5);
  histogram->Record(0.5);
  histogram->Record(4.0);

  ExporterOptions options;
  options.prometheus_path = prom;
  MetricsExporter exporter(options);
  exporter.TickNow();

  std::string text = ReadFile(prom);
  EXPECT_NE(text.find("# TYPE infuserki_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("infuserki_test_prom_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE infuserki_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE infuserki_test_prom_histogram histogram"),
            std::string::npos);
  // The +Inf bucket is cumulative and must equal the sample count.
  EXPECT_NE(text.find("infuserki_test_prom_histogram_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("infuserki_test_prom_histogram_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("infuserki_test_prom_histogram_sum 5"),
            std::string::npos);
  std::remove(prom.c_str());
}

TEST(MetricsExporter, WindowedRatesAppearInNdjson) {
  std::string ndjson = TempPath("exporter_window.ndjson");
  std::remove(ndjson.c_str());
  Registry::Get().GetCounter("test/exporter_window")->Reset();
  ExporterOptions options;
  options.ndjson_path = ndjson;
  options.window_seconds = 30.0;
  MetricsExporter exporter(options);
  exporter.TickNow();
  Registry::Get().GetCounter("test/exporter_window")->Increment(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  exporter.TickNow();
  std::vector<std::string> lines = ReadLines(ndjson);
  ASSERT_EQ(lines.size(), 2u);
  // The second record has two frames of window context: covered_seconds > 0
  // and a rate entry for the counter that moved.
  EXPECT_NE(lines[1].find("\"window\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"counter_rates\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"test/exporter_window\""), std::string::npos);
  std::remove(ndjson.c_str());
}

TEST(MetricsExporter, OnTickRunsBeforeEachExport) {
  std::string ndjson = TempPath("exporter_on_tick.ndjson");
  std::remove(ndjson.c_str());
  Registry::Get().GetGauge("test/exporter_sampled")->Reset();
  std::atomic<int> calls{0};
  ExporterOptions options;
  options.ndjson_path = ndjson;
  options.on_tick = [&calls] {
    int n = calls.fetch_add(1) + 1;
    Registry::Get().GetGauge("test/exporter_sampled")->Set(n);
  };
  MetricsExporter exporter(options);
  exporter.TickNow();
  EXPECT_EQ(calls.load(), 1);
  std::vector<std::string> lines = ReadLines(ndjson);
  ASSERT_EQ(lines.size(), 1u);
  // The snapshot taken on the same tick already sees the sampled value.
  EXPECT_NE(lines[0].find("\"test/exporter_sampled\":1"), std::string::npos);
  std::remove(ndjson.c_str());
}

// The TSan-gated heart of this binary: a live exporter thread snapshotting
// and formatting while application threads hammer every metric kind.
TEST(MetricsExporter, RacesCleanlyWithMetricMutation) {
  std::string ndjson = TempPath("exporter_race.ndjson");
  std::string prom = TempPath("exporter_race.prom");
  std::remove(ndjson.c_str());
  std::remove(prom.c_str());
  Counter* counter = Registry::Get().GetCounter("test/exporter_race_counter");
  Gauge* gauge = Registry::Get().GetGauge("test/exporter_race_gauge");
  Histogram* histogram =
      Registry::Get().GetHistogram("test/exporter_race_histogram");
  counter->Reset();
  gauge->Reset();
  histogram->Reset();

  ExporterOptions options;
  options.period = std::chrono::milliseconds(1);
  options.ndjson_path = ndjson;
  options.prometheus_path = prom;
  MetricsExporter exporter(options);

  constexpr int kThreads = 4;
  constexpr int kIterations = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(i));
        histogram->Record(1e-4 * (t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  exporter.Stop();

  // The final flush ran after every writer joined, so the last record holds
  // the exact totals.
  std::vector<std::string> lines = ReadLines(ndjson);
  ASSERT_GE(lines.size(), 1u);
  std::ostringstream expected;
  expected << "\"test/exporter_race_counter\":" << kThreads * kIterations;
  EXPECT_NE(lines.back().find(expected.str()), std::string::npos);
  EXPECT_GE(exporter.ticks(), 1u);
  std::remove(ndjson.c_str());
  std::remove(prom.c_str());
}

}  // namespace
}  // namespace infuserki::obs
