#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "model/pretrain.h"
#include "model/trainer.h"
#include "tensor/ops.h"

namespace infuserki::model {
namespace {

TEST(MakeExamples, InstructionLossBoundary) {
  text::Tokenizer tokenizer = text::Tokenizer::Build({"q a b r s"});
  LmExample example = MakeInstructionExample(tokenizer, "q a b", "r s");
  // <bos> q a b r s <eos>
  EXPECT_EQ(example.tokens.size(), 7u);
  EXPECT_EQ(example.tokens.front(), text::kBosId);
  EXPECT_EQ(example.tokens.back(), text::kEosId);
  EXPECT_EQ(example.loss_start, 4u);  // first response token index
}

TEST(MakeExamples, PlainFullySupervised) {
  text::Tokenizer tokenizer = text::Tokenizer::Build({"x y"});
  LmExample example = MakePlainExample(tokenizer, "x y");
  EXPECT_EQ(example.loss_start, 0u);
  EXPECT_EQ(example.tokens.size(), 4u);
}

TEST(LmTrainer, MemorizesToyCorpus) {
  // A 2-layer model must memorize two fixed sentences quickly.
  text::Tokenizer tokenizer =
      text::Tokenizer::Build({"the red door opens", "the blue gate closes"});
  TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 24;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 48;
  config.max_seq_len = 16;
  util::Rng rng(1);
  TransformerLM lm(config, &rng);
  std::vector<LmExample> examples = {
      MakePlainExample(tokenizer, "the red door opens"),
      MakePlainExample(tokenizer, "the blue gate closes"),
  };
  LmTrainer::Options options;
  options.lr = 1e-2f;
  options.batch_size = 2;
  LmTrainer trainer(&lm, lm.Parameters(), options);
  float initial = lm.NextTokenLoss(examples[0].tokens).item();
  float final_loss = trainer.TrainSteps(examples, 150);
  EXPECT_LT(final_loss, initial * 0.2f);
  EXPECT_LT(final_loss, 0.5f);
}

TEST(LmTrainer, OnExampleCallbackFires) {
  text::Tokenizer tokenizer = text::Tokenizer::Build({"a b"});
  TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 8;
  config.num_layers = 1;
  config.num_heads = 1;
  config.ffn_hidden = 16;
  util::Rng rng(2);
  TransformerLM lm(config, &rng);
  LmExample tagged = MakePlainExample(tokenizer, "a b");
  tagged.tag = 7;
  int seen_tag = -1;
  LmTrainer::Options options;
  options.batch_size = 1;
  options.on_example = [&](const LmExample& example) {
    seen_tag = example.tag;
  };
  LmTrainer trainer(&lm, lm.Parameters(), options);
  trainer.Step({&tagged});
  EXPECT_EQ(seen_tag, 7);
}

TEST(Pretrain, CacheRoundTrip) {
  std::string cache_dir = ::testing::TempDir() + "/model_cache_test";
  std::filesystem::remove_all(cache_dir);
  PretrainSpec spec;
  spec.arch.dim = 16;
  spec.arch.num_layers = 2;
  spec.arch.num_heads = 2;
  spec.arch.ffn_hidden = 32;
  spec.plain_docs = {"alpha beta gamma", "delta epsilon"};
  spec.instruction_docs = {{"question one", "alpha"}};
  spec.steps = 30;
  spec.cache_dir = cache_dir;

  PretrainedModel first = PretrainOrLoad(spec);
  ASSERT_NE(first.lm, nullptr);
  EXPECT_GT(first.final_loss, 0.0f);  // freshly trained

  PretrainedModel second = PretrainOrLoad(spec);
  ASSERT_NE(second.lm, nullptr);
  EXPECT_EQ(second.final_loss, 0.0f);  // loaded from cache
  // Same weights.
  auto a = first.lm->NamedParameters();
  auto b = second.lm->NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a[i].tensor.size(); ++j) {
      ASSERT_EQ(a[i].tensor.data()[j], b[i].tensor.data()[j]);
    }
  }
  EXPECT_EQ(first.tokenizer.vocab_size(), second.tokenizer.vocab_size());
  std::filesystem::remove_all(cache_dir);
}

TEST(Pretrain, FingerprintSensitivity) {
  PretrainSpec spec;
  spec.plain_docs = {"one"};
  uint64_t base = spec.Fingerprint();
  PretrainSpec changed_doc = spec;
  changed_doc.plain_docs = {"two"};
  EXPECT_NE(base, changed_doc.Fingerprint());
  PretrainSpec changed_steps = spec;
  changed_steps.steps += 1;
  EXPECT_NE(base, changed_steps.Fingerprint());
  PretrainSpec changed_arch = spec;
  changed_arch.arch.dim += 8;
  EXPECT_NE(base, changed_arch.Fingerprint());
}

TEST(Pretrain, CorruptCacheIgnored) {
  std::string cache_dir = ::testing::TempDir() + "/model_cache_corrupt";
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);
  PretrainSpec spec;
  spec.arch.dim = 16;
  spec.arch.num_layers = 1;
  spec.arch.num_heads = 2;
  spec.arch.ffn_hidden = 32;
  spec.plain_docs = {"alpha beta"};
  spec.steps = 10;
  spec.cache_dir = cache_dir;
  PretrainedModel first = PretrainOrLoad(spec);
  // Corrupt every cache file.
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  PretrainedModel second = PretrainOrLoad(spec);  // must retrain, not crash
  ASSERT_NE(second.lm, nullptr);
  EXPECT_GT(second.final_loss, 0.0f);
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace infuserki::model
