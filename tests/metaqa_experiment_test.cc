#include <gtest/gtest.h>

#include "core/infuserki.h"
#include "eval/experiment.h"

namespace infuserki::eval {
namespace {

TEST(MetaQaExperiment, SetupAndOneHopDownstream) {
  ExperimentConfig config;
  config.domain = ExperimentConfig::Domain::kMetaQa;
  config.num_triplets = 45;
  config.seed = 55;
  config.arch.dim = 32;
  config.arch.num_layers = 4;
  config.arch.num_heads = 2;
  config.arch.ffn_hidden = 64;
  config.pretrain_steps = 400;
  config.eval_cap = 16;
  config.downstream_cap = 12;
  config.cache_dir = "";
  Experiment experiment(config);
  experiment.Setup();

  EXPECT_EQ(experiment.kg().num_relations(), 9u);
  MethodScores vanilla = experiment.EvaluateVanilla();
  EXPECT_GE(vanilla.downstream, 0.0);
  EXPECT_LE(vanilla.downstream, 1.0);
  // Seen-template accuracy above chance after pretraining on the subset.
  EXPECT_GT(vanilla.f1[0], 0.3);
}

TEST(AttentionPlacement, TrainsAndEvaluates) {
  // The Fig. 5 attention-placement path: adapters parallel to attention
  // sublayers must train end to end without touching FFN hooks.
  ExperimentConfig config;
  config.domain = ExperimentConfig::Domain::kUmls;
  config.num_triplets = 40;
  config.seed = 56;
  config.arch.dim = 32;
  config.arch.num_layers = 4;
  config.arch.num_heads = 2;
  config.arch.ffn_hidden = 64;
  config.pretrain_steps = 350;
  config.eval_cap = 12;
  config.downstream_cap = 8;
  config.cache_dir = "";
  Experiment experiment(config);
  experiment.Setup();

  auto lm = experiment.CloneBaseModel();
  core::InfuserKiOptions options;
  options.adapters.first_layer = 0;
  options.adapters.placement = core::AdapterPlacement::kAttention;
  options.adapters.bottleneck = 16;
  options.qa_epochs = 10;
  options.infuser_epochs = 4;
  options.rc_epochs = 1;
  core::InfuserKi method(lm.get(), options);
  method.Train(experiment.BuildTrainData());
  MethodScores scores =
      experiment.EvaluateMethod("attn", *lm, method.Forward());
  EXPECT_GE(scores.nr, 0.0);
  EXPECT_LE(scores.nr, 1.0);
  EXPECT_GE(scores.rr, 0.0);
  EXPECT_LE(scores.rr, 1.0);
}

}  // namespace
}  // namespace infuserki::eval
