#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace infuserki::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to round-trip the obs
// exports (objects, arrays, strings with \uXXXX escapes, numbers, literals).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue null_value;
    return it == object.end() ? null_value : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The exporters only emit \u00XX control escapes.
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseOrDie(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "unparseable JSON: " << text;
  return value;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, ConcurrentCounterIsExact) {
  Counter* counter = Registry::Get().GetCounter("test/concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, CounterDeltaAndSameInstance) {
  Counter* counter = Registry::Get().GetCounter("test/delta_counter");
  counter->Reset();
  counter->Increment(41);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 42u);
  // Same name resolves to the same object.
  EXPECT_EQ(Registry::Get().GetCounter("test/delta_counter"), counter);
}

TEST(Metrics, GaugeSetAndUpdateMax) {
  Gauge* gauge = Registry::Get().GetGauge("test/gauge");
  gauge->Reset();
  gauge->Set(3.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 3.5);
  gauge->UpdateMax(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(gauge->Value(), 3.5);
  gauge->UpdateMax(7.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), 7.25);
}

TEST(Metrics, GaugeUpdateMaxRejectsNan) {
  Gauge* gauge = Registry::Get().GetGauge("test/gauge_nan");
  gauge->Reset();
  gauge->Set(4.0);
  // A NaN sample (e.g. a 0/0 duration ratio from a worker) must leave the
  // high-water mark untouched.
  gauge->UpdateMax(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(gauge->Value(), 4.0);
  gauge->UpdateMax(9.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 9.0);
  // A NaN that reached the stored value via Set must not wedge UpdateMax:
  // the next real sample wins.
  gauge->Set(std::numeric_limits<double>::quiet_NaN());
  gauge->UpdateMax(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.5);
}

TEST(Metrics, ConcurrentHistogramCountAndSumAreExact) {
  Histogram* histogram =
      Registry::Get().GetHistogram("test/concurrent_histogram");
  histogram->Reset();
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kRecords; ++i) histogram->Record(0.5);
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramStats stats = histogram->Stats();
  EXPECT_EQ(stats.count, static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(stats.sum, 0.5 * kThreads * kRecords);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean, 0.5);
}

TEST(Metrics, HistogramBucketPlacement) {
  Histogram* histogram = Registry::Get().GetHistogram("test/buckets");
  histogram->Reset();
  histogram->Record(1e-7);  // below the first bound -> bucket 0
  histogram->Record(1e-6);  // exactly the first bound -> bucket 0
  histogram->Record(3e-6);  // (2e-6, 4e-6] -> bucket 2
  histogram->Record(1.0);
  EXPECT_EQ(histogram->BucketCount(0), 2u);
  EXPECT_EQ(histogram->BucketCount(2), 1u);
  // 1.0 lands in the bucket whose inclusive upper bound first reaches 1.0.
  uint64_t total = 0;
  size_t one_bucket = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += histogram->BucketCount(i);
    if (histogram->BucketCount(i) == 1 && i > 2) one_bucket = i;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_GE(Histogram::BucketBound(one_bucket), 1.0);
  EXPECT_LT(Histogram::BucketBound(one_bucket - 1), 1.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketBound(Histogram::kNumBuckets - 1)));
}

TEST(Metrics, MismatchedKindDies) {
  Registry::Get().GetCounter("test/kind_collision");
  EXPECT_DEATH(Registry::Get().GetGauge("test/kind_collision"), "");
}

TEST(Metrics, TextDumpAndSnapshot) {
  Registry::Get().GetCounter("test/dump_counter")->Reset();
  Registry::Get().GetCounter("test/dump_counter")->Increment(7);
  Registry::Get().GetGauge("test/dump_gauge")->Set(1.5);
  Registry::Get().GetHistogram("test/dump_histogram")->Record(0.25);

  Registry::Snapshot snapshot = Registry::Get().TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("test/dump_counter"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test/dump_gauge"), 1.5);
  EXPECT_EQ(snapshot.histograms.at("test/dump_histogram").count, 1u);

  std::string dump = Registry::Get().TextDump();
  EXPECT_NE(dump.find("test/dump_counter"), std::string::npos);
  EXPECT_NE(dump.find("test/dump_gauge"), std::string::npos);
  EXPECT_NE(dump.find("test/dump_histogram"), std::string::npos);
}

TEST(Metrics, JsonDumpRoundTrips) {
  Registry::Get().GetCounter("test/json_counter")->Reset();
  Registry::Get().GetCounter("test/json_counter")->Increment(11);
  Registry::Get().GetGauge("test/json_gauge")->Set(-2.5);
  Histogram* histogram = Registry::Get().GetHistogram("test/json_histogram");
  histogram->Reset();
  histogram->Record(1.0);
  histogram->Record(3.0);

  JsonValue root = ParseOrDie(Registry::Get().JsonDump());
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(
      root.at("counters").at("test/json_counter").number, 11.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test/json_gauge").number, -2.5);
  const JsonValue& h = root.at("histograms").at("test/json_histogram");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 4.0);
  EXPECT_DOUBLE_EQ(h.at("min").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("max").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("mean").number, 2.0);
}

TEST(Metrics, ResetAllZeroesEverything) {
  Registry::Get().GetCounter("test/resettable")->Increment(5);
  Registry::Get().GetGauge("test/resettable_gauge")->Set(5.0);
  Registry::Get().GetHistogram("test/resettable_histogram")->Record(5.0);
  Registry::Get().ResetAll();
  EXPECT_EQ(Registry::Get().GetCounter("test/resettable")->Value(), 0u);
  EXPECT_DOUBLE_EQ(
      Registry::Get().GetGauge("test/resettable_gauge")->Value(), 0.0);
  EXPECT_EQ(
      Registry::Get().GetHistogram("test/resettable_histogram")->Count(),
      0u);
}

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

// Same nearest-rank convention as HistogramQuantile: k = max(1, ceil(q*n)).
double SortedQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

TEST(Quantiles, WithinBucketRelativeError) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_error");
  histogram->Reset();
  // Log-spaced samples spanning ~6 decades, plus a heavy cluster near the
  // median so the interpolation has to work inside a populated bucket.
  std::vector<double> samples;
  for (int i = 0; i < 600; ++i) {
    samples.push_back(1e-5 * std::pow(10.0, i / 100.0));
  }
  for (int i = 0; i < 400; ++i) {
    samples.push_back(0.01 + 1e-4 * i);
  }
  for (double s : samples) histogram->Record(s);
  HistogramStats stats = histogram->Stats();
  ASSERT_EQ(stats.count, samples.size());
  // Base-2 exponential buckets bound any in-bucket estimate to within 2x of
  // the true sample quantile.
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double estimate = HistogramQuantile(stats, q);
    double truth = SortedQuantile(samples, q);
    EXPECT_LE(estimate, truth * 2.0) << "q=" << q;
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(stats.p50, HistogramQuantile(stats, 0.5));
  EXPECT_DOUBLE_EQ(stats.p999, HistogramQuantile(stats, 0.999));
}

TEST(Quantiles, ExactOnConstantDistribution) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_const");
  histogram->Reset();
  for (int i = 0; i < 1000; ++i) histogram->Record(0.037);
  HistogramStats stats = histogram->Stats();
  // The min/max clamp makes constant distributions exact, not just 2x-close.
  EXPECT_DOUBLE_EQ(stats.p50, 0.037);
  EXPECT_DOUBLE_EQ(stats.p90, 0.037);
  EXPECT_DOUBLE_EQ(stats.p99, 0.037);
  EXPECT_DOUBLE_EQ(stats.p999, 0.037);
}

TEST(Quantiles, SingleSampleIsExact) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_single");
  histogram->Reset();
  histogram->Record(1.25);
  HistogramStats stats = histogram->Stats();
  EXPECT_DOUBLE_EQ(stats.p50, 1.25);
  EXPECT_DOUBLE_EQ(stats.p999, 1.25);
}

TEST(Quantiles, EmptyHistogramIsAllZero) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_empty");
  histogram->Reset();
  HistogramStats stats = histogram->Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.p999, 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(stats, 0.5), 0.0);
  // Reset after samples restores the empty contract (min/max never leak the
  // +/-inf sentinels).
  histogram->Record(9.0);
  histogram->Reset();
  stats = histogram->Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99, 0.0);
}

TEST(Quantiles, SurfacedInTextAndJsonDumps) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_dump");
  histogram->Reset();
  for (int i = 0; i < 100; ++i) histogram->Record(0.5);
  std::string text = Registry::Get().TextDump();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p999"), std::string::npos);
  JsonValue root = ParseOrDie(Registry::Get().JsonDump());
  const JsonValue& h = root.at("histograms").at("test/quantile_dump");
  EXPECT_DOUBLE_EQ(h.at("p50").number, 0.5);
  EXPECT_DOUBLE_EQ(h.at("p90").number, 0.5);
  EXPECT_DOUBLE_EQ(h.at("p99").number, 0.5);
  EXPECT_DOUBLE_EQ(h.at("p999").number, 0.5);
}

TEST(Quantiles, SubtractHistogramStatsIsolatesTheDelta) {
  Histogram* histogram = Registry::Get().GetHistogram("test/quantile_delta");
  histogram->Reset();
  for (int i = 0; i < 50; ++i) histogram->Record(1e-4);
  HistogramStats before = histogram->Stats();
  for (int i = 0; i < 200; ++i) histogram->Record(0.25);
  HistogramStats after = histogram->Stats();

  HistogramStats delta = SubtractHistogramStats(after, before);
  EXPECT_EQ(delta.count, 200u);
  EXPECT_NEAR(delta.sum, 50.0, 1e-9);
  // Quantiles come from the delta buckets: the 1e-4 samples recorded before
  // the baseline must not drag p50 down.
  EXPECT_GE(delta.p50, 0.25 / 2.0);
  EXPECT_LE(delta.p50, 0.25 * 2.0);
  // Empty delta collapses to the all-zero contract.
  HistogramStats none = SubtractHistogramStats(after, after);
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.p50, 0.0);
}

// ---------------------------------------------------------------------------
// SlidingWindow
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, RatesAndHistogramDeltas) {
  Registry::Get().GetCounter("test/window_counter")->Reset();
  Registry::Get().GetHistogram("test/window_histogram")->Reset();
  Registry::Get().GetGauge("test/window_gauge")->Reset();

  SlidingWindow window(/*window_seconds=*/10.0);
  EXPECT_EQ(window.CounterDelta("test/window_counter"), 0u);
  EXPECT_DOUBLE_EQ(window.CoveredSeconds(), 0.0);

  int64_t t0 = 1'000'000'000;
  window.Tick(t0);
  Registry::Get().GetCounter("test/window_counter")->Increment(40);
  for (int i = 0; i < 8; ++i) {
    Registry::Get().GetHistogram("test/window_histogram")->Record(0.125);
  }
  Registry::Get().GetGauge("test/window_gauge")->Set(6.5);
  window.Tick(t0 + 4'000'000);  // +4s

  EXPECT_DOUBLE_EQ(window.CoveredSeconds(), 4.0);
  EXPECT_EQ(window.CounterDelta("test/window_counter"), 40u);
  EXPECT_DOUBLE_EQ(window.CounterRate("test/window_counter"), 10.0);
  EXPECT_DOUBLE_EQ(window.GaugeValue("test/window_gauge"), 6.5);
  HistogramStats delta = window.HistogramDelta("test/window_histogram");
  EXPECT_EQ(delta.count, 8u);
  EXPECT_DOUBLE_EQ(delta.p50, 0.125);
  EXPECT_DOUBLE_EQ(window.AllCounterRates().at("test/window_counter"), 10.0);
  EXPECT_EQ(window.CounterDelta("test/window_no_such"), 0u);
}

TEST(SlidingWindowTest, EvictsFramesOutsideTheWindow) {
  Registry::Get().GetCounter("test/window_evict")->Reset();
  SlidingWindow window(/*window_seconds=*/5.0);
  int64_t t0 = 2'000'000'000;
  // One tick per simulated second for 20s; only ~the last 5s must survive.
  for (int i = 0; i <= 20; ++i) {
    Registry::Get().GetCounter("test/window_evict")->Increment(1);
    window.Tick(t0 + static_cast<int64_t>(i) * 1'000'000);
  }
  EXPECT_LE(window.CoveredSeconds(), 6.0);
  EXPECT_GE(window.CoveredSeconds(), 5.0);
  // Rate stays ~1/s over the retained span.
  EXPECT_NEAR(window.CounterRate("test/window_evict"), 1.0, 0.35);
  EXPECT_LE(window.frame_count(), 8u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Enable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Clear();
    Tracer::Get().Disable();
  }
};

TEST_F(TracerTest, NestedSpansAreWellFormed) {
  {
    OBS_SPAN("outer");
    OBS_SPAN("middle");
    { OBS_SPAN("inner"); }
  }
  std::vector<SpanEvent> events = Tracer::Get().Events();
  ASSERT_EQ(events.size(), 3u);
  // Events() sorts by begin time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  // Same thread, and each child nests inside its parent.
  EXPECT_EQ(events[0].tid, events[2].tid);
  EXPECT_LE(events[0].begin_us, events[1].begin_us);
  EXPECT_GE(events[0].end_us, events[1].end_us);
  EXPECT_LE(events[1].begin_us, events[2].begin_us);
  EXPECT_GE(events[1].end_us, events[2].end_us);
  for (const SpanEvent& event : events) {
    EXPECT_GE(event.end_us, event.begin_us);
  }
}

TEST_F(TracerTest, SpansWhileDisabledAreDropped) {
  Tracer::Get().Disable();
  { OBS_SPAN("invisible"); }
  Tracer::Get().Enable();
  EXPECT_TRUE(Tracer::Get().Events().empty());
}

TEST_F(TracerTest, RingBufferEvictsOldest) {
  constexpr size_t kCapacity = 16;
  Tracer::Get().Enable(kCapacity);
  uint64_t dropped_before = Tracer::Get().dropped();
  for (int i = 0; i < 50; ++i) {
    ScopedSpan span("evict/" + std::to_string(i));
  }
  std::vector<SpanEvent> events = Tracer::Get().Events();
  EXPECT_EQ(events.size(), kCapacity);
  EXPECT_EQ(Tracer::Get().dropped() - dropped_before, 50 - kCapacity);
  // The survivors are exactly the newest spans (order-independent: spans
  // opened in a tight loop can share a microsecond timestamp).
  std::set<std::string> names;
  for (const SpanEvent& event : events) names.insert(event.name);
  for (size_t i = 50 - kCapacity; i < 50; ++i) {
    EXPECT_EQ(names.count("evict/" + std::to_string(i)), 1u) << i;
  }
}

TEST_F(TracerTest, SpansFromMultipleThreadsAllRetained) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("thread/" + std::to_string(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::map<std::string, SpanRollup> rollup = Tracer::Get().Rollup();
  for (int t = 0; t < kThreads; ++t) {
    const SpanRollup& r = rollup.at("thread/" + std::to_string(t));
    EXPECT_EQ(r.count, static_cast<uint64_t>(kSpans));
    EXPECT_GE(r.total_us, 0);
  }
}

TEST_F(TracerTest, ChromeTraceExportParses) {
  {
    OBS_SPAN("export/parent");
    OBS_SPAN("export/child");
  }
  std::string path = ::testing::TempDir() + "/trace.json";
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path));
  JsonValue root = ParseOrDie(ReadFile(path));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  size_t complete_events = 0;
  bool saw_parent = false;
  for (const JsonValue& event : events.array) {
    const std::string& ph = event.at("ph").string;
    if (ph == "X") {
      ++complete_events;
      EXPECT_TRUE(event.has("ts"));
      EXPECT_TRUE(event.has("dur"));
      EXPECT_TRUE(event.has("tid"));
      if (event.at("name").string == "export/parent") saw_parent = true;
    }
  }
  EXPECT_EQ(complete_events, 2u);
  EXPECT_TRUE(saw_parent);
  std::remove(path.c_str());
}

TEST_F(TracerTest, RequestTraceEmitsOneAsyncTrack) {
  RequestTrace trace = RequestTrace::Begin();
  EXPECT_NE(trace.id(), 0u);
  int64_t t0 = trace.begin_us();
  trace.Phase("queue", t0, t0 + 1);
  trace.Mark("prefix_hit");
  trace.Phase("decode_step", t0 + 1, t0 + 2);
  // Ensure the real End() timestamp lands after the fabricated phase ends.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.End("serve/request");

  std::vector<AsyncSpanEvent> events = Tracer::Get().AsyncEvents();
  ASSERT_EQ(events.size(), 4u);
  // All events share the request's track and the enclosing request span
  // sorts first (same begin, latest end wins the tie).
  for (const AsyncSpanEvent& event : events) {
    EXPECT_EQ(event.track, trace.id());
    EXPECT_GE(event.begin_us, t0);
    EXPECT_GE(event.end_us, event.begin_us);
  }
  EXPECT_EQ(events[0].name, "serve/request");
  for (const AsyncSpanEvent& event : events) {
    EXPECT_LE(event.begin_us, events[0].end_us);
    EXPECT_LE(event.end_us, events[0].end_us);
  }
}

TEST_F(TracerTest, DistinctRequestsGetDistinctTracks) {
  RequestTrace a = RequestTrace::Begin();
  RequestTrace b = RequestTrace::Begin();
  EXPECT_NE(a.id(), b.id());
  a.End("serve/request");
  b.End("serve/request");
  std::vector<AsyncSpanEvent> events = Tracer::Get().AsyncEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].track, events[1].track);
}

TEST_F(TracerTest, AsyncEventsDroppedWhileDisabled) {
  Tracer::Get().Disable();
  RequestTrace trace = RequestTrace::Begin();
  trace.Mark("invisible");
  trace.End("serve/request");
  Tracer::Get().Enable();
  EXPECT_TRUE(Tracer::Get().AsyncEvents().empty());
  // Ids still allocate while disabled so responses always carry one.
  EXPECT_NE(trace.id(), 0u);
}

TEST_F(TracerTest, ChromeTraceExportsAsyncRequestEvents) {
  RequestTrace trace = RequestTrace::Begin();
  int64_t t0 = trace.begin_us();
  trace.Phase("queue", t0, t0 + 25);
  trace.Mark("shed");
  // Keep End() strictly after begin_us so the lifecycle span exports as a
  // b/e pair rather than collapsing to a zero-width instant.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  trace.End("serve/request");

  std::string path = ::testing::TempDir() + "/async_trace.json";
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path));
  JsonValue root = ParseOrDie(ReadFile(path));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  size_t begins = 0, ends = 0, instants = 0;
  std::set<std::string> ids;
  for (const JsonValue& event : events.array) {
    const std::string& ph = event.at("ph").string;
    if (ph != "b" && ph != "e" && ph != "n") continue;
    EXPECT_EQ(event.at("cat").string, "request");
    EXPECT_TRUE(event.has("id"));
    EXPECT_EQ(event.at("id").string.substr(0, 2), "0x");
    ids.insert(event.at("id").string);
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
    if (ph == "n") ++instants;
  }
  // queue + serve/request as begin/end pairs; the zero-width "shed" mark as
  // an instant. All on one async id (= one swimlane per request).
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(ids.size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST_F(TracerTest, RunManifestRoundTrips) {
  Registry::Get().GetCounter("test/manifest_counter")->Reset();
  Registry::Get().GetCounter("test/manifest_counter")->Increment(3);
  { OBS_SPAN("manifest/span"); }

  RunManifest manifest("obs_test");
  manifest.AddConfig("domain", std::string("umls"));
  manifest.AddConfig("triplets", static_cast<int64_t>(96));
  manifest.AddConfig("lr", 0.001);

  std::string path = ::testing::TempDir() + "/manifest.json";
  ASSERT_TRUE(manifest.Write(path));
  JsonValue root = ParseOrDie(ReadFile(path));
  EXPECT_EQ(root.at("bench").string, "obs_test");
  EXPECT_EQ(root.at("config").at("domain").string, "umls");
  EXPECT_DOUBLE_EQ(root.at("config").at("triplets").number, 96.0);
  EXPECT_DOUBLE_EQ(root.at("config").at("lr").number, 0.001);
  EXPECT_DOUBLE_EQ(
      root.at("metrics").at("counters").at("test/manifest_counter").number,
      3.0);
  const JsonValue& span = root.at("spans").at("manifest/span");
  EXPECT_DOUBLE_EQ(span.at("count").number, 1.0);
  EXPECT_GE(span.at("total_seconds").number, 0.0);
  EXPECT_TRUE(root.has("spans_dropped"));
  std::remove(path.c_str());
}

TEST(Manifest, WriteToBadPathFails) {
  RunManifest manifest("obs_test");
  EXPECT_FALSE(manifest.Write("/nonexistent-dir/manifest.json"));
}

TEST(Json, EscapedStringsRoundTrip) {
  RunManifest manifest("quotes\"and\\slashes\nnewline");
  std::string json = manifest.ToJson();
  JsonValue root = ParseOrDie(json);
  EXPECT_EQ(root.at("bench").string, "quotes\"and\\slashes\nnewline");
}

}  // namespace
}  // namespace infuserki::obs
