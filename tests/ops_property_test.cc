// Property-style sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over the op
// library and data pipeline: invariants that must hold for every shape,
// seed, or configuration in the sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "kg/mcq.h"
#include "kg/synth.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace infuserki {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- Softmax invariants across shapes and scales ---------------------------

class SoftmaxSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, float>> {};

TEST_P(SoftmaxSweep, RowsSumToOneAndOrderPreserved) {
  auto [rows, cols, scale] = GetParam();
  util::Rng rng(rows * 100 + cols);
  Tensor x = Tensor::Randn({rows, cols}, &rng, scale);
  Tensor y = tensor::Softmax(x);
  for (size_t r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      float v = y.at(r, c);
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    // Monotonicity: argmax of input == argmax of softmax.
    size_t arg_in = 0, arg_out = 0;
    for (size_t c = 1; c < cols; ++c) {
      if (x.at(r, c) > x.at(r, arg_in)) arg_in = c;
      if (y.at(r, c) > y.at(r, arg_out)) arg_out = c;
    }
    EXPECT_EQ(arg_in, arg_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, SoftmaxSweep,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{5}),
                       ::testing::Values(size_t{2}, size_t{17}, size_t{64}),
                       ::testing::Values(0.5f, 5.0f, 50.0f)));

// --- Norm layers preserve shape and are scale-equivariant -------------------

class NormSweep : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
};

TEST_P(NormSweep, RmsNormScaleInvariance) {
  auto [rows, cols] = GetParam();
  util::Rng rng(rows * 31 + cols);
  Tensor x = Tensor::Randn({rows, cols}, &rng);
  Tensor w = Tensor::Full({cols}, 1.0f);
  Tensor y1 = tensor::RmsNorm(x, w);
  // RMSNorm(k * x) == RMSNorm(x) for k > 0 (up to eps effects).
  Tensor y2 = tensor::RmsNorm(tensor::MulScalar(x, 7.0f), w);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 2e-2f);
  }
}

TEST_P(NormSweep, LayerNormShiftInvariance) {
  auto [rows, cols] = GetParam();
  util::Rng rng(rows * 37 + cols);
  Tensor x = Tensor::Randn({rows, cols}, &rng);
  Tensor w = Tensor::Full({cols}, 1.0f);
  Tensor b = Tensor::Zeros({cols});
  Tensor y1 = tensor::LayerNorm(x, w, b);
  // LayerNorm(x + c) == LayerNorm(x).
  Tensor y2 = tensor::LayerNorm(tensor::AddScalar(x, 3.0f), w, b);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NormSweep,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{4}),
                       ::testing::Values(size_t{4}, size_t{33})));

// --- Matmul algebraic properties across shapes ------------------------------

class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(MatmulSweep, DistributesOverAddition) {
  auto [m, k, n] = GetParam();
  util::Rng rng(m * 7 + k * 3 + n);
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor b1 = Tensor::Randn({k, n}, &rng);
  Tensor b2 = Tensor::Randn({k, n}, &rng);
  Tensor lhs = tensor::Matmul(a, tensor::Add(b1, b2));
  Tensor rhs = tensor::Add(tensor::Matmul(a, b1), tensor::Matmul(a, b2));
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i],
                1e-3f * (1.0f + std::fabs(rhs.data()[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{5}),
                       ::testing::Values(size_t{3}, size_t{16}),
                       ::testing::Values(size_t{2}, size_t{9})));

// --- MCQ construction invariants across KGs, templates, and seeds ----------

class McqSweep : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
};

TEST_P(McqSweep, OptionsDistinctGoldPresentCorrectIndex) {
  auto [template_id, seed] = GetParam();
  kg::KnowledgeGraph kg =
      kg::SyntheticUmls({.num_triplets = 40, .seed = seed});
  kg::TemplateEngine templates;
  kg::McqBuilder builder(&kg, &templates);
  util::Rng rng(seed + 100);
  for (size_t index = 0; index < 12; ++index) {
    kg::Mcq mcq = builder.Build(index, template_id, &rng);
    EXPECT_EQ(mcq.template_id, template_id);
    const kg::Triplet& triplet = kg.triplets()[index];
    // Gold option is exactly the tail entity.
    EXPECT_EQ(mcq.options[static_cast<size_t>(mcq.correct)],
              kg.entity(triplet.tail).name);
    // No duplicates, and no option equals the head entity's own name
    // accidentally matching the answer slot semantics.
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = i + 1; j < 4; ++j) {
        EXPECT_NE(mcq.options[i], mcq.options[j]);
      }
    }
    // Question actually mentions the head entity.
    EXPECT_NE(mcq.question.find(kg.entity(triplet.head).name),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TemplatesAndSeeds, McqSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(uint64_t{3}, uint64_t{77})));

// --- Tokenizer round-trip across generated KG text --------------------------

class TokenizerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerSweep, EncodeDecodeRoundTripOnKgText) {
  kg::KnowledgeGraph kg =
      kg::SyntheticUmls({.num_triplets = 30, .seed = GetParam()});
  kg::TemplateEngine templates;
  std::vector<std::string> corpus;
  for (const kg::Triplet& triplet : kg.triplets()) {
    corpus.push_back(templates.Statement(kg, triplet));
    corpus.push_back(templates.Question(kg, triplet, 1));
  }
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  for (const std::string& doc : corpus) {
    std::vector<int> ids = tokenizer.Encode(doc);
    // No unknown tokens on the build corpus.
    for (int id : ids) EXPECT_NE(id, text::kUnkId) << doc;
    // Round trip is the normalized (lower-case, space-separated) form.
    std::string decoded = tokenizer.Decode(ids).value();
    std::vector<int> again = tokenizer.Encode(decoded);
    EXPECT_EQ(ids, again) << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerSweep,
                         ::testing::Values(uint64_t{1}, uint64_t{13},
                                           uint64_t{99}));

// --- Quantization error bound across block sizes ----------------------------

class QuantSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(QuantSweep, BlockwiseErrorBounded) {
  size_t block = GetParam();
  util::Rng rng(block);
  tensor::Linear linear(24, 24, &rng);
  std::vector<float> original = linear.weight().vec();
  linear.QuantizeWeights(block);
  // Per-block bound: |dq - w| <= absmax(block)/14.
  const std::vector<float>& quantized = linear.weight().vec();
  for (size_t begin = 0; begin < original.size(); begin += block) {
    size_t end = std::min(begin + block, original.size());
    float absmax = 0.0f;
    for (size_t i = begin; i < end; ++i) {
      absmax = std::max(absmax, std::fabs(original[i]));
    }
    for (size_t i = begin; i < end; ++i) {
      EXPECT_LE(std::fabs(quantized[i] - original[i]),
                absmax / 14.0f + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, QuantSweep,
                         ::testing::Values(size_t{8}, size_t{32},
                                           size_t{1000}));

}  // namespace
}  // namespace infuserki
