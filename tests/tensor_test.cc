#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace infuserki::tensor {
namespace {

TEST(Tensor, Creation) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.size(), 6u);
  EXPECT_EQ(z.rank(), 2u);
  for (float v : z.vec()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::Full({4}, 2.5f);
  for (float v : f.vec()) EXPECT_EQ(v, 2.5f);
  Tensor s = Tensor::Scalar(3.0f);
  EXPECT_EQ(s.item(), 3.0f);
}

TEST(Tensor, FromDataAndAt) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, CopySharesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.data()[0], 5.0f);
}

TEST(Tensor, DetachCopiesData) {
  Tensor a = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(Tensor, BackwardSimpleChain) {
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor y = MulScalar(x, 2.0f);     // y = 2x
  Tensor loss = Mul(y, y);           // loss = 4x^2
  SumAll(loss).Backward();
  ASSERT_EQ(x.grad().size(), 1u);
  EXPECT_FLOAT_EQ(x.grad()[0], 24.0f);  // d/dx 4x^2 = 8x = 24
}

TEST(Tensor, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  SumAll(MulScalar(x, 3.0f)).Backward();
  SumAll(MulScalar(x, 3.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Tensor, DiamondGraphGradient) {
  // z = x*x + x*x: gradient must accumulate through both branches.
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor a = Mul(x, x);
  Tensor z = Add(a, a);
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);  // d/dx 2x^2 = 4x
}

TEST(Tensor, NoGradGuardDisablesGraph) {
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    Tensor y = MulScalar(x, 2.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24u);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(Ops, MatmulValues) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = Matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulNTMatchesMatmulTranspose) {
  util::Rng rng(11);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor b = Tensor::Randn({5, 4}, &rng);
  Tensor nt = MatmulNT(a, b);
  Tensor reference = Matmul(a, Transpose(b));
  for (size_t i = 0; i < nt.size(); ++i) {
    EXPECT_NEAR(nt.data()[i], reference.data()[i], 1e-5f);
  }
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(12);
  Tensor a = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor s = Softmax(a);
  for (size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 7; ++c) sum += s.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxNumericallyStable) {
  Tensor a = Tensor::FromData({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = Softmax(a);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(s.at(0, c), 1.0f / 3, 1e-5f);
}

TEST(Ops, RmsNormUnitScale) {
  Tensor x = Tensor::FromData({1, 4}, {2, 2, 2, 2});
  Tensor w = Tensor::Full({4}, 1.0f);
  Tensor y = RmsNorm(x, w);
  for (size_t c = 0; c < 4; ++c) EXPECT_NEAR(y.at(0, c), 1.0f, 1e-3f);
}

TEST(Ops, LayerNormZeroMeanUnitVar) {
  util::Rng rng(13);
  Tensor x = Tensor::Randn({3, 8}, &rng, 5.0f);
  Tensor w = Tensor::Full({8}, 1.0f);
  Tensor b = Tensor::Zeros({8});
  Tensor y = LayerNorm(x, w, b);
  for (size_t r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (size_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8.0f;
    for (size_t c = 0; c < 8; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(Ops, CrossEntropyPerfectPrediction) {
  // Very confident correct logits: loss near zero.
  Tensor logits = Tensor::FromData({1, 3}, {100.0f, 0.0f, 0.0f});
  Tensor loss = CrossEntropy(logits, {0});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
}

TEST(Ops, CrossEntropyUniform) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropy(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(Ops, BceWithLogitsKnownValue) {
  Tensor logits = Tensor::FromData({2}, {0.0f, 0.0f});
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(Ops, EmbeddingLookupRows) {
  Tensor table = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor rows = EmbeddingLookup(table, {2, 0});
  EXPECT_FLOAT_EQ(rows.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 1), 2.0f);
}

TEST(Ops, MeanAxis0Values) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 3, 4, 5});
  Tensor m = MeanAxis0(a);
  EXPECT_FLOAT_EQ(m.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(m.data()[1], 3.0f);
  EXPECT_FLOAT_EQ(m.data()[2], 4.0f);
}

TEST(Attention, CausalityProperty) {
  // Changing a future key/value must not affect earlier outputs.
  util::Rng rng(14);
  Tensor q = Tensor::Randn({4, 8}, &rng);
  Tensor k = Tensor::Randn({4, 8}, &rng);
  Tensor v = Tensor::Randn({4, 8}, &rng);
  Tensor out1 = CausalSelfAttention(q, k, v, 2);
  // Perturb the last row of k and v.
  for (size_t c = 0; c < 8; ++c) {
    k.data()[3 * 8 + c] += 10.0f;
    v.data()[3 * 8 + c] -= 7.0f;
  }
  Tensor out2 = CausalSelfAttention(q, k, v, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(out1.at(i, c), out2.at(i, c), 1e-5f)
          << "future leak at row " << i;
    }
  }
}

TEST(Attention, PrefixVisibleToAllQueries) {
  util::Rng rng(15);
  Tensor q = Tensor::Randn({2, 4}, &rng);
  Tensor k = Tensor::Randn({3, 4}, &rng);  // 1 prefix + 2
  Tensor v = Tensor::Randn({3, 4}, &rng);
  Tensor out1 = CausalSelfAttention(q, k, v, 1, /*prefix_len=*/1);
  // Perturb the prefix value row; ALL outputs must change.
  for (size_t c = 0; c < 4; ++c) v.data()[c] += 5.0f;
  Tensor out2 = CausalSelfAttention(q, k, v, 1, /*prefix_len=*/1);
  for (size_t i = 0; i < 2; ++i) {
    float diff = 0.0f;
    for (size_t c = 0; c < 4; ++c) {
      diff += std::fabs(out1.at(i, c) - out2.at(i, c));
    }
    EXPECT_GT(diff, 1e-4f) << "prefix not visible to query " << i;
  }
}

TEST(Attention, SingleTokenIsIdentityOverV) {
  // One query, one key: attention weight is 1, output = v's head slices.
  Tensor q = Tensor::FromData({1, 4}, {1, 2, 3, 4});
  Tensor k = Tensor::FromData({1, 4}, {0, 0, 0, 0});
  Tensor v = Tensor::FromData({1, 4}, {5, 6, 7, 8});
  Tensor out = CausalSelfAttention(q, k, v, 2);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.at(0, c), v.at(0, c), 1e-5f);
  }
}

}  // namespace
}  // namespace infuserki::tensor
