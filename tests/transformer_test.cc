#include <gtest/gtest.h>

#include "model/generation.h"
#include "model/transformer.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace infuserki::model {
namespace {

TransformerConfig TinyConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 24;
  return config;
}

TEST(TransformerLM, Shapes) {
  util::Rng rng(1);
  TransformerLM lm(TinyConfig(), &rng);
  tensor::Tensor h = lm.Hidden({4, 5, 6});
  EXPECT_EQ(h.shape(), (tensor::Shape{3, 16}));
  tensor::Tensor logits = lm.Logits({4, 5, 6});
  EXPECT_EQ(logits.shape(), (tensor::Shape{3, 50}));
}

TEST(TransformerLM, CausalProperty) {
  // Logits at position t must not depend on tokens after t.
  util::Rng rng(2);
  TransformerLM lm(TinyConfig(), &rng);
  tensor::NoGradGuard no_grad;
  tensor::Tensor a = lm.Logits({4, 5, 6, 7});
  tensor::Tensor b = lm.Logits({4, 5, 6, 9});  // change last token only
  for (size_t pos = 0; pos < 3; ++pos) {
    for (size_t v = 0; v < 50; ++v) {
      EXPECT_NEAR(a.at(pos, v), b.at(pos, v), 1e-4f)
          << "future token leaked into position " << pos;
    }
  }
}

TEST(TransformerLM, NextTokenLossFiniteAndMaskable) {
  util::Rng rng(3);
  TransformerLM lm(TinyConfig(), &rng);
  std::vector<int> tokens = {1, 4, 5, 6, 2};
  float full = lm.NextTokenLoss(tokens).item();
  EXPECT_GT(full, 0.0f);
  EXPECT_LT(full, 20.0f);
  float masked = lm.NextTokenLoss(tokens, /*loss_start=*/3).item();
  EXPECT_GT(masked, 0.0f);
  EXPECT_NE(full, masked);
}

TEST(TransformerLM, TraceRecordsPerLayer) {
  util::Rng rng(4);
  TransformerLM lm(TinyConfig(), &rng);
  ForwardTrace trace;
  trace.record_ffn_inputs = true;
  trace.record_layer_outputs = true;
  ForwardOptions options;
  options.trace = &trace;
  (void)lm.Hidden({4, 5}, options);
  EXPECT_EQ(trace.ffn_inputs.size(), 3u);
  EXPECT_EQ(trace.layer_outputs.size(), 3u);
  EXPECT_EQ(trace.ffn_inputs[0].shape(), (tensor::Shape{2, 16}));
}

// An FfnHook that adds a constant and records which layers fired.
class ProbeHook : public FfnHook {
 public:
  void BeginForward() override { calls.clear(); }
  tensor::Tensor FfnDelta(int layer,
                          const tensor::Tensor& ffn_input) override {
    calls.push_back(layer);
    return tensor::Tensor::Full(ffn_input.shape(), bump);
  }
  std::vector<int> calls;
  float bump = 0.0f;
};

TEST(TransformerLM, FfnHookCalledPerLayerAndAffectsOutput) {
  util::Rng rng(5);
  TransformerLM lm(TinyConfig(), &rng);
  ProbeHook hook;
  ForwardOptions options;
  options.ffn_hook = &hook;
  tensor::NoGradGuard no_grad;
  tensor::Tensor base = lm.Hidden({4, 5, 6});
  tensor::Tensor unchanged = lm.Hidden({4, 5, 6}, options);
  EXPECT_EQ(hook.calls, (std::vector<int>{0, 1, 2}));
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base.data()[i], unchanged.data()[i], 1e-5f);
  }
  hook.bump = 1.0f;
  tensor::Tensor bumped = lm.Hidden({4, 5, 6}, options);
  float diff = 0.0f;
  for (size_t i = 0; i < base.size(); ++i) {
    diff += std::fabs(base.data()[i] - bumped.data()[i]);
  }
  EXPECT_GT(diff, 0.1f);
}

TEST(TransformerLM, PrefixChangesOutputs) {
  util::Rng rng(6);
  TransformerConfig config = TinyConfig();
  TransformerLM lm(config, &rng);
  PrefixKv prefix;
  prefix.prefix_len = 2;
  for (size_t l = 0; l < config.num_layers; ++l) {
    prefix.keys.push_back(
        tensor::Tensor::Randn({2, config.dim}, &rng, 0.5f));
    prefix.values.push_back(
        tensor::Tensor::Randn({2, config.dim}, &rng, 0.5f));
  }
  ForwardOptions options;
  options.prefix = &prefix;
  tensor::NoGradGuard no_grad;
  tensor::Tensor base = lm.Logits({4, 5});
  tensor::Tensor with_prefix = lm.Logits({4, 5}, options);
  float diff = 0.0f;
  for (size_t i = 0; i < base.size(); ++i) {
    diff += std::fabs(base.data()[i] - with_prefix.data()[i]);
  }
  EXPECT_GT(diff, 0.1f);
}

TEST(Generation, GreedyDeterministic) {
  util::Rng rng(7);
  TransformerLM lm(TinyConfig(), &rng);
  std::vector<int> a = GreedyDecode(lm, {1, 4, 5}, 5);
  std::vector<int> b = GreedyDecode(lm, {1, 4, 5}, 5);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 5u);
}

TEST(Generation, SequenceLogProbNegativeAndConsistent) {
  util::Rng rng(8);
  TransformerLM lm(TinyConfig(), &rng);
  double lp = SequenceLogProb(lm, {1, 4}, {5, 6});
  EXPECT_LT(lp, 0.0);
  // Sum over a longer continuation is more negative (probabilities < 1).
  double lp_longer = SequenceLogProb(lm, {1, 4}, {5, 6, 7});
  EXPECT_LT(lp_longer, lp);
}

TEST(Generation, ScoreOptionsPicksHigherLikelihood) {
  util::Rng rng(9);
  TransformerLM lm(TinyConfig(), &rng);
  text::Tokenizer tokenizer = text::Tokenizer::Build({"alpha beta gamma"});
  OptionScores scores =
      ScoreOptions(lm, tokenizer, "alpha", {"beta", "gamma"});
  ASSERT_EQ(scores.log_probs.size(), 2u);
  ASSERT_EQ(scores.probabilities.size(), 2u);
  EXPECT_NEAR(scores.probabilities[0] + scores.probabilities[1], 1.0,
              1e-6);
  int expected =
      scores.log_probs[0] >= scores.log_probs[1] ? 0 : 1;  // same length
  EXPECT_EQ(scores.best, expected);
}

}  // namespace
}  // namespace infuserki::model
