#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kg/io.h"
#include "kg/synth.h"

namespace infuserki::kg {
namespace {

TEST(KgIo, RoundTripPreservesEverything) {
  KnowledgeGraph original =
      SyntheticUmls({.num_triplets = 50, .seed = 11});
  std::string path = ::testing::TempDir() + "/kg_roundtrip.tsv";
  ASSERT_TRUE(SaveTsv(original, path).ok());
  auto loaded = LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_triplets(), original.num_triplets());
  EXPECT_EQ(loaded->num_relations(), original.num_relations());
  // Only entities participating in triplets survive a TSV round trip;
  // generators may allocate pool entities that never get used.
  EXPECT_LE(loaded->num_entities(), original.num_entities());
  for (const Triplet& triplet : original.triplets()) {
    int head = loaded->FindEntity(original.entity(triplet.head).name);
    int relation =
        loaded->FindRelation(original.relation(triplet.relation).name);
    int tail = loaded->FindEntity(original.entity(triplet.tail).name);
    ASSERT_GE(head, 0);
    ASSERT_GE(relation, 0);
    EXPECT_EQ(loaded->TailOf(head, relation), tail);
  }
  // Relation surfaces survive.
  int rel = loaded->FindRelation("has_finding_site");
  ASSERT_GE(rel, 0);
  EXPECT_EQ(loaded->relation(rel).surface, "finding site");
  std::remove(path.c_str());
}

TEST(KgIo, LoadPlainTriplesWithoutHeaders) {
  std::string path = ::testing::TempDir() + "/kg_plain.tsv";
  {
    std::ofstream out(path);
    out << "aspirin\ttreats\theadache\n";
    out << "ibuprofen\ttreats\tfever\n";
  }
  auto loaded = LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triplets(), 2u);
  int rel = loaded->FindRelation("treats");
  ASSERT_GE(rel, 0);
  EXPECT_EQ(loaded->relation(rel).surface, "treats");  // name as surface
  std::remove(path.c_str());
}

TEST(KgIo, MalformedLineReported) {
  std::string path = ::testing::TempDir() + "/kg_bad.tsv";
  {
    std::ofstream out(path);
    out << "only_two\tfields\n";
  }
  auto loaded = LoadTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":1:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(KgIo, DuplicateTripleReportedWithLine) {
  std::string path = ::testing::TempDir() + "/kg_dup.tsv";
  {
    std::ofstream out(path);
    out << "a\tr\tb\n";
    out << "a\tr\tc\n";
  }
  auto loaded = LoadTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(KgIo, MissingFileIsNotFound) {
  auto loaded = LoadTsv("/nonexistent/kg.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace infuserki::kg
