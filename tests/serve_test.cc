// Behavioral suite for the resilient serving layer (DESIGN.md §10): served
// token streams must stay bit-exact with single-threaded GreedyDecode
// through prefix reuse, load shedding, deadline expiry, transient-fault
// retries, KV-budget eviction, and the poisoned-session degraded path.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adapter_stack.h"
#include "model/generation.h"
#include "model/serve_adapter.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "serve/adapter_registry.h"
#include "serve/prefix_cache.h"
#include "serve/server.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"

namespace infuserki::serve {
namespace {

using std::chrono::milliseconds;

/// Shared untrained model + tokenizer. Untrained weights are fine: the
/// suite compares served streams against GreedyDecode on the same model,
/// not against meaningful text.
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<std::string> corpus = {
        "alpha beta gamma delta epsilon zeta eta theta",
        "iota kappa lambda mu nu xi omicron pi rho sigma tau",
    };
    tokenizer_ = new text::Tokenizer(text::Tokenizer::Build(corpus));
    model::TransformerConfig config;
    config.vocab_size = tokenizer_->vocab_size();
    config.dim = 16;
    config.num_layers = 2;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.max_seq_len = 32;
    util::Rng rng(7);
    lm_ = new model::TransformerLM(config, &rng);
  }
  static void TearDownTestSuite() {
    delete lm_;
    delete tokenizer_;
    lm_ = nullptr;
    tokenizer_ = nullptr;
  }

  void SetUp() override { util::FaultRegistry::Get().Clear(); }
  void TearDown() override { util::FaultRegistry::Get().Clear(); }

  static std::vector<int> Reference(const std::string& prompt,
                                    size_t max_new) {
    return model::GreedyDecode(
        *lm_, tokenizer_->EncodeWithSpecials(prompt, false), max_new);
  }

  /// First candidate prompt whose greedy continuation has at least
  /// `min_tokens` tokens — tests that need mid-decode events (faults,
  /// cancellation) must decode more than one token, and what an untrained
  /// model emits per prompt is arbitrary.
  static std::string PromptWithLongReference(size_t min_tokens,
                                             size_t max_new) {
    const std::vector<std::string> candidates = {
        "alpha beta gamma",  "iota kappa",    "sigma tau alpha",
        "delta epsilon",     "mu nu xi pi",   "theta iota omicron",
        "beta delta zeta",   "rho sigma",     "eta theta alpha beta",
    };
    for (const std::string& prompt : candidates) {
      if (Reference(prompt, max_new).size() >= min_tokens) return prompt;
    }
    ADD_FAILURE() << "no candidate prompt decodes " << min_tokens
                  << " tokens";
    return candidates[0];
  }

  static model::TransformerLM* lm_;
  static text::Tokenizer* tokenizer_;
};

model::TransformerLM* ServeFixture::lm_ = nullptr;
text::Tokenizer* ServeFixture::tokenizer_ = nullptr;

TEST_F(ServeFixture, ServesBitExactGreedyDecodeAndReusesPrefix) {
  ServeOptions options;
  options.max_batch_rows = 4;
  options.kv_budget_tokens = 256;
  InferenceServer server(*lm_, *tokenizer_, options);

  const std::string prompt = "alpha beta gamma";
  std::vector<int> reference = Reference(prompt, 8);

  Response first = server.Run({prompt, 8});
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_EQ(first.tokens, reference);
  EXPECT_EQ(first.text, tokenizer_->Decode(reference).value());
  EXPECT_FALSE(first.prefix_hit);
  EXPECT_FALSE(first.degraded);

  Response second = server.Run({prompt, 8});
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_TRUE(second.prefix_hit);
  EXPECT_EQ(second.tokens, reference);
}

TEST_F(ServeFixture, TransientDecodeFaultIsRetriedBitExact) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 8);
  std::vector<int> reference = Reference(prompt, 8);

  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.retry = {.max_attempts = 3, .base_delay_ms = 1};
  InferenceServer server(*lm_, *tokenizer_, options);

  Response response = server.Run({prompt, 8});
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.tokens, reference);
  EXPECT_GE(response.retries, 1);
  EXPECT_FALSE(response.degraded);
}

TEST_F(ServeFixture, PoisonedSessionDegradesToCachelessBitExact) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 8);
  std::vector<int> reference = Reference(prompt, 8);

  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1+").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.retry = {.max_attempts = 2, .base_delay_ms = 1};
  InferenceServer server(*lm_, *tokenizer_, options);

  Response response = server.Run({prompt, 8});
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.prefix_hit);
  EXPECT_EQ(response.tokens, reference);
  // The poisoned session must not have been returned to the cache.
  EXPECT_EQ(server.cached_tokens(), size_t{0});
}

TEST_F(ServeFixture, PermanentPrefillFaultDegradesBitExact) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  const std::string prompt = "iota kappa lambda";
  std::vector<int> reference = Reference(prompt, 6);

  ASSERT_TRUE(faults.Configure("serve/prefill=fail@1+").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.retry = {.max_attempts = 2, .base_delay_ms = 1};
  InferenceServer server(*lm_, *tokenizer_, options);

  Response response = server.Run({prompt, 6});
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.tokens, reference);
}

TEST_F(ServeFixture, ShedsWithResourceExhaustedWhenQueueIsFull) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 4);
  // Stall the single worker inside a retry backoff (one transient decode
  // fault, 500 ms delay) so the flood below races only against a sleeping
  // thread, not against real decode speed.
  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.queue_capacity = 2;
  options.retry = {
      .max_attempts = 2, .base_delay_ms = 500, .multiplier = 1.0};
  InferenceServer server(*lm_, *tokenizer_, options);

  std::future<Response> stalled = server.Submit({prompt, 4});
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  std::vector<std::future<Response>> flood;
  for (int i = 0; i < 6; ++i) flood.push_back(server.Submit({prompt, 4}));
  int shed = 0;
  int served = 0;
  for (std::future<Response>& f : flood) {
    Response r = f.get();
    if (r.status.code() == util::StatusCode::kResourceExhausted) {
      ++shed;
    } else if (r.status.ok()) {
      ++served;
    }
  }
  // Queue capacity 2: of the 6 requests flooded while the worker slept,
  // exactly 4 must shed — and shedding resolves immediately, it never
  // waits behind the stalled worker.
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(served, 2);
  Response first = stalled.get();
  EXPECT_TRUE(first.status.ok()) << first.status;
  EXPECT_GE(first.retries, 1);
}

TEST_F(ServeFixture, DeadlineExpiredInQueueReturnsDeadlineExceeded) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 4);
  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.retry = {
      .max_attempts = 2, .base_delay_ms = 300, .multiplier = 1.0};
  InferenceServer server(*lm_, *tokenizer_, options);

  std::future<Response> stalled = server.Submit({prompt, 4});
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  Request tight;
  tight.prompt = prompt;
  tight.max_new_tokens = 4;
  tight.deadline = milliseconds(5);
  Response late = server.Run(std::move(tight));
  EXPECT_EQ(late.status.code(), util::StatusCode::kDeadlineExceeded)
      << late.status;
  EXPECT_TRUE(stalled.get().status.ok());
}

TEST_F(ServeFixture, EvictionKeepsCachedTokensUnderBudget) {
  obs::Registry::Get().ResetAll();
  const std::string prompt_a = "alpha beta gamma delta";
  const std::string prompt_b = "iota kappa lambda mu";
  size_t len_a = tokenizer_->EncodeWithSpecials(prompt_a, false).size();

  ServeOptions options;
  options.max_batch_rows = 1;
  options.kv_budget_tokens = len_a;  // room for exactly one prompt
  InferenceServer server(*lm_, *tokenizer_, options);

  ASSERT_TRUE(server.Run({prompt_a, 4}).status.ok());
  EXPECT_EQ(server.cached_tokens(), len_a);
  ASSERT_TRUE(server.Run({prompt_b, 4}).status.ok());  // evicts A
  EXPECT_LE(server.cached_tokens(), options.kv_budget_tokens);

  Response again = server.Run({prompt_a, 4});
  ASSERT_TRUE(again.status.ok());
  EXPECT_FALSE(again.prefix_hit);  // A was evicted, so this re-prefilled
  EXPECT_GE(obs::Registry::Get()
                .GetCounter("serve/evictions")
                ->Value(),
            uint64_t{1});
  EXPECT_LE(server.cached_tokens(), options.kv_budget_tokens);
}

TEST_F(ServeFixture, ZeroBudgetDisablesCachingButStillServes) {
  ServeOptions options;
  options.max_batch_rows = 1;
  options.kv_budget_tokens = 0;
  InferenceServer server(*lm_, *tokenizer_, options);
  const std::string prompt = "rho sigma tau";
  std::vector<int> reference = Reference(prompt, 6);
  for (int i = 0; i < 2; ++i) {
    Response response = server.Run({prompt, 6});
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.prefix_hit);
    EXPECT_EQ(response.tokens, reference);
  }
  EXPECT_EQ(server.cached_tokens(), size_t{0});
}

TEST_F(ServeFixture, OverlongPromptIsRejectedWithoutKillingTheServer) {
  ServeOptions options;
  options.max_batch_rows = 1;
  InferenceServer server(*lm_, *tokenizer_, options);
  std::string overlong;
  for (int i = 0; i < 40; ++i) overlong += "alpha ";  // > max_seq_len ids
  Response bad = server.Run({overlong, 4});
  EXPECT_EQ(bad.status.code(), util::StatusCode::kInvalidArgument)
      << bad.status;
  Response good = server.Run({"alpha beta", 4});
  EXPECT_TRUE(good.status.ok()) << good.status;
}

TEST_F(ServeFixture, ShutdownCancelsQueuedAndRejectsNewRequests) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 8);
  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  auto server = std::make_unique<InferenceServer>(
      *lm_, *tokenizer_,
      ServeOptions{.max_batch_rows = 1,
                   .retry = {.max_attempts = 2,
                             .base_delay_ms = 300,
                             .multiplier = 1.0},
                   .exporter = {}});

  std::future<Response> in_flight = server->Submit({prompt, 8});
  while (server->queue_depth() > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  std::future<Response> queued = server->Submit({prompt, 8});
  server->Shutdown();

  Response cancelled = queued.get();
  EXPECT_EQ(cancelled.status.code(), util::StatusCode::kUnavailable)
      << cancelled.status;
  // The in-flight request either finished or noticed cancellation at a
  // token boundary — both are clean exits; what matters is that Shutdown
  // never wedged and the promise resolved.
  Response first = in_flight.get();
  EXPECT_TRUE(first.status.ok() ||
              first.status.code() == util::StatusCode::kCancelled)
      << first.status;

  Response rejected = server->Run({prompt, 4});
  EXPECT_EQ(rejected.status.code(), util::StatusCode::kUnavailable);
}

// A full batch of distinct prompts decoded concurrently by the scheduler:
// every response must match its own single-threaded GreedyDecode.
TEST_F(ServeFixture, ConcurrentBatchServesEveryRequestBitExact) {
  ServeOptions options;
  options.max_batch_rows = 4;
  options.queue_capacity = 32;
  options.kv_budget_tokens = 256;
  InferenceServer server(*lm_, *tokenizer_, options);

  const std::vector<std::string> prompts = {
      "alpha beta gamma", "iota kappa",    "sigma tau alpha",
      "delta epsilon",    "mu nu xi pi",   "theta iota omicron",
      "beta delta zeta",  "rho sigma"};
  std::vector<std::future<Response>> futures;
  futures.reserve(prompts.size());
  for (const std::string& prompt : prompts) {
    futures.push_back(server.Submit({prompt, 8}));
  }
  for (size_t i = 0; i < prompts.size(); ++i) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << prompts[i] << ": "
                                      << response.status;
    EXPECT_EQ(response.tokens, Reference(prompts[i], 8)) << prompts[i];
    EXPECT_FALSE(response.degraded) << prompts[i];
  }
}

// A step-token budget too small to co-admit two prompts forces deferrals;
// deferred requests must still be served, bit-exact, in FIFO order.
TEST_F(ServeFixture, TightTokenBudgetDefersButServesAll) {
  ServeOptions options;
  options.max_batch_rows = 4;
  options.max_batch_tokens = 6;  // < two prompt lengths combined
  options.queue_capacity = 32;
  options.kv_budget_tokens = 0;  // force every admission through prefill
  InferenceServer server(*lm_, *tokenizer_, options);

  const std::vector<std::string> prompts = {
      "alpha beta gamma", "iota kappa", "sigma tau alpha",
      "delta epsilon",    "mu nu xi pi", "beta delta zeta"};
  std::vector<std::future<Response>> futures;
  for (const std::string& prompt : prompts) {
    futures.push_back(server.Submit({prompt, 6}));
  }
  for (size_t i = 0; i < prompts.size(); ++i) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << prompts[i] << ": "
                                      << response.status;
    EXPECT_EQ(response.tokens, Reference(prompts[i], 6)) << prompts[i];
  }
}

// Graceful drain: with a drain deadline configured and a queue that fits
// the budget, Shutdown() must deliver every admitted AND queued request —
// zero cancellations.
TEST_F(ServeFixture, GracefulDrainCompletesQueuedWorkWithZeroCancellations) {
  obs::Registry::Get().ResetAll();
  ServeOptions options;
  options.max_batch_rows = 1;  // forces the later submissions to queue
  options.queue_capacity = 16;
  options.drain_deadline = milliseconds(10000);
  InferenceServer server(*lm_, *tokenizer_, options);

  const std::vector<std::string> prompts = {
      "alpha beta gamma", "iota kappa", "sigma tau alpha", "delta epsilon"};
  std::vector<std::future<Response>> futures;
  for (const std::string& prompt : prompts) {
    futures.push_back(server.Submit({prompt, 6}));
  }
  server.Shutdown();  // blocks until the drain finishes

  for (size_t i = 0; i < prompts.size(); ++i) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << prompts[i] << ": "
                                      << response.status;
    EXPECT_EQ(response.tokens, Reference(prompts[i], 6)) << prompts[i];
  }
  obs::Registry& registry = obs::Registry::Get();
  EXPECT_EQ(registry.GetCounter("serve/cancelled")->Value(), uint64_t{0});
  EXPECT_EQ(registry.GetCounter("serve/completed")->Value(),
            uint64_t{prompts.size()});

  // Admission is closed from the first instant of the drain.
  Response rejected = server.Run({prompts[0], 4});
  EXPECT_EQ(rejected.status.code(), util::StatusCode::kUnavailable);
}

// The drain deadline is a hard budget: work that outlives it is cancelled,
// and Shutdown() still returns promptly.
TEST_F(ServeFixture, DrainDeadlineExceededCancelsLeftovers) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 8);
  // Stall the scheduler inside a 300 ms retry backoff so the 20 ms drain
  // budget expires while work is still outstanding.
  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.drain_deadline = milliseconds(20);
  options.retry = {
      .max_attempts = 2, .base_delay_ms = 300, .multiplier = 1.0};
  InferenceServer server(*lm_, *tokenizer_, options);

  std::future<Response> stalled = server.Submit({prompt, 8});
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  std::future<Response> queued = server.Submit({prompt, 8});
  server.Shutdown();

  Response first = stalled.get();
  EXPECT_EQ(first.status.code(), util::StatusCode::kCancelled)
      << first.status;
  Response second = queued.get();
  EXPECT_EQ(second.status.code(), util::StatusCode::kUnavailable)
      << second.status;
}

// A hot-swap through a live server: responses pin the version active at
// admission, stay bit-exact with the sequential decoder under that
// version's hook, and base-model prefixes survive the swap round-trip.
TEST_F(ServeFixture, SwapAdaptersServesPinnedVersionBitExact) {
  core::AdapterStackOptions stack_options;
  stack_options.first_layer = 0;
  stack_options.last_layer = 1;
  stack_options.bottleneck = 4;
  stack_options.use_infuser = false;
  core::KnowledgeAdapterStack stack(lm_->config().dim,
                                    lm_->config().num_layers, stack_options);
  util::Rng rng(17);
  for (tensor::Tensor& t : stack.AdapterParameters()) {
    for (float& v : t.impl()->data) {
      v = static_cast<float>(rng.Normal(0.0, 0.1));
    }
  }
  auto exported = stack.ExportPositionWise();
  ASSERT_TRUE(exported.ok()) << exported.status();

  std::string dir = ::testing::TempDir() + "/serve_swap_registry";
  std::filesystem::remove_all(dir);
  AdapterRegistry registry(dir);
  auto version = registry.Publish(std::move(exported).value());
  ASSERT_TRUE(version.ok()) << version.status();

  ServeOptions options;
  options.max_batch_rows = 2;
  options.kv_budget_tokens = 256;
  InferenceServer server(*lm_, *tokenizer_, options);
  const std::string prompt = "alpha beta gamma";
  const std::vector<int> ids =
      tokenizer_->EncodeWithSpecials(prompt, false);

  // Base model before any swap.
  Response base = server.Run({prompt, 8});
  ASSERT_TRUE(base.status.ok()) << base.status;
  EXPECT_EQ(base.adapter_sequence, uint64_t{0});
  EXPECT_EQ(base.tokens, Reference(prompt, 8));

  // Swap the adapter in: answers must match the hooked sequential decoder
  // and must NOT reuse the base-generation prefix.
  server.SwapAdapters(version.value());
  EXPECT_EQ(server.active_adapter_sequence(), version.value().sequence);
  model::PositionWiseAdapterHook hook(version.value().adapter.get());
  std::vector<int> adapted_reference =
      model::GreedyDecode(*lm_, ids, 8, hook.Options());
  Response adapted = server.Run({prompt, 8});
  ASSERT_TRUE(adapted.status.ok()) << adapted.status;
  EXPECT_EQ(adapted.adapter_sequence, version.value().sequence);
  EXPECT_FALSE(adapted.prefix_hit);
  EXPECT_EQ(adapted.tokens, adapted_reference);

  // Swap back to the base model: the generation-0 prefix parked by the
  // first request survived the swap cycle and is reused, bit-exact.
  server.SwapAdapters(AdapterVersion{});
  EXPECT_EQ(server.active_adapter_sequence(), uint64_t{0});
  Response back = server.Run({prompt, 8});
  ASSERT_TRUE(back.status.ok()) << back.status;
  EXPECT_EQ(back.adapter_sequence, uint64_t{0});
  EXPECT_TRUE(back.prefix_hit);
  EXPECT_EQ(back.tokens, Reference(prompt, 8));
}

TEST(PrefixCacheUnit, LookupSharesWithoutRemoving) {
  PrefixCache cache(/*budget_tokens=*/16);
  auto entry = std::make_shared<PrefixCache::Entry>();
  entry->prompt = {1, 5, 6};
  EXPECT_EQ(cache.Insert(entry), size_t{0});
  EXPECT_EQ(cache.entries(), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{3});

  EXPECT_EQ(cache.Lookup({9, 9}), nullptr);
  std::shared_ptr<const PrefixCache::Entry> row_a = cache.Lookup({1, 5, 6});
  std::shared_ptr<const PrefixCache::Entry> row_b = cache.Lookup({1, 5, 6});
  ASSERT_NE(row_a, nullptr);
  EXPECT_EQ(row_a.get(), row_b.get());  // one shared copy, not two
  // The entry stays resident and is counted once however many rows hold it.
  EXPECT_EQ(cache.entries(), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{3});
}

TEST(PrefixCacheUnit, EvictsLeastRecentlyUsedUnderBudget) {
  PrefixCache cache(/*budget_tokens=*/10);
  auto make = [](std::vector<int> prompt) {
    auto entry = std::make_shared<PrefixCache::Entry>();
    entry->prompt = std::move(prompt);
    return entry;
  };
  cache.Insert(make({1, 2, 3, 4}));
  cache.Insert(make({5, 6, 7, 8}));
  // Touch {1,2,3,4} so {5,6,7,8} becomes the LRU victim.
  cache.Lookup({1, 2, 3, 4});
  EXPECT_EQ(cache.Insert(make({9, 10, 11, 12})), size_t{1});
  EXPECT_LE(cache.cached_tokens(), size_t{10});
  EXPECT_EQ(cache.Lookup({5, 6, 7, 8}), nullptr);
  EXPECT_NE(cache.Lookup({1, 2, 3, 4}), nullptr);
}

TEST(PrefixCacheUnit, OversizedEntryIsDroppedImmediately) {
  PrefixCache cache(/*budget_tokens=*/3);
  auto entry = std::make_shared<PrefixCache::Entry>();
  entry->prompt = {1, 2, 3, 4, 5};
  EXPECT_EQ(cache.Insert(std::move(entry)), size_t{1});
  EXPECT_EQ(cache.entries(), size_t{0});
  EXPECT_EQ(cache.cached_tokens(), size_t{0});
}

// Regression for batched prefix sharing: when two in-flight batch rows hold
// the same cached prefix, the pool must count its tokens exactly once,
// a sharer's re-publication at retirement must not count as an eviction,
// and evicting the entry while sharers are outstanding must keep both the
// accounting and the sharers' data intact.
TEST(PrefixCacheUnit, SharedPrefixEvictionAccountingStaysExact) {
  PrefixCache cache(/*budget_tokens=*/8);
  auto make = [](std::vector<int> prompt) {
    auto entry = std::make_shared<PrefixCache::Entry>();
    entry->prompt = std::move(prompt);
    return entry;
  };
  ASSERT_EQ(cache.Insert(make({1, 2, 3, 4, 5})), size_t{0});

  // Two batch rows restore from the same snapshot concurrently.
  std::shared_ptr<const PrefixCache::Entry> row_a =
      cache.Lookup({1, 2, 3, 4, 5});
  std::shared_ptr<const PrefixCache::Entry> row_b =
      cache.Lookup({1, 2, 3, 4, 5});
  ASSERT_NE(row_a, nullptr);
  ASSERT_NE(row_b, nullptr);
  EXPECT_EQ(cache.cached_tokens(), size_t{5});  // counted once, not twice

  // Row A retires and re-publishes its handle: an LRU refresh, not a
  // second copy — no eviction, no token double-count.
  EXPECT_EQ(cache.Insert(row_a), size_t{0});
  EXPECT_EQ(cache.cached_tokens(), size_t{5});
  EXPECT_EQ(cache.entries(), size_t{1});

  // A 6-token prefix lands while row B is still mid-decode: the shared
  // entry is evicted (5 + 6 > 8) — exactly one eviction — but row B's
  // handle keeps the snapshot alive.
  EXPECT_EQ(cache.Insert(make({10, 11, 12, 13, 14, 15})), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{6});
  EXPECT_EQ(cache.Lookup({1, 2, 3, 4, 5}), nullptr);
  ASSERT_NE(row_b, nullptr);
  EXPECT_EQ(row_b->prompt.size(), size_t{5});

  // Row B retires after the eviction: its re-publication is a normal
  // insert that displaces the newer entry (5 + 6 > 8 again) — the counts
  // stay exact through the full share → evict → re-publish cycle.
  EXPECT_EQ(cache.Insert(row_b), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{5});
  EXPECT_EQ(cache.entries(), size_t{1});
  EXPECT_NE(cache.Lookup({1, 2, 3, 4, 5}), nullptr);
}

TEST(PrefixCacheUnit, ClearReportsExactDropCountAndSparesHandles) {
  obs::Registry::Get().ResetAll();
  PrefixCache cache(/*budget_tokens=*/16);
  auto make = [](std::vector<int> prompt) {
    auto entry = std::make_shared<PrefixCache::Entry>();
    entry->prompt = std::move(prompt);
    return entry;
  };
  cache.Insert(make({1, 2, 3}));
  cache.Insert(make({4, 5, 6, 7}));
  std::shared_ptr<const PrefixCache::Entry> held = cache.Lookup({1, 2, 3});
  ASSERT_NE(held, nullptr);

  EXPECT_EQ(cache.Clear(), size_t{2});
  EXPECT_EQ(cache.entries(), size_t{0});
  EXPECT_EQ(cache.cached_tokens(), size_t{0});
  EXPECT_EQ(obs::Registry::Get().GetCounter("serve/evictions")->Value(),
            uint64_t{2});
  // A mid-flight handle keeps its snapshot through the Clear().
  EXPECT_EQ(held->prompt.size(), size_t{3});

  // Clearing an empty cache is a no-op with an exact (zero) count.
  EXPECT_EQ(cache.Clear(), size_t{0});
  EXPECT_EQ(obs::Registry::Get().GetCounter("serve/evictions")->Value(),
            uint64_t{2});
}

// Generation tags (DESIGN.md §12): invalidation drops exactly the replaced
// generation's entries, spares generation 0 (base model), keeps mid-flight
// handles alive — even two rows sharing one entry — and a late insert from
// a stale generation parks nothing without perturbing the accounting.
TEST(PrefixCacheUnit, GenerationInvalidationIsExactAndSparesBase) {
  obs::Registry::Get().ResetAll();
  PrefixCache cache(/*budget_tokens=*/32);
  auto make = [](std::vector<int> prompt, uint64_t generation) {
    auto entry = std::make_shared<PrefixCache::Entry>();
    entry->prompt = std::move(prompt);
    entry->generation = generation;
    return entry;
  };
  // One base-model prefix, then two prefixes under adapter generation 1.
  ASSERT_EQ(cache.Insert(make({1, 2, 3}, 0)), size_t{0});
  cache.SetActiveGeneration(1);
  ASSERT_EQ(cache.Insert(make({1, 2, 3}, 1)), size_t{0});
  ASSERT_EQ(cache.Insert(make({4, 5, 6, 7}, 1)), size_t{0});
  EXPECT_EQ(cache.entries(), size_t{3});
  EXPECT_EQ(cache.cached_tokens(), size_t{10});

  // The same prompt resolves per generation — an adapted prefill can
  // never seed a base request and vice versa.
  ASSERT_NE(cache.Lookup({1, 2, 3}, 0), nullptr);
  ASSERT_NE(cache.Lookup({1, 2, 3}, 1), nullptr);
  EXPECT_NE(cache.Lookup({1, 2, 3}, 0).get(),
            cache.Lookup({1, 2, 3}, 1).get());

  // Two in-flight rows share one generation-1 entry mid-swap.
  std::shared_ptr<const PrefixCache::Entry> row_a = cache.Lookup({1, 2, 3}, 1);
  std::shared_ptr<const PrefixCache::Entry> row_b = cache.Lookup({1, 2, 3}, 1);
  ASSERT_EQ(row_a.get(), row_b.get());

  // Swap to generation 2: exactly the two generation-1 entries drop.
  cache.SetActiveGeneration(2);
  EXPECT_EQ(cache.InvalidateGeneration(1), size_t{2});
  EXPECT_EQ(cache.entries(), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{3});
  EXPECT_EQ(obs::Registry::Get().GetCounter("serve/evictions")->Value(),
            uint64_t{2});
  EXPECT_NE(cache.Lookup({1, 2, 3}, 0), nullptr);   // base survives
  EXPECT_EQ(cache.Lookup({1, 2, 3}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({4, 5, 6, 7}, 1), nullptr);
  EXPECT_EQ(row_a->prompt.size(), size_t{3});       // handles intact

  // Row A retires after the swap: its stale-generation re-publication is
  // dropped — not parked, not counted as an eviction.
  EXPECT_EQ(cache.Insert(row_a), size_t{0});
  EXPECT_EQ(cache.entries(), size_t{1});
  EXPECT_EQ(cache.cached_tokens(), size_t{3});
  EXPECT_EQ(obs::Registry::Get().GetCounter("serve/evictions")->Value(),
            uint64_t{2});

  // Invalidating a generation with no entries reports exactly zero.
  EXPECT_EQ(cache.InvalidateGeneration(1), size_t{0});
}

// ---- Overload control (DESIGN.md §14) --------------------------------

TEST(ValidateServeOptionsTest, AcceptsDefaultsRejectsEachBadKnob) {
  EXPECT_TRUE(ValidateServeOptions(ServeOptions{}).ok());

  auto expect_invalid = [](auto mutate, const char* what) {
    ServeOptions options;
    mutate(options);
    util::Status status = ValidateServeOptions(options);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
        << what << ": " << status;
  };
  expect_invalid([](ServeOptions& o) { o.max_batch_rows = 0; },
                 "max_batch_rows");
  expect_invalid([](ServeOptions& o) { o.max_batch_tokens = 0; },
                 "max_batch_tokens");
  expect_invalid([](ServeOptions& o) { o.queue_capacity = 0; },
                 "queue_capacity");
  expect_invalid([](ServeOptions& o) { o.default_deadline = milliseconds(-1); },
                 "default_deadline");
  expect_invalid([](ServeOptions& o) { o.drain_deadline = milliseconds(-1); },
                 "drain_deadline");
  expect_invalid([](ServeOptions& o) { o.retry.max_attempts = 0; },
                 "retry.max_attempts");
  expect_invalid([](ServeOptions& o) { o.retry.base_delay_ms = -1; },
                 "retry.base_delay_ms");
  expect_invalid([](ServeOptions& o) { o.retry.multiplier = 0.5; },
                 "retry.multiplier");
  expect_invalid([](ServeOptions& o) { o.admission.quantum = 0.0; },
                 "admission.quantum");
  expect_invalid([](ServeOptions& o) { o.admission.default_policy.weight = 0; },
                 "default weight");
  expect_invalid(
      [](ServeOptions& o) { o.admission.tenants["t"].rate_qps = -1.0; },
      "tenant rate_qps");
  expect_invalid(
      [](ServeOptions& o) {
        o.brownout.enter_occupancy = 0.2;
        o.brownout.exit_occupancy = 0.4;
      },
      "inverted brownout hysteresis");
  expect_invalid([](ServeOptions& o) { o.brownout.enter_ticks = 0; },
                 "brownout enter_ticks");
  expect_invalid([](ServeOptions& o) { o.brownout.clamp_max_new_tokens = 0; },
                 "brownout clamp");
  expect_invalid([](ServeOptions& o) { o.brownout.retry_after_s = 0.0; },
                 "brownout retry_after_s");
  expect_invalid([](ServeOptions& o) { o.feasibility_margin = -1.0; },
                 "feasibility_margin");
  expect_invalid([](ServeOptions& o) { o.watchdog_interval = milliseconds(0); },
                 "watchdog_interval");
  expect_invalid(
      [](ServeOptions& o) { o.watchdog_stall_timeout = milliseconds(-1); },
      "watchdog_stall_timeout");
}

TEST_F(ServeFixture, InvalidOptionsFailFastWithoutHanging) {
  ServeOptions options;
  options.max_batch_rows = 0;
  InferenceServer server(*lm_, *tokenizer_, options);
  EXPECT_EQ(server.init_status().code(),
            util::StatusCode::kInvalidArgument);
  // Submit on an invalid server resolves promptly with the validation
  // error — no scheduler thread exists to ever pick the request up.
  Response response = server.Run({"alpha beta", 4});
  EXPECT_EQ(response.status.code(), util::StatusCode::kInvalidArgument)
      << response.status;
  server.Shutdown();  // idempotent and safe with no threads started
}

TEST_F(ServeFixture, InfeasibleDeadlineIsShedWithRetryAfterHint) {
  ServeOptions options;
  options.feasibility_margin = 1.0;
  InferenceServer server(*lm_, *tokenizer_, options);
  // Pin absurdly slow observed rates: 10 prefill tok/s, 1 decode tok/s.
  // Any real request then provably overshoots a 50 ms deadline.
  server.SeedRateEstimate(10.0, 1.0);

  Request doomed;
  doomed.prompt = "alpha beta gamma delta";
  doomed.max_new_tokens = 4;
  doomed.deadline = milliseconds(50);
  Response response = server.Run(std::move(doomed));
  EXPECT_EQ(response.status.code(),
            util::StatusCode::kResourceExhausted)
      << response.status;
  EXPECT_NE(response.status.message().find("infeasible"),
            std::string::npos)
      << response.status;
  EXPECT_GT(response.retry_after_seconds, 0.0);
  EXPECT_GT(util::RetryAfterSeconds(response.status), 0.0);

  // A request without a deadline is never infeasible and still serves.
  EXPECT_TRUE(server.Run({"alpha beta", 2}).status.ok());
}

TEST_F(ServeFixture, BrownoutClampsBypassesCacheAndShedsLowTier) {
  std::string prompt = PromptWithLongReference(3, 8);
  ServeOptions options;
  // Escalate on every watchdog tick (any occupancy >= 0 counts) and never
  // de-escalate: deterministic max brownout without real overload.
  options.brownout.enter_occupancy = 0.0;
  options.brownout.exit_occupancy = -1.0;
  options.brownout.enter_ticks = 1;
  options.brownout.clamp_max_new_tokens = 2;
  options.watchdog_interval = milliseconds(5);
  options.watchdog_stall_timeout = milliseconds(0);
  InferenceServer server(*lm_, *tokenizer_, options);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.brownout_level() < kBrownoutMaxLevel &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(server.brownout_level(), kBrownoutMaxLevel);

  // Level 1 measure: max_new_tokens clamped to the brownout ceiling.
  Response clamped = server.Run({prompt, 8});
  ASSERT_TRUE(clamped.status.ok()) << clamped.status;
  EXPECT_LE(clamped.tokens.size(), size_t{2});
  // Level 2 measure: no prefix-cache snapshots are published.
  EXPECT_EQ(server.cached_tokens(), size_t{0});
  // Level 3 measure: the low tier is shed at admission with a hint.
  Request low;
  low.prompt = prompt;
  low.max_new_tokens = 4;
  low.priority = Priority::kLow;
  Response shed = server.Run(std::move(low));
  EXPECT_EQ(shed.status.code(), util::StatusCode::kResourceExhausted)
      << shed.status;
  EXPECT_GT(shed.retry_after_seconds, 0.0);
  // High tier still serves at max brownout.
  Request high;
  high.prompt = prompt;
  high.max_new_tokens = 2;
  high.priority = Priority::kHigh;
  EXPECT_TRUE(server.Run(std::move(high)).status.ok());
}

TEST_F(ServeFixture, WatchdogFailsStalledBatchAndRecovers) {
  obs::Registry::Get().ResetAll();
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 4);
  // Wedge the first decode step: the scheduler spins inside the stall
  // probe until the watchdog notices the frozen heartbeat and aborts it.
  ASSERT_TRUE(faults.Configure("serve/decode_stall=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 2;
  options.watchdog_interval = milliseconds(10);
  options.watchdog_stall_timeout = milliseconds(150);
  InferenceServer server(*lm_, *tokenizer_, options);

  Response stalled = server.Run({prompt, 4});
  // The wedged batch is failed by the watchdog, not served.
  EXPECT_EQ(stalled.status.code(), util::StatusCode::kUnavailable)
      << stalled.status;

  // The scheduler restarted its session: later requests serve bit-exact.
  Response after = server.Run({prompt, 4});
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_EQ(after.tokens, Reference(prompt, 4));

  obs::Registry& registry = obs::Registry::Get();
  EXPECT_GE(registry.GetCounter("serve/watchdog_stalls")->Value(),
            uint64_t{1});
  EXPECT_GE(registry.GetCounter("serve/watchdog_recoveries")->Value(),
            uint64_t{1});
  server.Shutdown();
  // Conservation: every submitted request is classified exactly once.
  EXPECT_EQ(registry.GetCounter("serve/requests")->Value(),
            registry.GetCounter("serve/completed")->Value() +
                registry.GetCounter("serve/shed")->Value() +
                registry.GetCounter("serve/deadline_misses")->Value() +
                registry.GetCounter("serve/cancelled")->Value() +
                registry.GetCounter("serve/failures")->Value());
}

TEST_F(ServeFixture, TenantCapShedsFlooderButServesOthers) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  std::string prompt = PromptWithLongReference(2, 4);
  // Same worker-stall trick as the queue-full test: park the scheduler in
  // a retry backoff so the flood below races a sleeping thread.
  ASSERT_TRUE(faults.Configure("serve/decode_step=fail@1").ok());
  ServeOptions options;
  options.max_batch_rows = 1;
  options.queue_capacity = 8;
  options.admission.tenants["flood"].queue_cap = 1;
  options.retry = {
      .max_attempts = 2, .base_delay_ms = 500, .multiplier = 1.0};
  InferenceServer server(*lm_, *tokenizer_, options);

  std::future<Response> stalled = server.Submit({prompt, 4});
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  auto request_for = [&](const std::string& tenant) {
    Request request;
    request.prompt = prompt;
    request.max_new_tokens = 4;
    request.tenant_id = tenant;
    return request;
  };
  std::vector<std::future<Response>> flood;
  for (int i = 0; i < 3; ++i) {
    flood.push_back(server.Submit(request_for("flood")));
  }
  std::future<Response> polite = server.Submit(request_for("polite"));

  int flood_shed = 0;
  for (std::future<Response>& f : flood) {
    Response r = f.get();
    if (r.status.code() == util::StatusCode::kResourceExhausted) {
      ++flood_shed;
      // Targeted shedding: the offender's rejections carry backoff hints.
      EXPECT_GT(r.retry_after_seconds, 0.0);
    }
  }
  // Cap 1: of the 3 flooded requests, exactly 2 shed — while the polite
  // tenant rode through untouched.
  EXPECT_EQ(flood_shed, 2);
  EXPECT_TRUE(polite.get().status.ok());
  EXPECT_TRUE(stalled.get().status.ok());
}

TEST_F(ServeFixture, ServerRetryDeadlineSurvivesNoDeadlineRequests) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  // Permanent tokenize fault + huge backoff: without BoundDeadline, a
  // request carrying no deadline would erase the server-wide retry
  // deadline and sleep out the full 5 s backoff ladder.
  ASSERT_TRUE(faults.Configure("serve/tokenize=fail@1+").ok());
  ServeOptions options;
  options.retry.max_attempts = 5;
  options.retry.base_delay_ms = 5000;
  options.retry.multiplier = 1.0;
  options.retry.deadline =
      std::chrono::steady_clock::now() + milliseconds(300);
  InferenceServer server(*lm_, *tokenizer_, options);

  const auto start = std::chrono::steady_clock::now();
  Response response = server.Run({"alpha beta", 4});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(response.status.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(2))
      << "retry loop ignored the server-wide retry deadline";
}

}  // namespace
}  // namespace infuserki::serve
