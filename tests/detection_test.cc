#include <gtest/gtest.h>

#include "core/detection.h"
#include "kg/synth.h"

namespace infuserki::core {
namespace {

// A deterministic environment: a tiny LM trained on nothing answers MCQs
// essentially at random, so detection should split roughly 25/75.
TEST(Detection, RandomModelSplitsNearChance) {
  kg::KnowledgeGraph kg = kg::SyntheticUmls({.num_triplets = 80, .seed = 1});
  kg::TemplateEngine templates;
  kg::McqBuilder builder(&kg, &templates);
  util::Rng rng(2);
  std::vector<kg::Mcq> questions = builder.BuildAll(1, &rng);

  // Vocabulary over all questions and options.
  std::vector<std::string> corpus;
  for (const kg::Mcq& mcq : questions) {
    corpus.push_back(mcq.question);
    for (const std::string& option : mcq.options) corpus.push_back(option);
  }
  corpus.push_back("question answer :");
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);

  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  util::Rng model_rng(3);
  model::TransformerLM lm(config, &model_rng);

  DetectionResult result = DetectKnowledge(lm, tokenizer, questions);
  EXPECT_EQ(result.known.size() + result.unknown.size(), questions.size());
  // Untrained model: correctness is chance-level; allow a wide band.
  double fraction = result.KnownFraction();
  EXPECT_GT(fraction, 0.02);
  EXPECT_LT(fraction, 0.6);
  // is_known must be consistent with the index lists.
  for (size_t index : result.known) {
    EXPECT_TRUE(result.is_known[index]);
  }
  for (size_t index : result.unknown) {
    EXPECT_FALSE(result.is_known[index]);
  }
}

TEST(Detection, AnswerModesBothRun) {
  kg::KnowledgeGraph kg = kg::SyntheticUmls({.num_triplets = 30, .seed = 4});
  kg::TemplateEngine templates;
  kg::McqBuilder builder(&kg, &templates);
  util::Rng rng(5);
  kg::Mcq mcq = builder.Build(0, 1, &rng);
  std::vector<std::string> corpus = {mcq.question, "question answer : ( a )"};
  for (const std::string& option : mcq.options) corpus.push_back(option);
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  util::Rng model_rng(6);
  model::TransformerLM lm(config, &model_rng);
  int likelihood = AnswerMcq(lm, tokenizer, mcq, AnswerMode::kLikelihood);
  EXPECT_GE(likelihood, 0);
  EXPECT_LT(likelihood, 4);
  int generation = AnswerMcq(lm, tokenizer, mcq, AnswerMode::kGeneration);
  EXPECT_GE(generation, -1);  // -1 = nothing extractable, counted wrong
  EXPECT_LT(generation, 4);
}

}  // namespace
}  // namespace infuserki::core
