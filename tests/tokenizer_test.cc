#include <gtest/gtest.h>

#include <cstdio>

#include "text/tokenizer.h"
#include "util/serialize.h"

namespace infuserki::text {
namespace {

TEST(BasicTokenize, SplitsWordsAndPunctuation) {
  EXPECT_EQ(BasicTokenize("What is X?"),
            (std::vector<std::string>{"what", "is", "x", "?"}));
  EXPECT_EQ(BasicTokenize("( a ) foo-bar"),
            (std::vector<std::string>{"(", "a", ")", "foo", "-", "bar"}));
  EXPECT_TRUE(BasicTokenize("   ").empty());
  EXPECT_EQ(BasicTokenize("type 5"),
            (std::vector<std::string>{"type", "5"}));
}

TEST(Tokenizer, SpecialsFixed) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.vocab_size(), 4u);
  EXPECT_EQ(tokenizer.IdToWord(kPadId), "<pad>");
  EXPECT_EQ(tokenizer.IdToWord(kBosId), "<bos>");
  EXPECT_EQ(tokenizer.IdToWord(kEosId), "<eos>");
  EXPECT_EQ(tokenizer.IdToWord(kUnkId), "<unk>");
}

TEST(Tokenizer, BuildAndEncode) {
  Tokenizer tokenizer =
      Tokenizer::Build({"the cat sat", "the dog ran"});
  EXPECT_TRUE(tokenizer.HasWord("cat"));
  EXPECT_TRUE(tokenizer.HasWord("dog"));
  std::vector<int> ids = tokenizer.Encode("the cat ran");
  EXPECT_EQ(ids.size(), 3u);
  for (int id : ids) EXPECT_NE(id, kUnkId);
  EXPECT_EQ(tokenizer.Encode("unicorn")[0], kUnkId);
}

TEST(Tokenizer, RoundTripDecode) {
  Tokenizer tokenizer = Tokenizer::Build({"alpha beta gamma"});
  std::vector<int> ids =
      tokenizer.EncodeWithSpecials("alpha gamma", /*add_eos=*/true);
  EXPECT_EQ(ids.front(), kBosId);
  EXPECT_EQ(ids.back(), kEosId);
  EXPECT_EQ(tokenizer.Decode(ids).value(), "alpha gamma");
}

TEST(Tokenizer, DecodeRejectsOutOfRangeIdsWithoutAborting) {
  Tokenizer tokenizer = Tokenizer::Build({"alpha beta gamma"});
  int bad = static_cast<int>(tokenizer.vocab_size());
  util::StatusOr<std::string> decoded =
      tokenizer.Decode({kBosId, 4, bad, kEosId});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kOutOfRange);
  // The error names the offending id and its position for request logs.
  EXPECT_NE(decoded.status().message().find(std::to_string(bad)),
            std::string::npos);

  util::StatusOr<std::string> negative = tokenizer.Decode({-7});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), util::StatusCode::kOutOfRange);

  // Valid ids still decode on the same tokenizer afterwards.
  EXPECT_EQ(tokenizer.Decode({4}).value(), tokenizer.IdToWord(4));
}

TEST(Tokenizer, IdToWordIsTotal) {
  Tokenizer tokenizer = Tokenizer::Build({"alpha beta"});
  EXPECT_EQ(tokenizer.IdToWord(-1), "<unk>");
  EXPECT_EQ(tokenizer.IdToWord(static_cast<int>(tokenizer.vocab_size())),
            "<unk>");
}

TEST(Tokenizer, MinCountFilters) {
  Tokenizer tokenizer =
      Tokenizer::Build({"rare common common"}, /*min_count=*/2);
  EXPECT_FALSE(tokenizer.HasWord("rare"));
  EXPECT_TRUE(tokenizer.HasWord("common"));
}

TEST(Tokenizer, DeterministicIds) {
  Tokenizer a = Tokenizer::Build({"zebra apple", "mango"});
  Tokenizer b = Tokenizer::Build({"zebra apple", "mango"});
  EXPECT_EQ(a.WordId("zebra"), b.WordId("zebra"));
  EXPECT_EQ(a.WordId("apple"), b.WordId("apple"));
}

TEST(Tokenizer, SerializeRoundTrip) {
  Tokenizer tokenizer = Tokenizer::Build({"alpha beta gamma delta"});
  std::string path = ::testing::TempDir() + "/tok_roundtrip.bin";
  {
    util::BinaryWriter writer(path);
    tokenizer.Serialize(&writer);
    ASSERT_TRUE(writer.Finish().ok());
  }
  util::BinaryReader reader(path);
  auto restored = Tokenizer::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vocab_size(), tokenizer.vocab_size());
  EXPECT_EQ(restored->WordId("gamma"), tokenizer.WordId("gamma"));
  std::remove(path.c_str());
}

TEST(Tokenizer, DeserializeCorruptFails) {
  std::string path = ::testing::TempDir() + "/tok_corrupt.bin";
  {
    util::BinaryWriter writer(path);
    writer.WriteU64(1234567);  // absurd vocab count, then truncated
    ASSERT_TRUE(writer.Finish().ok());
  }
  util::BinaryReader reader(path);
  auto restored = Tokenizer::Deserialize(&reader);
  EXPECT_FALSE(restored.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace infuserki::text
